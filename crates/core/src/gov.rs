//! **twpp-gov** — resource governance for every stage of the pipeline.
//!
//! A production service over TWPP archives must bound *every* stage —
//! tracing, compaction, and the §5 demand-driven data-flow queries —
//! rather than run to completion or die. This module provides the two
//! primitives the rest of the workspace threads through its hot loops:
//!
//! * [`Budget`] — a shared, thread-safe resource envelope combining an
//!   optional wall-clock deadline, an optional step (event/node-visit)
//!   cap, an approximate byte cap, and a cooperative [`CancelToken`].
//!   Consumers call [`Budget::charge_step`] / [`Budget::charge_steps`] /
//!   [`Budget::charge_bytes`] at natural granularity (one worklist pop,
//!   one compacted function, one decoded frame) and stop with a typed
//!   [`StopReason`] when the envelope is exhausted.
//! * [`FaultPlan`] — a deterministic fault-injection harness used by the
//!   test suite and the CLI (`TWPP_INJECT_PANIC=<func-id>`,
//!   `TWPP_INJECT_DELAY_MS=<ms>`) to prove that panics degrade rather
//!   than destroy and that deadlines fire within one check interval.
//!
//! Design notes:
//!
//! * `Budget` is `Clone` and internally `Arc`-shared: all clones charge
//!   the same counters, so the pipeline's worker pool and the caller see
//!   a single envelope.
//! * The unlimited budget ([`Budget::default`]/[`Budget::unlimited`])
//!   caches an `unlimited` flag so governed hot loops cost one branch
//!   when no limits are set — the pre-governance fast path is preserved.
//! * The deadline is re-evaluated on **every** charge when set. The
//!   acceptance contract is "a deadlined run overshoots by at most one
//!   check interval", and charges are already amortised over meaningful
//!   units of work, so there is no additional stride.

#![deny(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use twpp_ir::FuncId;

/// Environment variable naming a function id whose per-function stage
/// panics deterministically (fault injection).
pub const INJECT_PANIC_ENV: &str = "TWPP_INJECT_PANIC";

/// Environment variable adding a sleep (milliseconds) to every
/// per-function stage (fault injection; used to make deadlines fire
/// deterministically in tests).
pub const INJECT_DELAY_ENV: &str = "TWPP_INJECT_DELAY_MS";

/// Environment variable naming the 1-based durability point at which the
/// process aborts (`std::process::abort`, no unwinding, no destructors —
/// the closest deterministic stand-in for `kill -9`). Durability points
/// are counted by [`FaultPlan::durability_point`]; the ingest layer calls
/// it once after every WAL append, segment commit, WAL rotation and merge
/// commit, so a sweep of `TWPP_INJECT_KILL_AT=1..=N` crashes a scripted
/// run at every moment state was just made durable.
pub const INJECT_KILL_ENV: &str = "TWPP_INJECT_KILL_AT";

/// Environment variable injecting N *transient* I/O failures: the first N
/// times a retry-wrapped I/O operation runs ([`FaultPlan::take_io_fault`])
/// it fails, after which every attempt succeeds. Combined with a
/// [`Retry`] policy this proves the backoff path end to end: the run
/// succeeds iff N is below the attempt cap.
pub const INJECT_IO_FAULTS_ENV: &str = "TWPP_INJECT_IO_FAULTS";

/// Environment variable making every k-th network frame handled by the
/// ingest daemon fail transiently ([`FaultPlan::take_net_fault`]): the
/// daemon sheds the frame with a BUSY response instead of processing it.
/// A client that honours BUSY retry-after hints loses nothing — the CI
/// chaos job feeds a stream through this flaky-socket plan and `cmp`s
/// the result against an unfaulted baseline.
pub const INJECT_NET_FAULT_ENV: &str = "TWPP_INJECT_NET_FAULT";

/// Environment variable making a streaming read (`twpp ingest --from -`)
/// fail with a synthetic I/O error once the given number of input bytes
/// has been consumed — the deterministic stand-in for a client hanging
/// up mid-stream, used to prove mid-stream errors are distinguished from
/// clean EOF (exit 4, durable prefix sealed).
pub const INJECT_READ_FAULT_ENV: &str = "TWPP_INJECT_READ_FAULT_AT";

/// Why a governed computation stopped before completion.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step (event / node-visit) cap was reached.
    StepLimit,
    /// The approximate byte cap was reached.
    ByteLimit,
    /// The attached [`CancelToken`] was triggered.
    Cancelled,
}

impl StopReason {
    /// Stable machine-readable form used by the RunReport schema
    /// (`deadline` / `step_limit` / `byte_limit` / `cancelled`).
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Deadline => "deadline",
            StopReason::StepLimit => "step_limit",
            StopReason::ByteLimit => "byte_limit",
            StopReason::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "wall-clock deadline exceeded"),
            StopReason::StepLimit => write!(f, "step limit exceeded"),
            StopReason::ByteLimit => write!(f, "byte limit exceeded"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for StopReason {}

/// A cooperative cancellation flag shared between a controller and any
/// number of governed computations. Cheap to clone; all clones observe
/// the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Declarative limits used to construct a [`Budget`].
///
/// ```
/// use twpp::gov::Limits;
/// let budget = Limits::new().max_steps(10_000).deadline_ms(250).start();
/// assert!(budget.check().is_ok());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Limits {
    /// Wall-clock deadline in milliseconds from [`Limits::start`].
    pub deadline_ms: Option<u64>,
    /// Maximum number of steps (events / node visits) to process.
    pub max_steps: Option<u64>,
    /// Approximate maximum number of bytes to materialise.
    pub max_bytes: Option<u64>,
}

impl Limits {
    /// No limits at all; `start()` yields an unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline, in milliseconds from `start()`.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the step cap.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the approximate byte cap.
    pub fn max_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Whether any limit is actually set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none() && self.max_steps.is_none() && self.max_bytes.is_none()
    }

    /// Starts the clock: materialises a [`Budget`] whose deadline (if
    /// any) is measured from *now*.
    pub fn start(self) -> Budget {
        Budget::with_limits(self, CancelToken::new())
    }

    /// Like [`Limits::start`] but wiring in an external cancel token.
    pub fn start_with_cancel(self, cancel: CancelToken) -> Budget {
        Budget::with_limits(self, cancel)
    }
}

#[derive(Debug)]
struct BudgetInner {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_bytes: Option<u64>,
    steps: AtomicU64,
    bytes: AtomicU64,
    cancel: CancelToken,
}

/// A shared resource envelope: deadline + step cap + byte cap +
/// cancellation. Clones share the same counters.
///
/// The default budget is unlimited and costs a single branch per charge,
/// so governed code paths can be used unconditionally.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Fast-path flag: true when no limit of any kind is configured.
    unlimited: bool,
    inner: Arc<BudgetInner>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Budget {
    /// A budget with no limits: every check succeeds (unless the
    /// embedded token is cancelled, which for this constructor is a
    /// fresh private token nobody else holds).
    pub fn unlimited() -> Self {
        Budget {
            unlimited: true,
            inner: Arc::new(BudgetInner {
                deadline: None,
                max_steps: None,
                max_bytes: None,
                steps: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                cancel: CancelToken::new(),
            }),
        }
    }

    fn with_limits(limits: Limits, cancel: CancelToken) -> Self {
        let deadline = limits
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        Budget {
            unlimited: limits.is_unlimited(),
            inner: Arc::new(BudgetInner {
                deadline,
                max_steps: limits.max_steps,
                max_bytes: limits.max_bytes,
                steps: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                cancel,
            }),
        }
    }

    /// The cancel token attached to this budget. Cancelling it makes
    /// every subsequent [`Budget::check`] fail with
    /// [`StopReason::Cancelled`].
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Whether no limit of any kind is configured. Note that even an
    /// unlimited budget is still cancellable via its token.
    pub fn is_unlimited(&self) -> bool {
        self.unlimited
    }

    /// Steps charged so far.
    pub fn steps_used(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Bytes charged so far.
    pub fn bytes_used(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Checks the envelope without charging anything.
    pub fn check(&self) -> Result<(), StopReason> {
        if self.inner.cancel.is_cancelled() {
            return Err(StopReason::Cancelled);
        }
        if self.unlimited {
            return Ok(());
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(StopReason::Deadline);
            }
        }
        if let Some(max) = self.inner.max_steps {
            if self.inner.steps.load(Ordering::Relaxed) > max {
                return Err(StopReason::StepLimit);
            }
        }
        if let Some(max) = self.inner.max_bytes {
            if self.inner.bytes.load(Ordering::Relaxed) > max {
                return Err(StopReason::ByteLimit);
            }
        }
        Ok(())
    }

    /// Charges one step and checks the envelope.
    pub fn charge_step(&self) -> Result<(), StopReason> {
        self.charge_steps(1)
    }

    /// Charges `n` steps and checks the envelope. A governed loop calls
    /// this once per natural unit of work (worklist pop, compacted
    /// function, decoded frame).
    pub fn charge_steps(&self, n: u64) -> Result<(), StopReason> {
        if self.unlimited {
            // Cancellation still applies, but counters need not move.
            if self.inner.cancel.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
            return Ok(());
        }
        self.inner.steps.fetch_add(n, Ordering::Relaxed);
        self.check()
    }

    /// Charges `n` approximate bytes and checks the envelope.
    pub fn charge_bytes(&self, n: u64) -> Result<(), StopReason> {
        if self.unlimited {
            if self.inner.cancel.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
            return Ok(());
        }
        self.inner.bytes.fetch_add(n, Ordering::Relaxed);
        self.check()
    }
}

/// A deterministic fault-injection plan: optionally panic when a given
/// function is processed, sleep before each per-function stage, and/or
/// abort the whole process at the n-th durability point (crash-recovery
/// testing for the ingest path).
///
/// The library never reads the environment implicitly — tests construct
/// plans directly (no env races between parallel tests), and only the
/// CLI calls [`FaultPlan::from_env`].
///
/// Clones share the durability-point counter, so the plan handed to a
/// [`Compactor`](crate::ingest::Compactor) and the copy the caller keeps
/// observe the same count.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Function id (decimal string of `FuncId::as_u32`) whose stage
    /// panics. `None` disables panic injection.
    pub panic_func: Option<String>,
    /// Milliseconds to sleep at every injection point. Zero disables.
    pub delay_ms: u64,
    /// 1-based durability point at which [`FaultPlan::durability_point`]
    /// aborts the process. `None` disables kill injection.
    pub kill_at: Option<u64>,
    /// Number of transient I/O failures to inject: the first this-many
    /// calls to [`FaultPlan::take_io_fault`] report a fault, later calls
    /// succeed. Zero disables.
    pub io_faults: u64,
    /// Every k-th call to [`FaultPlan::take_net_fault`] reports a fault
    /// (the ingest daemon sheds that frame with BUSY). `None` disables.
    pub net_fault_every: Option<u64>,
    /// Byte position at which a streaming read fails with a synthetic
    /// I/O error (mid-stream-error injection). `None` disables.
    pub read_fault_at: Option<u64>,
    /// Durability points passed so far (shared across clones; excluded
    /// from equality).
    kill_counter: Arc<AtomicU64>,
    /// Transient I/O faults consumed so far (shared across clones).
    io_fault_counter: Arc<AtomicU64>,
    /// Network frames seen so far (shared across clones).
    net_fault_counter: Arc<AtomicU64>,
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        // The counters are runtime progress, not configuration.
        self.panic_func == other.panic_func
            && self.delay_ms == other.delay_ms
            && self.kill_at == other.kill_at
            && self.io_faults == other.io_faults
            && self.net_fault_every == other.net_fault_every
            && self.read_fault_at == other.read_fault_at
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// No faults; all injection points are no-ops.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is configured.
    pub fn is_active(&self) -> bool {
        self.panic_func.is_some()
            || self.delay_ms > 0
            || self.kill_at.is_some()
            || self.io_faults > 0
            || self.net_fault_every.is_some()
            || self.read_fault_at.is_some()
    }

    /// Reads `TWPP_INJECT_PANIC` / `TWPP_INJECT_DELAY_MS` /
    /// `TWPP_INJECT_KILL_AT` / `TWPP_INJECT_IO_FAULTS` /
    /// `TWPP_INJECT_NET_FAULT` / `TWPP_INJECT_READ_FAULT_AT` from the
    /// environment. Missing or unparsable values disable the respective
    /// fault.
    pub fn from_env() -> Self {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        let panic_func = std::env::var(INJECT_PANIC_ENV)
            .ok()
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty());
        FaultPlan {
            panic_func,
            delay_ms: parse(INJECT_DELAY_ENV).unwrap_or(0),
            kill_at: parse(INJECT_KILL_ENV).filter(|&n| n > 0),
            io_faults: parse(INJECT_IO_FAULTS_ENV).unwrap_or(0),
            net_fault_every: parse(INJECT_NET_FAULT_ENV).filter(|&n| n > 0),
            read_fault_at: parse(INJECT_READ_FAULT_ENV),
            ..FaultPlan::default()
        }
    }

    /// A plan that panics when `func` is processed.
    pub fn panic_on(func: FuncId) -> Self {
        FaultPlan {
            panic_func: Some(func.as_u32().to_string()),
            ..FaultPlan::default()
        }
    }

    /// A plan that sleeps `ms` milliseconds at every injection point.
    pub fn delay(ms: u64) -> Self {
        FaultPlan {
            delay_ms: ms,
            ..FaultPlan::default()
        }
    }

    /// A plan that aborts the process at the `n`-th durability point
    /// (1-based).
    pub fn kill_after(n: u64) -> Self {
        FaultPlan {
            kill_at: Some(n),
            ..FaultPlan::default()
        }
    }

    /// A plan injecting `n` transient I/O failures (the first `n` calls
    /// to [`FaultPlan::take_io_fault`] fault, later ones succeed).
    pub fn transient_io(n: u64) -> Self {
        FaultPlan {
            io_faults: n,
            ..FaultPlan::default()
        }
    }

    /// A plan faulting every `k`-th network frame.
    pub fn net_fault_every(k: u64) -> Self {
        FaultPlan {
            net_fault_every: Some(k).filter(|&k| k > 0),
            ..FaultPlan::default()
        }
    }

    /// Injection point for retry-wrapped I/O: returns `true` (fail this
    /// attempt) while injected transient faults remain. Clones share the
    /// consumption counter, so `n` faults total are injected no matter
    /// how many handles observe the plan.
    pub fn take_io_fault(&self) -> bool {
        if self.io_faults == 0 {
            return false;
        }
        self.io_fault_counter.fetch_add(1, Ordering::SeqCst) < self.io_faults
    }

    /// Injection point for the ingest daemon's frame handler: counts the
    /// frame and returns `true` when it should be shed with BUSY (every
    /// `net_fault_every`-th frame).
    pub fn take_net_fault(&self) -> bool {
        match self.net_fault_every {
            None => false,
            Some(k) => {
                let n = self.net_fault_counter.fetch_add(1, Ordering::SeqCst) + 1;
                n.is_multiple_of(k)
            }
        }
    }

    /// Injection point marking "state was just made durable": increments
    /// the shared counter and returns the new count. If the plan's
    /// `kill_at` equals the count, the process aborts — no unwinding, no
    /// destructors, no buffered-writer flushes — simulating a hard kill
    /// at exactly this point.
    pub fn durability_point(&self) -> u64 {
        let n = self.kill_counter.fetch_add(1, Ordering::SeqCst) + 1;
        if self.kill_at == Some(n) {
            eprintln!("injected fault: killing process at durability point {n}");
            run_abort_hook();
            std::process::abort();
        }
        n
    }

    /// Durability points passed so far.
    pub fn durability_points(&self) -> u64 {
        self.kill_counter.load(Ordering::SeqCst)
    }

    /// Injection point: panics iff this plan targets `func`.
    ///
    /// # Panics
    ///
    /// Deliberately, when `func` matches `panic_func` — that is the
    /// whole point of the harness.
    pub fn maybe_panic(&self, func: FuncId) {
        if let Some(target) = &self.panic_func {
            if *target == func.as_u32().to_string() {
                panic!("injected fault: panic in stage for function {}", func.as_u32());
            }
        }
    }

    /// Injection point: sleeps for `delay_ms` if configured.
    pub fn apply_delay(&self) {
        if self.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.delay_ms));
        }
    }
}

/// The process-wide abort hook, run by [`FaultPlan::durability_point`]
/// immediately before `std::process::abort()`.
static ABORT_HOOK: std::sync::OnceLock<Box<dyn Fn() + Send + Sync>> = std::sync::OnceLock::new();

/// Installs a hook run right before an injected-kill abort, so a
/// long-lived process can flush last-gasp diagnostics (the ingest
/// daemon dumps its flight recorder here). First installation wins;
/// later calls are ignored — the abort path must stay race-free and a
/// daemon installs exactly one hook at startup. The hook must not
/// allocate unboundedly or block: the process is about to die.
pub fn set_abort_hook(hook: Box<dyn Fn() + Send + Sync>) {
    let _ = ABORT_HOOK.set(hook);
}

/// Runs the installed abort hook, if any. Public so other hard-exit
/// paths (future panic handlers) can share it.
pub fn run_abort_hook() {
    if let Some(hook) = ABORT_HOOK.get() {
        hook();
    }
}

/// A bounded retry policy with exponential backoff and deterministic
/// jitter.
///
/// Transient I/O (a WAL append hitting a momentarily-full disk, a
/// socket write racing a TCP stall) should be retried a bounded number
/// of times, with growing pauses, before the failure is surfaced. The
/// jitter is derived from `(seed, failure-count)` with a SplitMix64
/// hash, so two runs with the same seed produce the *same* backoff
/// sequence — chaos tests stay reproducible — while different seeds
/// decorrelate the retry storms of independent connections.
///
/// The default policy is [`Retry::none`]: one attempt, no backoff —
/// retrying is always an explicit choice.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Retry {
    /// Total attempts, the first one included. Clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub cap_delay_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for Retry {
    fn default() -> Self {
        Retry::none()
    }
}

/// A retry-wrapped operation failed on every allowed attempt; `last` is
/// the final error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RetryExhausted<E> {
    /// Attempts actually made (equals the policy's cap).
    pub attempts: u32,
    /// The error of the last attempt.
    pub last: E,
}

impl<E: std::fmt::Display> std::fmt::Display for RetryExhausted<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gave up after {} attempt(s): {}", self.attempts, self.last)
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for RetryExhausted<E> {}

/// SplitMix64: a tiny, high-quality 64-bit mixer — deterministic jitter
/// without pulling in a PRNG crate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Retry {
    /// One attempt, no backoff: the no-retry policy.
    pub fn none() -> Retry {
        Retry { max_attempts: 1, base_delay_ms: 0, cap_delay_ms: 0, seed: 0 }
    }

    /// A policy with `max_attempts` total attempts, exponential backoff
    /// from `base_delay_ms` capped at `cap_delay_ms`, jitter-seeded by
    /// `seed`.
    pub fn new(max_attempts: u32, base_delay_ms: u64, cap_delay_ms: u64, seed: u64) -> Retry {
        Retry { max_attempts, base_delay_ms, cap_delay_ms, seed }
    }

    /// Whether the policy ever retries.
    pub fn is_active(&self) -> bool {
        self.max_attempts > 1
    }

    /// The backoff before the attempt following the `failures`-th failure
    /// (1-based), in milliseconds. Deterministic in `(self, failures)`:
    /// exponential (`base * 2^(failures-1)`) capped at `cap_delay_ms`,
    /// jittered into the upper half of the exponential value ("equal
    /// jitter"), never above the cap.
    pub fn backoff_ms(&self, failures: u32) -> u64 {
        if failures == 0 || self.base_delay_ms == 0 || self.cap_delay_ms == 0 {
            return 0;
        }
        let exp = u32::min(failures - 1, 62);
        let full = self
            .base_delay_ms
            .saturating_mul(1u64 << exp)
            .min(self.cap_delay_ms);
        let half = full / 2;
        let span = full - half;
        half + splitmix64(self.seed ^ u64::from(failures).wrapping_mul(0xA24B_AED4_963E_E407))
            % (span + 1)
    }

    /// Runs `op` under this policy, sleeping the jittered backoff between
    /// attempts. `op` receives the 1-based attempt number. On success
    /// returns the value and the number of attempts used; when every
    /// attempt fails, returns [`RetryExhausted`] with the last error.
    pub fn run<T, E>(
        &self,
        op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<(T, u32), RetryExhausted<E>> {
        self.run_with(
            |ms| std::thread::sleep(Duration::from_millis(ms)),
            op,
        )
    }

    /// Like [`Retry::run`] but with an injectable sleep, so tests can
    /// observe the exact backoff sequence without waiting it out.
    pub fn run_with<T, E>(
        &self,
        mut sleep: impl FnMut(u64),
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<(T, u32), RetryExhausted<E>> {
        let cap = self.max_attempts.max(1);
        let mut failures = 0u32;
        loop {
            match op(failures + 1) {
                Ok(v) => return Ok((v, failures + 1)),
                Err(e) => {
                    failures += 1;
                    if failures >= cap {
                        return Err(RetryExhausted { attempts: failures, last: e });
                    }
                    let ms = self.backoff_ms(failures);
                    if ms > 0 {
                        sleep(ms);
                    }
                }
            }
        }
    }
}

/// Renders a panic payload (from `catch_unwind` / `JoinHandle::join`)
/// into a human-readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            b.charge_step().unwrap();
        }
        b.charge_bytes(u64::MAX / 2).unwrap();
        assert!(b.check().is_ok());
        // Unlimited budgets skip counter updates entirely.
        assert_eq!(b.steps_used(), 0);
    }

    #[test]
    fn step_limit_fires() {
        let b = Limits::new().max_steps(10).start();
        let mut stopped = None;
        for _ in 0..100 {
            if let Err(r) = b.charge_step() {
                stopped = Some(r);
                break;
            }
        }
        assert_eq!(stopped, Some(StopReason::StepLimit));
        assert!(b.steps_used() >= 10);
    }

    #[test]
    fn byte_limit_fires() {
        let b = Limits::new().max_bytes(1000).start();
        assert!(b.charge_bytes(500).is_ok());
        assert!(b.charge_bytes(400).is_ok());
        assert_eq!(b.charge_bytes(200), Err(StopReason::ByteLimit));
    }

    #[test]
    fn deadline_fires_promptly() {
        let b = Limits::new().deadline_ms(20).start();
        assert!(b.check().is_ok());
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.check(), Err(StopReason::Deadline));
        assert_eq!(b.charge_step(), Err(StopReason::Deadline));
    }

    #[test]
    fn cancellation_beats_everything() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        assert!(b.charge_step().is_ok());
        token.cancel();
        assert_eq!(b.check(), Err(StopReason::Cancelled));
        assert_eq!(b.charge_step(), Err(StopReason::Cancelled));
        assert_eq!(b.charge_bytes(1), Err(StopReason::Cancelled));
    }

    #[test]
    fn clones_share_counters() {
        let b = Limits::new().max_steps(100).start();
        let c = b.clone();
        for _ in 0..60 {
            b.charge_step().unwrap();
        }
        assert_eq!(c.steps_used(), 60);
        let mut stopped = false;
        for _ in 0..60 {
            if c.charge_step().is_err() {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "clone must observe the shared step counter");
        assert_eq!(b, c);
    }

    #[test]
    fn fault_plan_panics_only_on_target() {
        let plan = FaultPlan::panic_on(FuncId::from_u32(7));
        plan.maybe_panic(FuncId::from_u32(3)); // no-op
        let caught = std::panic::catch_unwind(|| plan.maybe_panic(FuncId::from_u32(7)));
        let payload = caught.expect_err("target function must panic");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("injected fault"), "got: {msg}");
        assert!(msg.contains('7'), "got: {msg}");
    }

    #[test]
    fn fault_plan_inactive_by_default() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::panic_on(FuncId::from_u32(0)).is_active());
        assert!(FaultPlan::delay(1).is_active());
    }

    #[test]
    fn stop_reason_displays() {
        assert!(StopReason::Deadline.to_string().contains("deadline"));
        assert!(StopReason::StepLimit.to_string().contains("step"));
        assert!(StopReason::ByteLimit.to_string().contains("byte"));
        assert!(StopReason::Cancelled.to_string().contains("cancel"));
    }

    #[test]
    fn retry_none_runs_once() {
        let retry = Retry::none();
        assert!(!retry.is_active());
        let r: Result<(u32, u32), _> = retry.run_with(|_| {}, |_| Err::<u32, _>("boom"));
        let e = r.unwrap_err();
        assert_eq!(e.attempts, 1);
        assert_eq!(e.last, "boom");
    }

    #[test]
    fn retry_succeeds_within_cap_and_counts_attempts() {
        let retry = Retry::new(4, 1, 10, 7);
        let mut fails = 2;
        let (v, attempts) = retry
            .run_with(|_| {}, |_| {
                if fails > 0 {
                    fails -= 1;
                    Err("transient")
                } else {
                    Ok(42)
                }
            })
            .unwrap();
        assert_eq!(v, 42);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn retry_backoff_deterministic_and_capped() {
        let retry = Retry::new(8, 5, 100, 123);
        let a: Vec<u64> = (1..8).map(|f| retry.backoff_ms(f)).collect();
        let b: Vec<u64> = (1..8).map(|f| retry.backoff_ms(f)).collect();
        assert_eq!(a, b, "same seed, same sequence");
        assert!(a.iter().all(|&ms| ms <= 100), "bounded by cap: {a:?}");
        let other = Retry::new(8, 5, 100, 124);
        let c: Vec<u64> = (1..8).map(|f| other.backoff_ms(f)).collect();
        assert_ne!(a, c, "different seeds decorrelate");
    }

    #[test]
    fn fault_plan_transient_io_injects_exactly_n() {
        let plan = FaultPlan::transient_io(3);
        let clone = plan.clone();
        let mut faults = 0;
        for _ in 0..10 {
            if clone.take_io_fault() {
                faults += 1;
            }
        }
        assert_eq!(faults, 3, "clones share the injection counter");
        assert!(!plan.take_io_fault());
    }

    #[test]
    fn fault_plan_net_fault_every_k() {
        let plan = FaultPlan::net_fault_every(3);
        let hits: Vec<bool> = (0..9).map(|_| plan.take_net_fault()).collect();
        assert_eq!(hits, [false, false, true, false, false, true, false, false, true]);
        assert!(!FaultPlan::none().take_net_fault());
    }

    #[test]
    fn panic_message_handles_both_payload_kinds() {
        let s = std::panic::catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_message(s.as_ref()), "literal");
        let owned = std::panic::catch_unwind(|| panic!("{}", 42)).unwrap_err();
        assert_eq!(panic_message(owned.as_ref()), "42");
    }
}
