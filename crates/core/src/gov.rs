//! **twpp-gov** — resource governance for every stage of the pipeline.
//!
//! A production service over TWPP archives must bound *every* stage —
//! tracing, compaction, and the §5 demand-driven data-flow queries —
//! rather than run to completion or die. This module provides the two
//! primitives the rest of the workspace threads through its hot loops:
//!
//! * [`Budget`] — a shared, thread-safe resource envelope combining an
//!   optional wall-clock deadline, an optional step (event/node-visit)
//!   cap, an approximate byte cap, and a cooperative [`CancelToken`].
//!   Consumers call [`Budget::charge_step`] / [`Budget::charge_steps`] /
//!   [`Budget::charge_bytes`] at natural granularity (one worklist pop,
//!   one compacted function, one decoded frame) and stop with a typed
//!   [`StopReason`] when the envelope is exhausted.
//! * [`FaultPlan`] — a deterministic fault-injection harness used by the
//!   test suite and the CLI (`TWPP_INJECT_PANIC=<func-id>`,
//!   `TWPP_INJECT_DELAY_MS=<ms>`) to prove that panics degrade rather
//!   than destroy and that deadlines fire within one check interval.
//!
//! Design notes:
//!
//! * `Budget` is `Clone` and internally `Arc`-shared: all clones charge
//!   the same counters, so the pipeline's worker pool and the caller see
//!   a single envelope.
//! * The unlimited budget ([`Budget::default`]/[`Budget::unlimited`])
//!   caches an `unlimited` flag so governed hot loops cost one branch
//!   when no limits are set — the pre-governance fast path is preserved.
//! * The deadline is re-evaluated on **every** charge when set. The
//!   acceptance contract is "a deadlined run overshoots by at most one
//!   check interval", and charges are already amortised over meaningful
//!   units of work, so there is no additional stride.

#![deny(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use twpp_ir::FuncId;

/// Environment variable naming a function id whose per-function stage
/// panics deterministically (fault injection).
pub const INJECT_PANIC_ENV: &str = "TWPP_INJECT_PANIC";

/// Environment variable adding a sleep (milliseconds) to every
/// per-function stage (fault injection; used to make deadlines fire
/// deterministically in tests).
pub const INJECT_DELAY_ENV: &str = "TWPP_INJECT_DELAY_MS";

/// Environment variable naming the 1-based durability point at which the
/// process aborts (`std::process::abort`, no unwinding, no destructors —
/// the closest deterministic stand-in for `kill -9`). Durability points
/// are counted by [`FaultPlan::durability_point`]; the ingest layer calls
/// it once after every WAL append, segment commit, WAL rotation and merge
/// commit, so a sweep of `TWPP_INJECT_KILL_AT=1..=N` crashes a scripted
/// run at every moment state was just made durable.
pub const INJECT_KILL_ENV: &str = "TWPP_INJECT_KILL_AT";

/// Why a governed computation stopped before completion.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step (event / node-visit) cap was reached.
    StepLimit,
    /// The approximate byte cap was reached.
    ByteLimit,
    /// The attached [`CancelToken`] was triggered.
    Cancelled,
}

impl StopReason {
    /// Stable machine-readable form used by the RunReport schema
    /// (`deadline` / `step_limit` / `byte_limit` / `cancelled`).
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Deadline => "deadline",
            StopReason::StepLimit => "step_limit",
            StopReason::ByteLimit => "byte_limit",
            StopReason::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "wall-clock deadline exceeded"),
            StopReason::StepLimit => write!(f, "step limit exceeded"),
            StopReason::ByteLimit => write!(f, "byte limit exceeded"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for StopReason {}

/// A cooperative cancellation flag shared between a controller and any
/// number of governed computations. Cheap to clone; all clones observe
/// the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Declarative limits used to construct a [`Budget`].
///
/// ```
/// use twpp::gov::Limits;
/// let budget = Limits::new().max_steps(10_000).deadline_ms(250).start();
/// assert!(budget.check().is_ok());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Limits {
    /// Wall-clock deadline in milliseconds from [`Limits::start`].
    pub deadline_ms: Option<u64>,
    /// Maximum number of steps (events / node visits) to process.
    pub max_steps: Option<u64>,
    /// Approximate maximum number of bytes to materialise.
    pub max_bytes: Option<u64>,
}

impl Limits {
    /// No limits at all; `start()` yields an unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline, in milliseconds from `start()`.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the step cap.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the approximate byte cap.
    pub fn max_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Whether any limit is actually set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none() && self.max_steps.is_none() && self.max_bytes.is_none()
    }

    /// Starts the clock: materialises a [`Budget`] whose deadline (if
    /// any) is measured from *now*.
    pub fn start(self) -> Budget {
        Budget::with_limits(self, CancelToken::new())
    }

    /// Like [`Limits::start`] but wiring in an external cancel token.
    pub fn start_with_cancel(self, cancel: CancelToken) -> Budget {
        Budget::with_limits(self, cancel)
    }
}

#[derive(Debug)]
struct BudgetInner {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_bytes: Option<u64>,
    steps: AtomicU64,
    bytes: AtomicU64,
    cancel: CancelToken,
}

/// A shared resource envelope: deadline + step cap + byte cap +
/// cancellation. Clones share the same counters.
///
/// The default budget is unlimited and costs a single branch per charge,
/// so governed code paths can be used unconditionally.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Fast-path flag: true when no limit of any kind is configured.
    unlimited: bool,
    inner: Arc<BudgetInner>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Budget {
    /// A budget with no limits: every check succeeds (unless the
    /// embedded token is cancelled, which for this constructor is a
    /// fresh private token nobody else holds).
    pub fn unlimited() -> Self {
        Budget {
            unlimited: true,
            inner: Arc::new(BudgetInner {
                deadline: None,
                max_steps: None,
                max_bytes: None,
                steps: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                cancel: CancelToken::new(),
            }),
        }
    }

    fn with_limits(limits: Limits, cancel: CancelToken) -> Self {
        let deadline = limits
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        Budget {
            unlimited: limits.is_unlimited(),
            inner: Arc::new(BudgetInner {
                deadline,
                max_steps: limits.max_steps,
                max_bytes: limits.max_bytes,
                steps: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                cancel,
            }),
        }
    }

    /// The cancel token attached to this budget. Cancelling it makes
    /// every subsequent [`Budget::check`] fail with
    /// [`StopReason::Cancelled`].
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Whether no limit of any kind is configured. Note that even an
    /// unlimited budget is still cancellable via its token.
    pub fn is_unlimited(&self) -> bool {
        self.unlimited
    }

    /// Steps charged so far.
    pub fn steps_used(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Bytes charged so far.
    pub fn bytes_used(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Checks the envelope without charging anything.
    pub fn check(&self) -> Result<(), StopReason> {
        if self.inner.cancel.is_cancelled() {
            return Err(StopReason::Cancelled);
        }
        if self.unlimited {
            return Ok(());
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(StopReason::Deadline);
            }
        }
        if let Some(max) = self.inner.max_steps {
            if self.inner.steps.load(Ordering::Relaxed) > max {
                return Err(StopReason::StepLimit);
            }
        }
        if let Some(max) = self.inner.max_bytes {
            if self.inner.bytes.load(Ordering::Relaxed) > max {
                return Err(StopReason::ByteLimit);
            }
        }
        Ok(())
    }

    /// Charges one step and checks the envelope.
    pub fn charge_step(&self) -> Result<(), StopReason> {
        self.charge_steps(1)
    }

    /// Charges `n` steps and checks the envelope. A governed loop calls
    /// this once per natural unit of work (worklist pop, compacted
    /// function, decoded frame).
    pub fn charge_steps(&self, n: u64) -> Result<(), StopReason> {
        if self.unlimited {
            // Cancellation still applies, but counters need not move.
            if self.inner.cancel.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
            return Ok(());
        }
        self.inner.steps.fetch_add(n, Ordering::Relaxed);
        self.check()
    }

    /// Charges `n` approximate bytes and checks the envelope.
    pub fn charge_bytes(&self, n: u64) -> Result<(), StopReason> {
        if self.unlimited {
            if self.inner.cancel.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
            return Ok(());
        }
        self.inner.bytes.fetch_add(n, Ordering::Relaxed);
        self.check()
    }
}

/// A deterministic fault-injection plan: optionally panic when a given
/// function is processed, sleep before each per-function stage, and/or
/// abort the whole process at the n-th durability point (crash-recovery
/// testing for the ingest path).
///
/// The library never reads the environment implicitly — tests construct
/// plans directly (no env races between parallel tests), and only the
/// CLI calls [`FaultPlan::from_env`].
///
/// Clones share the durability-point counter, so the plan handed to a
/// [`Compactor`](crate::ingest::Compactor) and the copy the caller keeps
/// observe the same count.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Function id (decimal string of `FuncId::as_u32`) whose stage
    /// panics. `None` disables panic injection.
    pub panic_func: Option<String>,
    /// Milliseconds to sleep at every injection point. Zero disables.
    pub delay_ms: u64,
    /// 1-based durability point at which [`FaultPlan::durability_point`]
    /// aborts the process. `None` disables kill injection.
    pub kill_at: Option<u64>,
    /// Durability points passed so far (shared across clones; excluded
    /// from equality).
    kill_counter: Arc<AtomicU64>,
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        // The counter is runtime progress, not configuration.
        self.panic_func == other.panic_func
            && self.delay_ms == other.delay_ms
            && self.kill_at == other.kill_at
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// No faults; all injection points are no-ops.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is configured.
    pub fn is_active(&self) -> bool {
        self.panic_func.is_some() || self.delay_ms > 0 || self.kill_at.is_some()
    }

    /// Reads `TWPP_INJECT_PANIC` / `TWPP_INJECT_DELAY_MS` /
    /// `TWPP_INJECT_KILL_AT` from the environment. Missing or unparsable
    /// values disable the respective fault.
    pub fn from_env() -> Self {
        let panic_func = std::env::var(INJECT_PANIC_ENV)
            .ok()
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty());
        let delay_ms = std::env::var(INJECT_DELAY_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let kill_at = std::env::var(INJECT_KILL_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n > 0);
        FaultPlan {
            panic_func,
            delay_ms,
            kill_at,
            ..FaultPlan::default()
        }
    }

    /// A plan that panics when `func` is processed.
    pub fn panic_on(func: FuncId) -> Self {
        FaultPlan {
            panic_func: Some(func.as_u32().to_string()),
            ..FaultPlan::default()
        }
    }

    /// A plan that sleeps `ms` milliseconds at every injection point.
    pub fn delay(ms: u64) -> Self {
        FaultPlan {
            delay_ms: ms,
            ..FaultPlan::default()
        }
    }

    /// A plan that aborts the process at the `n`-th durability point
    /// (1-based).
    pub fn kill_after(n: u64) -> Self {
        FaultPlan {
            kill_at: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Injection point marking "state was just made durable": increments
    /// the shared counter and returns the new count. If the plan's
    /// `kill_at` equals the count, the process aborts — no unwinding, no
    /// destructors, no buffered-writer flushes — simulating a hard kill
    /// at exactly this point.
    pub fn durability_point(&self) -> u64 {
        let n = self.kill_counter.fetch_add(1, Ordering::SeqCst) + 1;
        if self.kill_at == Some(n) {
            eprintln!("injected fault: killing process at durability point {n}");
            std::process::abort();
        }
        n
    }

    /// Durability points passed so far.
    pub fn durability_points(&self) -> u64 {
        self.kill_counter.load(Ordering::SeqCst)
    }

    /// Injection point: panics iff this plan targets `func`.
    ///
    /// # Panics
    ///
    /// Deliberately, when `func` matches `panic_func` — that is the
    /// whole point of the harness.
    pub fn maybe_panic(&self, func: FuncId) {
        if let Some(target) = &self.panic_func {
            if *target == func.as_u32().to_string() {
                panic!("injected fault: panic in stage for function {}", func.as_u32());
            }
        }
    }

    /// Injection point: sleeps for `delay_ms` if configured.
    pub fn apply_delay(&self) {
        if self.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.delay_ms));
        }
    }
}

/// Renders a panic payload (from `catch_unwind` / `JoinHandle::join`)
/// into a human-readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            b.charge_step().unwrap();
        }
        b.charge_bytes(u64::MAX / 2).unwrap();
        assert!(b.check().is_ok());
        // Unlimited budgets skip counter updates entirely.
        assert_eq!(b.steps_used(), 0);
    }

    #[test]
    fn step_limit_fires() {
        let b = Limits::new().max_steps(10).start();
        let mut stopped = None;
        for _ in 0..100 {
            if let Err(r) = b.charge_step() {
                stopped = Some(r);
                break;
            }
        }
        assert_eq!(stopped, Some(StopReason::StepLimit));
        assert!(b.steps_used() >= 10);
    }

    #[test]
    fn byte_limit_fires() {
        let b = Limits::new().max_bytes(1000).start();
        assert!(b.charge_bytes(500).is_ok());
        assert!(b.charge_bytes(400).is_ok());
        assert_eq!(b.charge_bytes(200), Err(StopReason::ByteLimit));
    }

    #[test]
    fn deadline_fires_promptly() {
        let b = Limits::new().deadline_ms(20).start();
        assert!(b.check().is_ok());
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.check(), Err(StopReason::Deadline));
        assert_eq!(b.charge_step(), Err(StopReason::Deadline));
    }

    #[test]
    fn cancellation_beats_everything() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        assert!(b.charge_step().is_ok());
        token.cancel();
        assert_eq!(b.check(), Err(StopReason::Cancelled));
        assert_eq!(b.charge_step(), Err(StopReason::Cancelled));
        assert_eq!(b.charge_bytes(1), Err(StopReason::Cancelled));
    }

    #[test]
    fn clones_share_counters() {
        let b = Limits::new().max_steps(100).start();
        let c = b.clone();
        for _ in 0..60 {
            b.charge_step().unwrap();
        }
        assert_eq!(c.steps_used(), 60);
        let mut stopped = false;
        for _ in 0..60 {
            if c.charge_step().is_err() {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "clone must observe the shared step counter");
        assert_eq!(b, c);
    }

    #[test]
    fn fault_plan_panics_only_on_target() {
        let plan = FaultPlan::panic_on(FuncId::from_u32(7));
        plan.maybe_panic(FuncId::from_u32(3)); // no-op
        let caught = std::panic::catch_unwind(|| plan.maybe_panic(FuncId::from_u32(7)));
        let payload = caught.expect_err("target function must panic");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("injected fault"), "got: {msg}");
        assert!(msg.contains('7'), "got: {msg}");
    }

    #[test]
    fn fault_plan_inactive_by_default() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::panic_on(FuncId::from_u32(0)).is_active());
        assert!(FaultPlan::delay(1).is_active());
    }

    #[test]
    fn stop_reason_displays() {
        assert!(StopReason::Deadline.to_string().contains("deadline"));
        assert!(StopReason::StepLimit.to_string().contains("step"));
        assert!(StopReason::ByteLimit.to_string().contains("byte"));
        assert!(StopReason::Cancelled.to_string().contains("cancel"));
    }

    #[test]
    fn panic_message_handles_both_payload_kinds() {
        let s = std::panic::catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_message(s.as_ref()), "literal");
        let owned = std::panic::catch_unwind(|| panic!("{}", 42)).unwrap_err();
        assert_eq!(panic_message(owned.as_ref()), "42");
    }
}
