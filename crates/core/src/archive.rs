//! The TWPP archive: the on-disk container whose layout makes per-function
//! queries fast (the paper's access-time study, Tables 4 and 5).
//!
//! Layout:
//!
//! ```text
//! "TWPA" magic | version | n_funcs | dcg_comp_len | names_len
//! function table (most-called first):
//!     func_id | call_count | n_dicts | n_traces | offset | byte_len
//! LZW-compressed DCG (padded to 4 bytes)
//! optional name table: per function, a length-prefixed UTF-8 name
//! per-function regions at the recorded offsets:
//!     dictionaries, then timestamped traces
//! ```
//!
//! Reading the traces of one function touches the header and exactly one
//! region: `O(header + that function's data)`, versus scanning the entire
//! stream for the uncompacted WPP and processing the whole grammar for
//! Sequitur-compressed WPPs.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use twpp_ir::{BlockId, FuncId};

use crate::dbb::DbbDictionary;
use crate::dcg::Dcg;
use crate::lzw;
use crate::pipeline::{CompactedTwpp, FunctionBlock};
use crate::timestamped::{TimestampedTrace, TimestampedTraceError};

const MAGIC: [u8; 4] = *b"TWPA";
const VERSION: u32 = 2;
const FIXED_HEADER_LEN: usize = 20;

/// Errors produced while encoding or decoding an archive.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArchiveError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the `TWPA` magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// The archive is shorter than its header claims.
    Truncated,
    /// The requested function is not present.
    UnknownFunction(FuncId),
    /// A region failed to decode.
    Corrupt(String),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive I/O error: {e}"),
            ArchiveError::BadMagic => f.write_str("missing TWPA magic"),
            ArchiveError::BadVersion(v) => write!(f, "unsupported archive version {v}"),
            ArchiveError::Truncated => f.write_str("truncated archive"),
            ArchiveError::UnknownFunction(id) => write!(f, "function {id} not in archive"),
            ArchiveError::Corrupt(what) => write!(f, "corrupt archive: {what}"),
        }
    }
}

impl Error for ArchiveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchiveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> ArchiveError {
        ArchiveError::Io(e)
    }
}

impl From<TimestampedTraceError> for ArchiveError {
    fn from(e: TimestampedTraceError) -> ArchiveError {
        ArchiveError::Corrupt(e.to_string())
    }
}

/// One entry of the archive's function table.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct TableEntry {
    func: FuncId,
    call_count: u32,
    n_dicts: u32,
    n_traces: u32,
    /// Offset of the function's region from the start of the data section.
    offset: u32,
    byte_len: u32,
}

const TABLE_ENTRY_WORDS: usize = 6;

/// The decoded per-function payload: what a query for one function returns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionRecord {
    /// The function.
    pub func: FuncId,
    /// Number of calls recorded in the WPP.
    pub call_count: u64,
    /// The function's DBB dictionaries.
    pub dicts: Vec<DbbDictionary>,
    /// Unique timestamped traces with their dictionary indices.
    pub traces: Vec<(u32, TimestampedTrace)>,
}

impl FunctionRecord {
    /// Expands every unique trace back to its full block sequence.
    pub fn expanded_traces(&self) -> Vec<crate::trace::PathTrace> {
        self.traces
            .iter()
            .map(|(dict_idx, tt)| self.dicts[*dict_idx as usize].expand(&tt.to_path_trace()))
            .collect()
    }
}

/// An encoded TWPP archive with a parsed function index.
///
/// # Examples
///
/// ```
/// use twpp::{compact, TwppArchive};
/// use twpp_tracer::{run_traced, ExecLimits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = twpp_lang::compile(
///     "fn main() { let i = 0; while (i < 4) { print(i); i = i + 1; } }",
/// )?;
/// let (_, wpp) = run_traced(&program, &[], ExecLimits::default())?;
/// let archive = TwppArchive::from_compacted(&compact(&wpp)?);
/// let record = archive.read_function(program.main())?;
/// assert_eq!(record.call_count, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TwppArchive {
    bytes: Vec<u8>,
    table: Vec<TableEntry>,
    index: HashMap<FuncId, usize>,
    names: Vec<Option<String>>,
    data_start: usize,
    dcg_comp_len: usize,
}

impl TwppArchive {
    /// Encodes a compacted TWPP into archive form (without function
    /// names; see [`TwppArchive::from_compacted_named`]).
    pub fn from_compacted(c: &CompactedTwpp) -> TwppArchive {
        TwppArchive::from_compacted_named(c, &HashMap::new())
    }

    /// Encodes a compacted TWPP, embedding the given function names so
    /// tools can query by name.
    pub fn from_compacted_named(
        c: &CompactedTwpp,
        names: &HashMap<FuncId, String>,
    ) -> TwppArchive {
        // Compress the DCG.
        let dcg_words = c.dcg.to_words();
        let dcg_bytes: Vec<u8> = dcg_words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let dcg_comp = lzw::compress(&dcg_bytes);
        let dcg_padded = dcg_comp.len().div_ceil(4) * 4;

        // Encode function regions.
        let mut regions: Vec<Vec<u32>> = Vec::with_capacity(c.functions.len());
        let mut table: Vec<TableEntry> = Vec::with_capacity(c.functions.len());
        let mut offset = 0u32;
        for fb in &c.functions {
            let words = encode_region(fb);
            let byte_len = (words.len() * 4) as u32;
            table.push(TableEntry {
                func: fb.func,
                call_count: u32::try_from(fb.call_count).unwrap_or(u32::MAX),
                n_dicts: fb.dicts.len() as u32,
                n_traces: fb.traces.len() as u32,
                offset,
                byte_len,
            });
            offset += byte_len;
            regions.push(words);
        }

        // Name table: per function (table order), a length-prefixed
        // UTF-8 name; zero length means unnamed.
        let mut name_blob: Vec<u8> = Vec::new();
        let mut stored_names: Vec<Option<String>> = Vec::with_capacity(table.len());
        if names.is_empty() {
            stored_names.resize(table.len(), None);
        } else {
            for e in &table {
                let name = names.get(&e.func).cloned();
                let bytes = name.as_deref().unwrap_or("").as_bytes();
                name_blob.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                name_blob.extend_from_slice(bytes);
                stored_names.push(name.filter(|n| !n.is_empty()));
            }
            while !name_blob.len().is_multiple_of(4) {
                name_blob.push(0);
            }
        }

        // Assemble.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        push_u32(&mut bytes, VERSION);
        push_u32(&mut bytes, c.functions.len() as u32);
        push_u32(&mut bytes, dcg_comp.len() as u32);
        push_u32(&mut bytes, name_blob.len() as u32);
        for e in &table {
            push_u32(&mut bytes, e.func.as_u32());
            push_u32(&mut bytes, e.call_count);
            push_u32(&mut bytes, e.n_dicts);
            push_u32(&mut bytes, e.n_traces);
            push_u32(&mut bytes, e.offset);
            push_u32(&mut bytes, e.byte_len);
        }
        bytes.extend_from_slice(&dcg_comp);
        bytes.resize(bytes.len() + (dcg_padded - dcg_comp.len()), 0);
        bytes.extend_from_slice(&name_blob);
        let data_start = bytes.len();
        for words in &regions {
            for w in words {
                push_u32(&mut bytes, *w);
            }
        }
        let index = table
            .iter()
            .enumerate()
            .map(|(i, e)| (e.func, i))
            .collect();
        TwppArchive {
            bytes,
            table,
            index,
            names: stored_names,
            data_start,
            dcg_comp_len: dcg_comp.len(),
        }
    }

    /// Parses an archive, reading only the header and function table.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchiveError`] for malformed input.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<TwppArchive, ArchiveError> {
        let (table, names, dcg_comp_len, data_start) = parse_header(&bytes)?;
        // Validate regions lie within the buffer.
        for e in &table {
            let end = data_start + e.offset as usize + e.byte_len as usize;
            if end > bytes.len() {
                return Err(ArchiveError::Truncated);
            }
        }
        let index = table
            .iter()
            .enumerate()
            .map(|(i, e)| (e.func, i))
            .collect();
        Ok(TwppArchive {
            bytes,
            table,
            index,
            names,
            data_start,
            dcg_comp_len,
        })
    }

    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total archive size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Function ids present, most-frequently-called first.
    pub fn function_ids(&self) -> Vec<FuncId> {
        self.table.iter().map(|e| e.func).collect()
    }

    /// The embedded name of `func`, if the archive stores names.
    pub fn function_name(&self, func: FuncId) -> Option<&str> {
        let &i = self.index.get(&func)?;
        self.names[i].as_deref()
    }

    /// Looks up a function id by its embedded name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.table
            .iter()
            .enumerate()
            .find(|(i, _)| self.names[*i].as_deref() == Some(name))
            .map(|(_, e)| e.func)
    }

    /// The recorded call count of `func`, if present.
    pub fn call_count(&self, func: FuncId) -> Option<u64> {
        self.index
            .get(&func)
            .map(|&i| u64::from(self.table[i].call_count))
    }

    /// Decodes the traces and dictionaries of one function, touching only
    /// that function's region — the fast path of Table 4.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownFunction`] for absent functions or a
    /// decoding error for corrupt regions.
    pub fn read_function(&self, func: FuncId) -> Result<FunctionRecord, ArchiveError> {
        let &i = self
            .index
            .get(&func)
            .ok_or(ArchiveError::UnknownFunction(func))?;
        let e = self.table[i];
        let start = self.data_start + e.offset as usize;
        let region = &self.bytes[start..start + e.byte_len as usize];
        decode_region(e, region)
    }

    /// Decompresses and decodes the dynamic call graph.
    ///
    /// # Errors
    ///
    /// Returns a decoding error for corrupt archives.
    pub fn read_dcg(&self) -> Result<Dcg, ArchiveError> {
        let header_len = FIXED_HEADER_LEN + self.table.len() * TABLE_ENTRY_WORDS * 4;
        let comp = &self.bytes[header_len..header_len + self.dcg_comp_len];
        let raw = lzw::decompress(comp).map_err(|e| ArchiveError::Corrupt(e.to_string()))?;
        if raw.len() % 4 != 0 {
            return Err(ArchiveError::Corrupt("DCG byte length".into()));
        }
        let words: Vec<u32> = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Dcg::from_words(&words).ok_or_else(|| ArchiveError::Corrupt("DCG structure".into()))
    }

    /// Fully decodes the archive back into a [`CompactedTwpp`].
    ///
    /// # Errors
    ///
    /// Returns a decoding error for corrupt archives.
    pub fn to_compacted(&self) -> Result<CompactedTwpp, ArchiveError> {
        let dcg = self.read_dcg()?;
        let mut functions = Vec::with_capacity(self.table.len());
        for e in &self.table {
            let r = self.read_function(e.func)?;
            functions.push(FunctionBlock {
                func: r.func,
                call_count: r.call_count,
                dicts: r.dicts,
                traces: r.traces,
            });
        }
        Ok(CompactedTwpp { dcg, functions })
    }

    /// Writes the archive to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), ArchiveError> {
        let mut f = File::create(path)?;
        f.write_all(&self.bytes)?;
        Ok(())
    }

    /// Loads a whole archive file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and format errors.
    pub fn load(path: &Path) -> Result<TwppArchive, ArchiveError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        TwppArchive::from_bytes(bytes)
    }

    /// Reads the traces of a single function **directly from a file**:
    /// reads the header, seeks to the function's region and decodes only
    /// those bytes. This is the exact experiment of Table 4's column C.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors.
    pub fn read_function_from_file(
        path: &Path,
        func: FuncId,
    ) -> Result<FunctionRecord, ArchiveError> {
        let mut f = File::open(path)?;
        // Fixed header.
        let mut fixed = [0u8; FIXED_HEADER_LEN];
        f.read_exact(&mut fixed)?;
        if fixed[0..4] != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let version = read_u32(&fixed[4..8]);
        if version != VERSION {
            return Err(ArchiveError::BadVersion(version));
        }
        let n_funcs = read_u32(&fixed[8..12]) as usize;
        let dcg_comp_len = read_u32(&fixed[12..16]) as usize;
        let names_len = read_u32(&fixed[16..20]) as usize;
        let mut table_bytes = vec![0u8; n_funcs * TABLE_ENTRY_WORDS * 4];
        f.read_exact(&mut table_bytes)?;
        let data_start = FIXED_HEADER_LEN
            + table_bytes.len()
            + dcg_comp_len.div_ceil(4) * 4
            + names_len;
        for chunk in table_bytes.chunks_exact(TABLE_ENTRY_WORDS * 4) {
            let e = TableEntry {
                func: FuncId::from_u32(read_u32(&chunk[0..4])),
                call_count: read_u32(&chunk[4..8]),
                n_dicts: read_u32(&chunk[8..12]),
                n_traces: read_u32(&chunk[12..16]),
                offset: read_u32(&chunk[16..20]),
                byte_len: read_u32(&chunk[20..24]),
            };
            if e.func == func {
                f.seek(SeekFrom::Start((data_start + e.offset as usize) as u64))?;
                let mut region = vec![0u8; e.byte_len as usize];
                f.read_exact(&mut region)?;
                return decode_region(e, &region);
            }
        }
        Err(ArchiveError::UnknownFunction(func))
    }
}

fn push_u32(bytes: &mut Vec<u8>, w: u32) {
    bytes.extend_from_slice(&w.to_le_bytes());
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

type ParsedHeader = (Vec<TableEntry>, Vec<Option<String>>, usize, usize);

fn parse_header(bytes: &[u8]) -> Result<ParsedHeader, ArchiveError> {
    if bytes.len() < FIXED_HEADER_LEN {
        return Err(ArchiveError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(ArchiveError::BadMagic);
    }
    let version = read_u32(&bytes[4..8]);
    if version != VERSION {
        return Err(ArchiveError::BadVersion(version));
    }
    let n_funcs = read_u32(&bytes[8..12]) as usize;
    let dcg_comp_len = read_u32(&bytes[12..16]) as usize;
    let names_len = read_u32(&bytes[16..20]) as usize;
    let table_len = n_funcs
        .checked_mul(TABLE_ENTRY_WORDS * 4)
        .ok_or(ArchiveError::Truncated)?;
    let names_start = FIXED_HEADER_LEN
        .checked_add(table_len)
        .and_then(|x| x.checked_add(dcg_comp_len.div_ceil(4) * 4))
        .ok_or(ArchiveError::Truncated)?;
    let data_start = names_start
        .checked_add(names_len)
        .ok_or(ArchiveError::Truncated)?;
    if data_start > bytes.len() {
        return Err(ArchiveError::Truncated);
    }
    let mut table = Vec::with_capacity(n_funcs);
    for chunk in
        bytes[FIXED_HEADER_LEN..FIXED_HEADER_LEN + table_len].chunks_exact(TABLE_ENTRY_WORDS * 4)
    {
        table.push(TableEntry {
            func: FuncId::from_u32(read_u32(&chunk[0..4])),
            call_count: read_u32(&chunk[4..8]),
            n_dicts: read_u32(&chunk[8..12]),
            n_traces: read_u32(&chunk[12..16]),
            offset: read_u32(&chunk[16..20]),
            byte_len: read_u32(&chunk[20..24]),
        });
    }
    let names = parse_names(&bytes[names_start..names_start + names_len], n_funcs)?;
    Ok((table, names, dcg_comp_len, data_start))
}

/// Parses the length-prefixed name table; an empty blob means unnamed.
fn parse_names(blob: &[u8], n_funcs: usize) -> Result<Vec<Option<String>>, ArchiveError> {
    if blob.is_empty() {
        return Ok(vec![None; n_funcs]);
    }
    let mut names = Vec::with_capacity(n_funcs);
    let mut pos = 0usize;
    for _ in 0..n_funcs {
        if pos + 4 > blob.len() {
            return Err(ArchiveError::Corrupt("name table".into()));
        }
        let len = read_u32(&blob[pos..pos + 4]) as usize;
        pos += 4;
        if pos + len > blob.len() {
            return Err(ArchiveError::Corrupt("name table".into()));
        }
        let name = std::str::from_utf8(&blob[pos..pos + len])
            .map_err(|_| ArchiveError::Corrupt("name table utf-8".into()))?;
        pos += len;
        names.push(if name.is_empty() {
            None
        } else {
            Some(name.to_owned())
        });
    }
    Ok(names)
}

/// Encodes one function's region:
/// dictionaries (`n_chains, (head, len, blocks…)*` each) followed by traces
/// (`dict_idx` + timestamped words each).
fn encode_region(fb: &FunctionBlock) -> Vec<u32> {
    let mut words = Vec::new();
    for dict in &fb.dicts {
        words.push(dict.len() as u32);
        for (head, chain) in dict.iter() {
            words.push(head.as_u32());
            words.push(chain.len() as u32);
            words.extend(chain.iter().map(|b| b.as_u32()));
        }
    }
    for (dict_idx, tt) in &fb.traces {
        words.push(*dict_idx);
        words.extend(tt.to_words());
    }
    words
}

fn decode_region(e: TableEntry, region: &[u8]) -> Result<FunctionRecord, ArchiveError> {
    if !region.len().is_multiple_of(4) {
        return Err(ArchiveError::Corrupt("region length".into()));
    }
    let words: Vec<u32> = region
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let mut pos = 0usize;
    let take = |pos: &mut usize| -> Result<u32, ArchiveError> {
        let w = *words.get(*pos).ok_or(ArchiveError::Truncated)?;
        *pos += 1;
        Ok(w)
    };
    // Counts come from the (possibly corrupted) header: clamp every
    // pre-allocation to what the region could actually hold.
    let cap = |n: usize| n.min(words.len() + 1);
    let mut dicts = Vec::with_capacity(cap(e.n_dicts as usize));
    for _ in 0..e.n_dicts {
        let n_chains = take(&mut pos)?;
        let mut chains = Vec::with_capacity(cap(n_chains as usize));
        for _ in 0..n_chains {
            let head = take(&mut pos)?;
            let len = take(&mut pos)? as usize;
            if len < 2 {
                return Err(ArchiveError::Corrupt("chain too short".into()));
            }
            let mut chain = Vec::with_capacity(cap(len));
            for _ in 0..len {
                let b = take(&mut pos)?;
                if b == 0 {
                    return Err(ArchiveError::Corrupt("zero block id".into()));
                }
                chain.push(BlockId::new(b));
            }
            if head == 0 || chain[0].as_u32() != head {
                return Err(ArchiveError::Corrupt("chain head mismatch".into()));
            }
            chains.push(chain);
        }
        dicts.push(DbbDictionary::from_chains(chains));
    }
    let mut traces = Vec::with_capacity(cap(e.n_traces as usize));
    for _ in 0..e.n_traces {
        let dict_idx = take(&mut pos)?;
        if dict_idx as usize >= dicts.len() {
            return Err(ArchiveError::Corrupt("dictionary index".into()));
        }
        let tt = TimestampedTrace::from_words(&words, &mut pos)?;
        traces.push((dict_idx, tt));
    }
    if pos != words.len() {
        return Err(ArchiveError::Corrupt("trailing region bytes".into()));
    }
    Ok(FunctionRecord {
        func: e.func,
        call_count: u64::from(e.call_count),
        dicts,
        traces,
    })
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compact;
    use twpp_tracer::{RawWpp, WppEvent};

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    fn sample_wpp() -> RawWpp {
        let t1: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10];
        let t2: Vec<u32> = vec![1, 2, 7, 8, 9, 6, 10];
        let calls = [&t1, &t2, &t1, &t1];
        let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(BlockId::new(1))];
        for t in calls {
            events.push(WppEvent::Enter(f(1)));
            for &x in t.iter() {
                events.push(WppEvent::Block(BlockId::new(x)));
            }
            events.push(WppEvent::Exit);
        }
        events.push(WppEvent::Block(BlockId::new(2)));
        events.push(WppEvent::Exit);
        RawWpp::from_events(&events)
    }

    #[test]
    fn archive_round_trip() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let b = TwppArchive::from_bytes(a.as_bytes().to_vec()).unwrap();
        assert_eq!(b.to_compacted().unwrap(), c);
        assert_eq!(b.read_dcg().unwrap(), c.dcg);
    }

    #[test]
    fn per_function_read_matches_raw_scan() {
        let wpp = sample_wpp();
        let c = compact(&wpp).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let record = a.read_function(f(1)).unwrap();
        assert_eq!(record.call_count, 4);
        // The unique traces recoverable from the archive must equal the
        // unique traces a full scan finds.
        let mut scanned: Vec<Vec<BlockId>> = wpp.scan_function(f(1));
        scanned.dedup();
        scanned.sort();
        let mut expanded: Vec<Vec<BlockId>> = record
            .expanded_traces()
            .into_iter()
            .map(Vec::from)
            .collect();
        expanded.sort();
        scanned.dedup();
        assert_eq!(expanded, scanned);
    }

    #[test]
    fn unknown_function_is_reported() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        assert!(matches!(
            a.read_function(f(7)),
            Err(ArchiveError::UnknownFunction(_))
        ));
    }

    #[test]
    fn layout_orders_most_called_first() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        assert_eq!(a.function_ids(), vec![f(1), f(0)]);
        assert_eq!(a.call_count(f(1)), Some(4));
        assert_eq!(a.call_count(f(9)), None);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let bytes = a.as_bytes();
        assert!(matches!(
            TwppArchive::from_bytes(b"XXXX123".to_vec()),
            Err(ArchiveError::BadMagic) | Err(ArchiveError::Truncated)
        ));
        // Truncations anywhere must error, not panic.
        for cut in [4usize, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            let _ = TwppArchive::from_bytes(bytes[..cut.min(bytes.len())].to_vec());
        }
    }

    #[test]
    fn named_archives_store_and_look_up_names() {
        let c = compact(&sample_wpp()).unwrap();
        let mut names = HashMap::new();
        names.insert(f(0), "main".to_owned());
        names.insert(f(1), "helper".to_owned());
        let a = TwppArchive::from_compacted_named(&c, &names);
        assert_eq!(a.function_name(f(0)), Some("main"));
        assert_eq!(a.function_name(f(1)), Some("helper"));
        assert_eq!(a.function_by_name("helper"), Some(f(1)));
        assert_eq!(a.function_by_name("nope"), None);
        // Names survive the byte round trip.
        let b = TwppArchive::from_bytes(a.as_bytes().to_vec()).unwrap();
        assert_eq!(b.function_name(f(1)), Some("helper"));
        assert_eq!(b.to_compacted().unwrap(), c);
        // Unnamed archives answer None.
        let plain = TwppArchive::from_compacted(&c);
        assert_eq!(plain.function_name(f(0)), None);
        // Partial name maps leave the rest unnamed.
        let mut partial = HashMap::new();
        partial.insert(f(1), "only".to_owned());
        let a = TwppArchive::from_compacted_named(&c, &partial);
        assert_eq!(a.function_name(f(0)), None);
        assert_eq!(a.function_name(f(1)), Some("only"));
    }

    #[test]
    fn file_round_trip_and_seek_read() {
        let dir = std::env::temp_dir().join("twpp-archive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.twpa");
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        a.save(&path).unwrap();

        let loaded = TwppArchive::load(&path).unwrap();
        assert_eq!(loaded.to_compacted().unwrap(), c);

        let record = TwppArchive::read_function_from_file(&path, f(1)).unwrap();
        assert_eq!(record, a.read_function(f(1)).unwrap());
        assert!(TwppArchive::read_function_from_file(&path, f(9)).is_err());
        std::fs::remove_file(&path).ok();
    }
}
