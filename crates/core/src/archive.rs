//! The TWPP archive: the on-disk container whose layout makes per-function
//! queries fast (the paper's access-time study, Tables 4 and 5).
//!
//! # Version 3 layout (current)
//!
//! Every region carries a CRC32, function regions are self-delimiting
//! frames appended in stream order, and the function table lives in a
//! *footer* written last — so a crash mid-write leaves a salvageable
//! prefix of intact frames instead of a table pointing at garbage:
//!
//! ```text
//! "TWPA" | version=3 | dcg_comp_len | names_len | header_crc
//! LZW-compressed DCG (padded to 4) | dcg_crc
//! name table [count, (func_id, len, utf8)…] (padded to 4) | names_crc
//! frames, most-called first:
//!     "TWPR" | func | call_count | n_dicts | n_traces | payload_len | frame_crc
//!     payload words (dictionaries then timestamped traces)
//! footer:
//!     "TWPT" | per function: func, call_count, n_dicts, n_traces,
//!                            frame_offset, payload_len, frame_crc
//!     n_funcs | data_len | footer_crc | "TWPC"
//! ```
//!
//! `frame_crc` covers the frame's header fields *and* its payload, so a
//! flip anywhere in a region is caught whether the reader arrives via the
//! footer table or by scanning for frame magics. The trailing `"TWPC"`
//! commit marker is the last thing written: its absence means the archive
//! was interrupted and [`TwppArchive::recover`] must scan for frames.
//!
//! # Version 2 layout (legacy, still readable)
//!
//! ```text
//! "TWPA" | version=2 | n_funcs | dcg_comp_len | names_len
//! function table: func | call_count | n_dicts | n_traces | offset | byte_len
//! LZW-compressed DCG (padded to 4)
//! optional name table: per function, a length-prefixed UTF-8 name
//! per-function regions at the recorded offsets
//! ```
//!
//! Reading the traces of one function touches the header/footer and
//! exactly one region in either version: `O(header + that function's
//! data)`, versus scanning the entire stream for the uncompacted WPP.

#![deny(clippy::unwrap_used)]

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use twpp_ir::checksum::{crc32, Crc32};
use twpp_ir::{BlockId, FuncId};

use crate::dbb::DbbDictionary;
use crate::dcg::Dcg;
use crate::lzw::{self, LzwError};
use crate::pipeline::{CompactedTwpp, FunctionBlock};
use crate::recovery::{FunctionVerdict, RecoveryReport, RegionStatus, SalvageStrategy};
use crate::timestamped::{Codec, TimestampedTrace, TimestampedTraceError};

/// How hard a file-writing path pushes bytes toward the platter before
/// reporting success. Threaded from the CLI into [`TwppArchive::save_with`]
/// and the ingest WAL/segment-seal paths, so production ingestion can
/// request real durability while tests stay fast.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum Durability {
    /// Hand the bytes to the OS and return — fastest, survives a process
    /// crash but not a power cut.
    None,
    /// Additionally flush userspace buffers (the pre-existing behavior of
    /// [`TwppArchive::save`]; the default).
    #[default]
    Flush,
    /// `fsync` the file (and, on the ingest paths, the containing
    /// directory after a rename) before reporting success — the only mode
    /// whose acknowledgements survive a power cut.
    Sync,
}

impl Durability {
    /// Stable string form (`none` / `flush` / `sync`), the CLI flag
    /// vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            Durability::None => "none",
            Durability::Flush => "flush",
            Durability::Sync => "sync",
        }
    }

    /// Parses the CLI flag vocabulary.
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "none" => Some(Durability::None),
            "flush" => Some(Durability::Flush),
            "sync" => Some(Durability::Sync),
            _ => None,
        }
    }

    /// Applies this durability level to an open file whose bytes have
    /// been written.
    pub fn apply(self, f: &mut File) -> std::io::Result<()> {
        match self {
            Durability::None => Ok(()),
            Durability::Flush => f.flush(),
            Durability::Sync => f.sync_all(),
        }
    }
}

pub(crate) const MAGIC: [u8; 4] = *b"TWPA";
/// Current container version.
pub const VERSION: u32 = 3;
/// Legacy container version, still accepted by every read path.
pub const VERSION_V2: u32 = 2;
pub(crate) const FIXED_HEADER_LEN: usize = 20;

pub(crate) const FRAME_MAGIC: [u8; 4] = *b"TWPR";
/// Bytes of a v3 frame header preceding the payload.
pub(crate) const FRAME_HEADER_LEN: usize = 28;
pub(crate) const FOOTER_MAGIC: [u8; 4] = *b"TWPT";
pub(crate) const COMMIT_MAGIC: [u8; 4] = *b"TWPC";
pub(crate) const FOOTER_ENTRY_BYTES: usize = 7 * 4;
/// Footer bytes besides the entries: magic + n_funcs + data_len +
/// footer_crc + commit marker.
pub(crate) const FOOTER_FIXED_LEN: usize = 20;

/// Footer `offset` sentinel marking a function the writer recorded as
/// *failed during compaction* (degraded run): no frame bytes exist for
/// it. Sentinel entries carry `byte_len == 0` and `crc == 0`; only the
/// function id and call count are meaningful.
const SENTINEL_OFFSET: u32 = u32::MAX;

/// Upper bound on the declared function count before any allocation.
pub const MAX_FUNCTIONS: usize = 1 << 20;
/// Upper bound on the decompressed DCG size accepted by [`TwppArchive::read_dcg`].
pub const MAX_DCG_RAW_BYTES: usize = 1 << 28;

const TABLE_ENTRY_WORDS: usize = 6; // v2

/// Errors produced while encoding or decoding an archive.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArchiveError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the `TWPA` magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// The archive is shorter than its header claims.
    Truncated,
    /// The requested function is not present.
    UnknownFunction(FuncId),
    /// The function is listed in the archive but was recorded as failed
    /// during a degraded compaction run: no payload exists by design.
    DegradedFunction(FuncId),
    /// A region failed structural decoding; the string names the spot.
    Corrupt(&'static str),
    /// The compressed DCG failed to decompress.
    Lzw(LzwError),
    /// A timestamped trace failed to decode.
    Trace(TimestampedTraceError),
    /// A region's stored CRC32 does not match its bytes.
    ChecksumMismatch {
        /// Which region failed.
        region: &'static str,
        /// The CRC stored in the archive.
        expected: u32,
        /// The CRC computed over the bytes actually present.
        actual: u32,
    },
    /// The archive has no trailing commit marker: the writer was
    /// interrupted before [`ArchiveWriter::finish`].
    NotCommitted,
    /// A declared size exceeds a hard decoding cap.
    TooLarge {
        /// What was too large.
        what: &'static str,
        /// The declared value.
        declared: u64,
        /// The cap it exceeded.
        limit: u64,
    },
    /// A governed read stopped because its [`crate::gov::Budget`] ran
    /// out before the frame bytes were fetched.
    Stopped(crate::gov::StopReason),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive I/O error: {e}"),
            ArchiveError::BadMagic => f.write_str("missing TWPA magic"),
            ArchiveError::BadVersion(v) => write!(f, "unsupported archive version {v}"),
            ArchiveError::Truncated => f.write_str("truncated archive"),
            ArchiveError::UnknownFunction(id) => write!(f, "function {id} not in archive"),
            ArchiveError::DegradedFunction(id) => write!(
                f,
                "function {id} was recorded as failed during compaction (degraded archive)"
            ),
            ArchiveError::Corrupt(what) => write!(f, "corrupt archive: {what}"),
            ArchiveError::Lzw(e) => write!(f, "corrupt compressed DCG: {e}"),
            ArchiveError::Trace(e) => write!(f, "corrupt timestamped trace: {e}"),
            ArchiveError::ChecksumMismatch {
                region,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {region}: stored {expected:#010x}, computed {actual:#010x}"
            ),
            ArchiveError::NotCommitted => {
                f.write_str("archive has no commit marker (interrupted write)")
            }
            ArchiveError::TooLarge {
                what,
                declared,
                limit,
            } => write!(f, "declared {what} {declared} exceeds cap {limit}"),
            ArchiveError::Stopped(reason) => {
                write!(f, "governed read stopped: {}", reason.as_str())
            }
        }
    }
}

impl Error for ArchiveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchiveError::Io(e) => Some(e),
            ArchiveError::Lzw(e) => Some(e),
            ArchiveError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> ArchiveError {
        ArchiveError::Io(e)
    }
}

impl From<TimestampedTraceError> for ArchiveError {
    fn from(e: TimestampedTraceError) -> ArchiveError {
        ArchiveError::Trace(e)
    }
}

impl From<LzwError> for ArchiveError {
    fn from(e: LzwError) -> ArchiveError {
        ArchiveError::Lzw(e)
    }
}

/// One entry of the archive's function table.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) struct TableEntry {
    pub(crate) func: FuncId,
    pub(crate) call_count: u32,
    pub(crate) n_dicts: u32,
    pub(crate) n_traces: u32,
    /// v3: offset of the function's *frame* from the start of the data
    /// section. v2: offset of the raw region.
    pub(crate) offset: u32,
    /// Payload length in bytes (excluding the v3 frame header).
    pub(crate) byte_len: u32,
    /// v3 frame CRC (over header fields + payload); 0 for v2 entries.
    pub(crate) crc: u32,
}

impl TableEntry {
    /// Whether this entry is a degraded-function sentinel (no frame).
    pub(crate) fn is_sentinel(&self) -> bool {
        self.offset == SENTINEL_OFFSET && self.byte_len == 0
    }
}

/// The decoded per-function payload: what a query for one function returns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionRecord {
    /// The function.
    pub func: FuncId,
    /// Number of calls recorded in the WPP.
    pub call_count: u64,
    /// The function's DBB dictionaries.
    pub dicts: Vec<DbbDictionary>,
    /// Unique timestamped traces with their dictionary indices.
    pub traces: Vec<(u32, TimestampedTrace)>,
}

impl FunctionRecord {
    /// Expands every unique trace back to its full block sequence.
    ///
    /// # Panics
    ///
    /// On a dictionary index out of range. Records decoded from archives
    /// are always validated, so this only fires for hand-built records;
    /// use [`FunctionRecord::try_expanded_traces`] when the record's
    /// provenance is unknown (e.g. CLI input).
    pub fn expanded_traces(&self) -> Vec<crate::trace::PathTrace> {
        self.traces
            .iter()
            .map(|(dict_idx, tt)| self.dicts[*dict_idx as usize].expand(&tt.to_path_trace()))
            .collect()
    }

    /// Fallible variant of [`FunctionRecord::expanded_traces`]: a
    /// dictionary index out of range yields a typed error instead of a
    /// panic.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Corrupt`] when a trace references a dictionary the
    /// record does not hold.
    pub fn try_expanded_traces(&self) -> Result<Vec<crate::trace::PathTrace>, ArchiveError> {
        self.traces
            .iter()
            .map(|(dict_idx, tt)| {
                self.dicts
                    .get(*dict_idx as usize)
                    .map(|d| d.expand(&tt.to_path_trace()))
                    .ok_or(ArchiveError::Corrupt("dictionary index"))
            })
            .collect()
    }

    fn into_block(self) -> FunctionBlock {
        FunctionBlock {
            func: self.func,
            call_count: self.call_count,
            dicts: self.dicts,
            traces: self.traces,
        }
    }
}

/// Streaming v3 archive writer: header and metadata up front, function
/// frames appended one at a time, footer and commit marker last.
///
/// Because each frame is checksummed and self-delimiting, a process that
/// dies between [`ArchiveWriter::add_function`] calls leaves a file whose
/// completed frames are fully recoverable with [`TwppArchive::recover`] —
/// only the footer (and the commit marker) are missing.
///
/// # Examples
///
/// ```
/// use twpp::archive::ArchiveWriter;
/// use twpp::{compact, TwppArchive};
/// use std::collections::HashMap;
/// # use twpp_tracer::{run_traced, ExecLimits};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let program = twpp_lang::compile("fn main() { print(1); }")?;
/// # let (_, wpp) = run_traced(&program, &[], ExecLimits::default())?;
/// let c = compact(&wpp)?;
/// let mut w = ArchiveWriter::new(Vec::new(), &c.dcg, &HashMap::new())?;
/// for fb in &c.functions {
///     w.add_function(fb)?;
/// }
/// let bytes = w.finish()?;
/// assert!(TwppArchive::from_bytes(bytes).is_ok());
/// # Ok(())
/// # }
/// ```
pub struct ArchiveWriter<W: Write> {
    sink: W,
    table: Vec<TableEntry>,
    data_len: usize,
    /// Timestamp-set encoder for every frame this writer emits
    /// ([`Codec::Legacy`] unless [`ArchiveWriter::with_codec`] said
    /// otherwise). Readers are codec-agnostic: the choice is recorded in
    /// the per-block tags, not the container.
    codec: Codec,
}

impl<W: Write> ArchiveWriter<W> {
    /// Writes the header, compressed DCG and name table, returning a
    /// writer ready to append function frames.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(
        mut sink: W,
        dcg: &Dcg,
        names: &HashMap<FuncId, String>,
    ) -> Result<ArchiveWriter<W>, ArchiveError> {
        let dcg_words = dcg.to_words();
        let dcg_bytes: Vec<u8> = dcg_words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let dcg_comp = lzw::compress(&dcg_bytes);
        let name_blob = encode_names_v3(names);

        let mut header = Vec::with_capacity(FIXED_HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        push_u32(&mut header, VERSION);
        push_u32(&mut header, dcg_comp.len() as u32);
        push_u32(&mut header, name_blob.len() as u32);
        let hcrc = crc32(&header);
        push_u32(&mut header, hcrc);
        sink.write_all(&header)?;

        sink.write_all(&dcg_comp)?;
        let pad = dcg_comp.len().div_ceil(4) * 4 - dcg_comp.len();
        sink.write_all(&[0u8; 3][..pad])?;
        sink.write_all(&crc32(&dcg_comp).to_le_bytes())?;

        sink.write_all(&name_blob)?;
        sink.write_all(&crc32(&name_blob).to_le_bytes())?;

        Ok(ArchiveWriter {
            sink,
            table: Vec::new(),
            data_len: 0,
            codec: Codec::Legacy,
        })
    }

    /// Selects the timestamp-set codec for frames appended after this
    /// call. [`Codec::Legacy`] (the default) keeps output byte-identical
    /// to pre-codec archives; [`Codec::Adaptive`] never produces a larger
    /// frame. Either way the result decodes through the same readers.
    #[must_use]
    pub fn with_codec(mut self, codec: Codec) -> ArchiveWriter<W> {
        self.codec = codec;
        self
    }

    /// Appends one function's frame (header + checksummed payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink and encoding errors from
    /// out-of-domain timestamps.
    pub fn add_function(&mut self, fb: &FunctionBlock) -> Result<(), ArchiveError> {
        let frame = encode_frame(fb, self.codec)?;
        self.commit_frame(frame)
    }

    /// Appends many function frames, encoding and checksumming them on up
    /// to `threads` workers while committing the bytes to the sink **in
    /// input order** — the archive produced is byte-identical to calling
    /// [`ArchiveWriter::add_function`] for each block sequentially,
    /// because frame encoding is pure per function and only the commit
    /// step touches the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink and encoding errors from
    /// out-of-domain timestamps. On error, no frame at or after the
    /// first failing block has been committed.
    pub fn add_functions(
        &mut self,
        blocks: &[FunctionBlock],
        threads: usize,
    ) -> Result<(), ArchiveError> {
        self.add_functions_observed(blocks, threads, &crate::obs::Obs::noop())
    }

    /// Like [`ArchiveWriter::add_functions`], additionally recording
    /// per-worker `encode_frame` spans and the
    /// `twpp_core_frames_encoded_total` counter into `obs`. The bytes
    /// committed are identical either way.
    ///
    /// # Errors
    ///
    /// Same as [`ArchiveWriter::add_functions`].
    pub fn add_functions_observed(
        &mut self,
        blocks: &[FunctionBlock],
        threads: usize,
        obs: &crate::obs::Obs,
    ) -> Result<(), ArchiveError> {
        let codec = self.codec;
        let (frames, _report) =
            crate::par::map_indexed_observed(blocks, threads, obs, "encode_frame", |_, fb| {
                encode_frame(fb, codec)
            });
        if obs.is_enabled() {
            obs.counter(
                "twpp_core_frames_encoded_total",
                "Archive function frames encoded",
            )
            .add(blocks.len() as u64);
        }
        for frame in frames {
            self.commit_frame(frame?)?;
        }
        Ok(())
    }

    /// Records a function whose per-function compaction stage failed
    /// under the degrade policy. **No frame bytes are written** — the
    /// footer gets a sentinel entry (offset `u32::MAX`, zero length and
    /// CRC) carrying only the id and call count, so `twpp fsck` and
    /// strict readers can report exactly which functions a degraded run
    /// lost. Archives with no failed functions are byte-identical to
    /// pre-degradation archives.
    pub fn add_failed_function(&mut self, func: FuncId, call_count: u64) {
        self.table.push(TableEntry {
            func,
            call_count: u32::try_from(call_count).unwrap_or(u32::MAX),
            n_dicts: 0,
            n_traces: 0,
            offset: SENTINEL_OFFSET,
            byte_len: 0,
            crc: 0,
        });
    }

    /// Writes an already-encoded frame to the sink and records its table
    /// entry. Must be called in the intended function order.
    fn commit_frame(&mut self, frame: EncodedFrame) -> Result<(), ArchiveError> {
        self.sink.write_all(&frame.head)?;
        self.sink.write_all(&frame.payload)?;
        self.table.push(TableEntry {
            offset: self.data_len as u32,
            ..frame.entry
        });
        self.data_len += FRAME_HEADER_LEN + frame.payload.len();
        Ok(())
    }

    /// Writes the footer and commit marker, flushes, and returns the sink.
    /// The archive is only valid for strict readers once this succeeds.
    ///
    /// **Durability.** `finish` flushes but deliberately does not fsync:
    /// the sink is a generic [`Write`] (most callers encode into a
    /// `Vec<u8>`), so there is no file handle to sync here. Callers that
    /// need the commit marker to actually survive a power cut must write
    /// through a file-level path that syncs *before renaming the file
    /// into place* — [`TwppArchive::save_with`] with
    /// [`Durability::Sync`], or the ingest layer's segment-seal path,
    /// which additionally fsyncs the containing directory. On an
    /// unsynced crash the commit marker may be missing or torn; the
    /// frame-scan salvage of [`TwppArchive::recover`] is the designed
    /// fallback for exactly that case.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> Result<W, ArchiveError> {
        let mut footer = Vec::with_capacity(4 + self.table.len() * FOOTER_ENTRY_BYTES + 8);
        footer.extend_from_slice(&FOOTER_MAGIC);
        for e in &self.table {
            push_u32(&mut footer, e.func.as_u32());
            push_u32(&mut footer, e.call_count);
            push_u32(&mut footer, e.n_dicts);
            push_u32(&mut footer, e.n_traces);
            push_u32(&mut footer, e.offset);
            push_u32(&mut footer, e.byte_len);
            push_u32(&mut footer, e.crc);
        }
        push_u32(&mut footer, self.table.len() as u32);
        push_u32(&mut footer, self.data_len as u32);
        let fcrc = crc32(&footer);
        push_u32(&mut footer, fcrc);
        footer.extend_from_slice(&COMMIT_MAGIC);
        self.sink.write_all(&footer)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// One fully encoded, checksummed function frame awaiting commit to the
/// sink. Produced by the pure [`encode_frame`] step so frame encoding can
/// run on worker threads while commits stay sequential and ordered.
struct EncodedFrame {
    /// The 28-byte frame header (`TWPR` magic through frame CRC).
    head: Vec<u8>,
    /// The payload bytes the CRC covers together with `head[4..24]`.
    payload: Vec<u8>,
    /// Table entry for the footer; `offset` is filled in at commit time.
    entry: TableEntry,
}

/// Encodes and checksums one function's frame without touching any sink —
/// pure per function, hence safe to fan across worker threads.
fn encode_frame(fb: &FunctionBlock, codec: Codec) -> Result<EncodedFrame, ArchiveError> {
    let words = encode_region(fb, codec)?;
    let payload: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();

    let mut head = Vec::with_capacity(FRAME_HEADER_LEN);
    head.extend_from_slice(&FRAME_MAGIC);
    push_u32(&mut head, fb.func.as_u32());
    push_u32(&mut head, u32::try_from(fb.call_count).unwrap_or(u32::MAX));
    push_u32(&mut head, fb.dicts.len() as u32);
    push_u32(&mut head, fb.traces.len() as u32);
    push_u32(&mut head, payload.len() as u32);
    let mut h = Crc32::new();
    h.update(&head[4..24]);
    h.update(&payload);
    let crc = h.finalize();
    push_u32(&mut head, crc);

    Ok(EncodedFrame {
        entry: TableEntry {
            func: fb.func,
            call_count: u32::try_from(fb.call_count).unwrap_or(u32::MAX),
            n_dicts: fb.dicts.len() as u32,
            n_traces: fb.traces.len() as u32,
            offset: 0,
            byte_len: payload.len() as u32,
            crc,
        },
        head,
        payload,
    })
}

/// An encoded TWPP archive with a parsed function index.
///
/// # Examples
///
/// ```
/// use twpp::{compact, TwppArchive};
/// use twpp_tracer::{run_traced, ExecLimits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = twpp_lang::compile(
///     "fn main() { let i = 0; while (i < 4) { print(i); i = i + 1; } }",
/// )?;
/// let (_, wpp) = run_traced(&program, &[], ExecLimits::default())?;
/// let archive = TwppArchive::from_compacted(&compact(&wpp)?);
/// let record = archive.read_function(program.main())?;
/// assert_eq!(record.call_count, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TwppArchive {
    bytes: Vec<u8>,
    table: Vec<TableEntry>,
    index: HashMap<FuncId, usize>,
    names: Vec<Option<String>>,
    version: u32,
    /// Offset of the compressed DCG.
    dcg_start: usize,
    dcg_comp_len: usize,
    /// Offset of the data section (frames for v3, raw regions for v2).
    data_start: usize,
    /// Functions recorded as failed during a degraded compaction run
    /// (`(func, call_count)`), parsed from sentinel footer entries.
    failed: Vec<(FuncId, u32)>,
}

impl TwppArchive {
    /// Encodes a compacted TWPP into archive form (without function
    /// names; see [`TwppArchive::from_compacted_named`]).
    pub fn from_compacted(c: &CompactedTwpp) -> TwppArchive {
        TwppArchive::from_compacted_named(c, &HashMap::new())
    }

    /// Encodes a compacted TWPP in the current (v3) layout, embedding the
    /// given function names so tools can query by name. Frame encoding
    /// runs on [`crate::par::default_threads`] workers; the bytes are
    /// identical to a single-threaded encode.
    pub fn from_compacted_named(c: &CompactedTwpp, names: &HashMap<FuncId, String>) -> TwppArchive {
        TwppArchive::from_compacted_named_with_threads(c, names, crate::par::default_threads())
    }

    /// Like [`TwppArchive::from_compacted_named`] with an explicit worker
    /// count for the frame-encoding stage. Output bytes do not depend on
    /// `threads`.
    pub fn from_compacted_named_with_threads(
        c: &CompactedTwpp,
        names: &HashMap<FuncId, String>,
        threads: usize,
    ) -> TwppArchive {
        let mut w = ArchiveWriter::new(Vec::new(), &c.dcg, names)
            .expect("writing to an in-memory buffer cannot fail");
        w.add_functions(&c.functions, threads)
            .expect("pipeline-produced blocks always encode");
        let bytes = w
            .finish()
            .expect("writing to an in-memory buffer cannot fail");
        TwppArchive::from_bytes(bytes).expect("freshly encoded archive must parse")
    }

    /// Encodes the output of a possibly degraded governed compaction run:
    /// like [`TwppArchive::from_compacted_named_with_threads`], plus one
    /// sentinel footer entry per failed function so readers and `twpp
    /// fsck` can report exactly what the run lost. With an empty
    /// `failed` slice the bytes are identical to the plain encoder.
    pub fn from_compacted_governed(
        c: &CompactedTwpp,
        names: &HashMap<FuncId, String>,
        threads: usize,
        failed: &[crate::pipeline::FailedFunction],
    ) -> TwppArchive {
        TwppArchive::from_compacted_governed_obs(c, names, threads, failed, &crate::obs::Obs::noop())
    }

    /// Like [`TwppArchive::from_compacted_governed`], additionally
    /// recording an `archive_encode` span, per-worker `encode_frame`
    /// spans and the frame counter into `obs`. Bytes are identical to
    /// the unobserved encoder.
    pub fn from_compacted_governed_obs(
        c: &CompactedTwpp,
        names: &HashMap<FuncId, String>,
        threads: usize,
        failed: &[crate::pipeline::FailedFunction],
        obs: &crate::obs::Obs,
    ) -> TwppArchive {
        TwppArchive::from_compacted_codec(c, names, threads, failed, obs, Codec::Legacy)
    }

    /// The full-parameter encoder: like
    /// [`TwppArchive::from_compacted_governed_obs`] with an explicit
    /// timestamp-set [`Codec`]. Every other constructor delegates here
    /// with [`Codec::Legacy`], so the default output stays byte-identical
    /// to pre-codec archives.
    pub fn from_compacted_codec(
        c: &CompactedTwpp,
        names: &HashMap<FuncId, String>,
        threads: usize,
        failed: &[crate::pipeline::FailedFunction],
        obs: &crate::obs::Obs,
        codec: Codec,
    ) -> TwppArchive {
        let _s = obs.span("archive_encode");
        let mut w = ArchiveWriter::new(Vec::new(), &c.dcg, names)
            .expect("writing to an in-memory buffer cannot fail")
            .with_codec(codec);
        w.add_functions_observed(&c.functions, threads, obs)
            .expect("pipeline-produced blocks always encode");
        for ff in failed {
            w.add_failed_function(ff.func, ff.call_count);
        }
        let bytes = w
            .finish()
            .expect("writing to an in-memory buffer cannot fail");
        TwppArchive::from_bytes(bytes).expect("freshly encoded archive must parse")
    }

    /// Parses an archive, reading the header and function table and
    /// verifying every metadata checksum (v3). Function payload checksums
    /// are verified on access by [`TwppArchive::read_function`].
    ///
    /// # Errors
    ///
    /// Returns an [`ArchiveError`] for malformed input, including
    /// [`ArchiveError::NotCommitted`] for v3 archives whose write was
    /// interrupted (use [`TwppArchive::recover`] to salvage those).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<TwppArchive, ArchiveError> {
        if bytes.len() < FIXED_HEADER_LEN {
            return Err(ArchiveError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        match read_u32(&bytes[4..8]) {
            VERSION_V2 => TwppArchive::from_bytes_v2(bytes),
            VERSION => TwppArchive::from_bytes_v3(bytes),
            v => Err(ArchiveError::BadVersion(v)),
        }
    }

    fn from_bytes_v2(bytes: Vec<u8>) -> Result<TwppArchive, ArchiveError> {
        let (table, names, dcg_comp_len, data_start) = parse_header_v2(&bytes)?;
        // Validate regions lie within the buffer.
        for e in &table {
            let end = data_start
                .checked_add(e.offset as usize)
                .and_then(|x| x.checked_add(e.byte_len as usize))
                .ok_or(ArchiveError::Truncated)?;
            if end > bytes.len() {
                return Err(ArchiveError::Truncated);
            }
        }
        let index = table.iter().enumerate().map(|(i, e)| (e.func, i)).collect();
        let dcg_start = FIXED_HEADER_LEN + table.len() * TABLE_ENTRY_WORDS * 4;
        Ok(TwppArchive {
            bytes,
            table,
            index,
            names,
            version: VERSION_V2,
            dcg_start,
            dcg_comp_len,
            data_start,
            failed: Vec::new(),
        })
    }

    fn from_bytes_v3(bytes: Vec<u8>) -> Result<TwppArchive, ArchiveError> {
        let meta = parse_meta_v3(&bytes)?;
        verify_meta_crcs(&bytes, &meta)?;
        let name_map = parse_names_v3(&bytes[meta.names_start..meta.names_start + meta.names_len])?;
        let (all_entries, footer_start) = parse_footer_v3(&bytes, meta.data_start)?;
        // Split degraded-function sentinels from live entries, then
        // validate that every live frame lies within the data section.
        let mut table = Vec::with_capacity(all_entries.len());
        let mut failed = Vec::new();
        for e in all_entries {
            if e.is_sentinel() {
                failed.push((e.func, e.call_count));
            } else {
                table.push(e);
            }
        }
        for e in &table {
            let end = meta
                .data_start
                .checked_add(e.offset as usize)
                .and_then(|x| x.checked_add(FRAME_HEADER_LEN))
                .and_then(|x| x.checked_add(e.byte_len as usize))
                .ok_or(ArchiveError::Truncated)?;
            if end > footer_start {
                return Err(ArchiveError::Truncated);
            }
        }
        let names = table
            .iter()
            .map(|e| name_map.get(&e.func).cloned())
            .collect();
        let index = table.iter().enumerate().map(|(i, e)| (e.func, i)).collect();
        Ok(TwppArchive {
            bytes,
            table,
            index,
            names,
            version: VERSION,
            dcg_start: FIXED_HEADER_LEN,
            dcg_comp_len: meta.dcg_comp_len,
            data_start: meta.data_start,
            failed,
        })
    }

    /// Salvages whatever survives in a damaged (or perfectly healthy)
    /// archive. Every region whose checksum still verifies is kept; the
    /// result is a freshly encoded, fully committed v3 archive plus a
    /// [`RecoveryReport`] naming exactly what was lost and why.
    ///
    /// The salvage strategy, in order of preference:
    ///
    /// 1. **Footer path** — if the commit footer verifies, each table
    ///    entry's frame is checked and decoded individually; corrupt
    ///    frames are dropped, intact ones kept.
    /// 2. **Frame scan** — if the footer is missing or corrupt (e.g. an
    ///    interrupted write), the data section is scanned for `TWPR`
    ///    frame magics at 4-byte alignment; each candidate frame is
    ///    admitted only if its checksum verifies and its payload decodes.
    /// 3. A damaged header loses the DCG and name table (replaced by an
    ///    empty DCG and no names) but the frame scan still runs over the
    ///    whole buffer.
    ///
    /// v2 archives have no checksums; salvage decodes each table region
    /// and keeps the ones that parse, re-encoding the result as v3.
    ///
    /// # Errors
    ///
    /// Only totally unusable input errors: a missing `TWPA` magic, an
    /// unsupported version, or fewer than 8 bytes.
    pub fn recover(bytes: &[u8]) -> Result<(TwppArchive, RecoveryReport), ArchiveError> {
        TwppArchive::recover_with_threads(bytes, crate::par::default_threads())
    }

    /// Like [`TwppArchive::recover`] with an explicit worker count for the
    /// per-frame checksum verification and decode stage. The report and
    /// the rebuilt archive do not depend on `threads` — per-region
    /// verification is pure and verdicts are assembled in the same order
    /// the sequential walk would produce.
    ///
    /// # Errors
    ///
    /// Same as [`TwppArchive::recover`].
    pub fn recover_with_threads(
        bytes: &[u8],
        threads: usize,
    ) -> Result<(TwppArchive, RecoveryReport), ArchiveError> {
        TwppArchive::recover_observed(bytes, threads, &crate::obs::Obs::noop())
    }

    /// Like [`TwppArchive::recover_with_threads`], additionally
    /// recording an `fsck_verify` span and the
    /// `twpp_core_frames_crc_verified_total` /
    /// `twpp_core_frames_lost_total` counters derived from the recovery
    /// report. The report and rebuilt archive are identical either way.
    ///
    /// # Errors
    ///
    /// Same as [`TwppArchive::recover`].
    pub fn recover_observed(
        bytes: &[u8],
        threads: usize,
        obs: &crate::obs::Obs,
    ) -> Result<(TwppArchive, RecoveryReport), ArchiveError> {
        let result = {
            let _s = obs.span("fsck_verify");
            if bytes.len() < 8 {
                return Err(ArchiveError::Truncated);
            }
            if bytes[0..4] != MAGIC {
                return Err(ArchiveError::BadMagic);
            }
            match read_u32(&bytes[4..8]) {
                VERSION_V2 => recover_v2(bytes, threads),
                VERSION => recover_v3(bytes, threads),
                v => Err(ArchiveError::BadVersion(v)),
            }
        };
        if obs.is_enabled() {
            if let Ok((_, report)) = &result {
                obs.counter(
                    "twpp_core_frames_crc_verified_total",
                    "Function frames whose checksum verified and payload decoded",
                )
                .add(report.salvaged_functions() as u64);
                obs.counter(
                    "twpp_core_frames_lost_total",
                    "Function frames lost to damage during recovery",
                )
                .add(report.lost_functions() as u64);
            }
        }
        result
    }

    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total archive size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Container version of this archive (2 or 3).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Function ids present, most-frequently-called first. Degraded
    /// (failed) functions are not included; see
    /// [`TwppArchive::failed_functions`].
    pub fn function_ids(&self) -> Vec<FuncId> {
        self.table.iter().map(|e| e.func).collect()
    }

    /// Functions the writer recorded as failed during a degraded
    /// compaction run, as `(func, call_count)` pairs. Empty for archives
    /// produced by a clean run.
    pub fn failed_functions(&self) -> &[(FuncId, u32)] {
        &self.failed
    }

    /// Whether this archive was produced by a degraded run (at least one
    /// function's compaction stage failed and was skipped).
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty()
    }

    /// The embedded name of `func`, if the archive stores names.
    pub fn function_name(&self, func: FuncId) -> Option<&str> {
        let &i = self.index.get(&func)?;
        self.names[i].as_deref()
    }

    /// Looks up a function id by its embedded name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.table
            .iter()
            .enumerate()
            .find(|(i, _)| self.names[*i].as_deref() == Some(name))
            .map(|(_, e)| e.func)
    }

    /// The recorded call count of `func`, if present.
    pub fn call_count(&self, func: FuncId) -> Option<u64> {
        self.index
            .get(&func)
            .map(|&i| u64::from(self.table[i].call_count))
    }

    /// Decodes the traces and dictionaries of one function, touching only
    /// that function's region — the fast path of Table 4. For v3 archives
    /// the region's checksum is verified before decoding.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError::UnknownFunction`] for absent functions, a
    /// [`ArchiveError::ChecksumMismatch`] for regions whose bytes rotted,
    /// or a decoding error for structurally corrupt regions.
    pub fn read_function(&self, func: FuncId) -> Result<FunctionRecord, ArchiveError> {
        let Some(&i) = self.index.get(&func) else {
            if self.failed.iter().any(|&(f, _)| f == func) {
                return Err(ArchiveError::DegradedFunction(func));
            }
            return Err(ArchiveError::UnknownFunction(func));
        };
        let e = self.table[i];
        let start = self.data_start + e.offset as usize;
        if self.version == VERSION_V2 {
            let region = &self.bytes[start..start + e.byte_len as usize];
            return decode_region(e, region);
        }
        if self.bytes[start..start + 4] != FRAME_MAGIC {
            return Err(ArchiveError::Corrupt("frame magic"));
        }
        let payload_start = start + FRAME_HEADER_LEN;
        let payload = &self.bytes[payload_start..payload_start + e.byte_len as usize];
        let mut h = Crc32::new();
        h.update(&self.bytes[start + 4..start + 24]);
        h.update(payload);
        let actual = h.finalize();
        if actual != e.crc {
            return Err(ArchiveError::ChecksumMismatch {
                region: "function region",
                expected: e.crc,
                actual,
            });
        }
        decode_region(e, payload)
    }

    /// Decompresses and decodes the dynamic call graph. Decoding is
    /// bounded: the decompressed stream is capped at
    /// [`MAX_DCG_RAW_BYTES`].
    ///
    /// # Errors
    ///
    /// Returns a decoding error for corrupt archives.
    pub fn read_dcg(&self) -> Result<Dcg, ArchiveError> {
        let comp = &self.bytes[self.dcg_start..self.dcg_start + self.dcg_comp_len];
        decode_dcg(comp)
    }

    /// Fully decodes the archive back into a [`CompactedTwpp`].
    ///
    /// # Errors
    ///
    /// Returns a decoding error for corrupt archives.
    pub fn to_compacted(&self) -> Result<CompactedTwpp, ArchiveError> {
        let dcg = self.read_dcg()?;
        let mut functions = Vec::with_capacity(self.table.len());
        for e in &self.table {
            let r = self.read_function(e.func)?;
            functions.push(r.into_block());
        }
        Ok(CompactedTwpp { dcg, functions })
    }

    /// Writes the archive to a file with the default durability
    /// ([`Durability::Flush`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), ArchiveError> {
        self.save_with(path, Durability::Flush)
    }

    /// Writes the archive to a file, then applies `durability` before
    /// returning — [`Durability::Sync`] fsyncs, so the commit marker
    /// [`ArchiveWriter::finish`] wrote is actually on stable storage when
    /// this returns.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_with(&self, path: &Path, durability: Durability) -> Result<(), ArchiveError> {
        let mut f = File::create(path)?;
        f.write_all(&self.bytes)?;
        durability.apply(&mut f)?;
        Ok(())
    }

    /// Loads a whole archive file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and format errors.
    pub fn load(path: &Path) -> Result<TwppArchive, ArchiveError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        TwppArchive::from_bytes(bytes)
    }

    /// Reads the traces of a single function **directly from a file**:
    /// reads the header (and for v3, the footer), seeks to the function's
    /// region and decodes only those bytes. This is the exact experiment
    /// of Table 4's column C. Allocation is bounded by the file size
    /// before any declared count is trusted.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors.
    pub fn read_function_from_file(path: &Path, func: FuncId) -> Result<FunctionRecord, ArchiveError> {
        let mut f = File::open(path)?;
        let file_len = f.metadata()?.len();
        let mut fixed = [0u8; FIXED_HEADER_LEN];
        f.read_exact(&mut fixed)?;
        if fixed[0..4] != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        match read_u32(&fixed[4..8]) {
            VERSION_V2 => read_function_from_file_v2(&mut f, file_len, &fixed, func),
            VERSION => read_function_from_file_v3(&mut f, file_len, &fixed, func),
            v => Err(ArchiveError::BadVersion(v)),
        }
    }
}

fn read_function_from_file_v2(
    f: &mut File,
    file_len: u64,
    fixed: &[u8; FIXED_HEADER_LEN],
    func: FuncId,
) -> Result<FunctionRecord, ArchiveError> {
    let n_funcs = read_u32(&fixed[8..12]) as usize;
    let dcg_comp_len = read_u32(&fixed[12..16]) as usize;
    let names_len = read_u32(&fixed[16..20]) as usize;
    check_func_count(n_funcs)?;
    let table_len = n_funcs * TABLE_ENTRY_WORDS * 4;
    // Bound the allocation by what the file can actually hold.
    if (FIXED_HEADER_LEN + table_len) as u64 > file_len {
        return Err(ArchiveError::Truncated);
    }
    let mut table_bytes = vec![0u8; table_len];
    f.read_exact(&mut table_bytes)?;
    let data_start = FIXED_HEADER_LEN + table_len + dcg_comp_len.div_ceil(4) * 4 + names_len;
    for chunk in table_bytes.chunks_exact(TABLE_ENTRY_WORDS * 4) {
        let e = TableEntry {
            func: FuncId::from_u32(read_u32(&chunk[0..4])),
            call_count: read_u32(&chunk[4..8]),
            n_dicts: read_u32(&chunk[8..12]),
            n_traces: read_u32(&chunk[12..16]),
            offset: read_u32(&chunk[16..20]),
            byte_len: read_u32(&chunk[20..24]),
            crc: 0,
        };
        if e.func == func {
            let start = (data_start + e.offset as usize) as u64;
            if start + u64::from(e.byte_len) > file_len {
                return Err(ArchiveError::Truncated);
            }
            f.seek(SeekFrom::Start(start))?;
            let mut region = vec![0u8; e.byte_len as usize];
            f.read_exact(&mut region)?;
            return decode_region(e, &region);
        }
    }
    Err(ArchiveError::UnknownFunction(func))
}

fn read_function_from_file_v3(
    f: &mut File,
    file_len: u64,
    fixed: &[u8; FIXED_HEADER_LEN],
    func: FuncId,
) -> Result<FunctionRecord, ArchiveError> {
    let stored = read_u32(&fixed[16..20]);
    let actual = crc32(&fixed[0..16]);
    if stored != actual {
        return Err(ArchiveError::ChecksumMismatch {
            region: "header",
            expected: stored,
            actual,
        });
    }
    let dcg_comp_len = read_u32(&fixed[8..12]) as usize;
    let names_len = read_u32(&fixed[12..16]) as usize;
    let data_start = FIXED_HEADER_LEN + dcg_comp_len.div_ceil(4) * 4 + 4 + names_len + 4;

    // Footer tail: n_funcs | data_len | footer_crc | "TWPC".
    if file_len < (data_start + FOOTER_FIXED_LEN) as u64 {
        return Err(ArchiveError::Truncated);
    }
    let mut tail = [0u8; 16];
    f.seek(SeekFrom::End(-16))?;
    f.read_exact(&mut tail)?;
    if tail[12..16] != COMMIT_MAGIC {
        return Err(ArchiveError::NotCommitted);
    }
    let n_funcs = read_u32(&tail[0..4]) as usize;
    check_func_count(n_funcs)?;
    let footer_len = 4 + n_funcs * FOOTER_ENTRY_BYTES + 16;
    if (footer_len as u64) > file_len - data_start as u64 {
        return Err(ArchiveError::Truncated);
    }
    let footer_start = file_len - footer_len as u64;
    f.seek(SeekFrom::Start(footer_start))?;
    let mut footer = vec![0u8; footer_len];
    f.read_exact(&mut footer)?;
    if footer[0..4] != FOOTER_MAGIC {
        return Err(ArchiveError::Corrupt("footer magic"));
    }
    let stored = read_u32(&footer[footer_len - 8..footer_len - 4]);
    let actual = crc32(&footer[..footer_len - 8]);
    if stored != actual {
        return Err(ArchiveError::ChecksumMismatch {
            region: "footer",
            expected: stored,
            actual,
        });
    }
    for chunk in footer[4..4 + n_funcs * FOOTER_ENTRY_BYTES].chunks_exact(FOOTER_ENTRY_BYTES) {
        let e = footer_entry(chunk);
        if e.func != func {
            continue;
        }
        if e.is_sentinel() {
            return Err(ArchiveError::DegradedFunction(func));
        }
        let frame_start = (data_start + e.offset as usize) as u64;
        let frame_len = FRAME_HEADER_LEN + e.byte_len as usize;
        if frame_start + frame_len as u64 > footer_start {
            return Err(ArchiveError::Truncated);
        }
        f.seek(SeekFrom::Start(frame_start))?;
        let mut frame = vec![0u8; frame_len];
        f.read_exact(&mut frame)?;
        if frame[0..4] != FRAME_MAGIC {
            return Err(ArchiveError::Corrupt("frame magic"));
        }
        let mut h = Crc32::new();
        h.update(&frame[4..24]);
        h.update(&frame[FRAME_HEADER_LEN..]);
        let actual = h.finalize();
        if actual != e.crc {
            return Err(ArchiveError::ChecksumMismatch {
                region: "function region",
                expected: e.crc,
                actual,
            });
        }
        return decode_region(e, &frame[FRAME_HEADER_LEN..]);
    }
    Err(ArchiveError::UnknownFunction(func))
}

/// Encodes a compacted TWPP in the **legacy v2 layout**. Retained so the
/// v2 decode path stays exercised and older readers can be fed.
///
/// # Errors
///
/// Returns [`ArchiveError::Trace`] if a timestamp set holds values the
/// wire encoding cannot represent (never the case for pipeline output).
pub fn encode_v2_named(
    c: &CompactedTwpp,
    names: &HashMap<FuncId, String>,
) -> Result<Vec<u8>, ArchiveError> {
    // Compress the DCG.
    let dcg_words = c.dcg.to_words();
    let dcg_bytes: Vec<u8> = dcg_words.iter().flat_map(|w| w.to_le_bytes()).collect();
    let dcg_comp = lzw::compress(&dcg_bytes);
    let dcg_padded = dcg_comp.len().div_ceil(4) * 4;

    // Encode function regions.
    let mut regions: Vec<Vec<u32>> = Vec::with_capacity(c.functions.len());
    let mut table: Vec<TableEntry> = Vec::with_capacity(c.functions.len());
    let mut offset = 0u32;
    for fb in &c.functions {
        // v2 predates the codec tag: always the legacy encoding.
        let words = encode_region(fb, Codec::Legacy)?;
        let byte_len = (words.len() * 4) as u32;
        table.push(TableEntry {
            func: fb.func,
            call_count: u32::try_from(fb.call_count).unwrap_or(u32::MAX),
            n_dicts: fb.dicts.len() as u32,
            n_traces: fb.traces.len() as u32,
            offset,
            byte_len,
            crc: 0,
        });
        offset += byte_len;
        regions.push(words);
    }

    // Name table: per function (table order), a length-prefixed UTF-8
    // name; zero length means unnamed.
    let mut name_blob: Vec<u8> = Vec::new();
    if !names.is_empty() {
        for e in &table {
            let name = names.get(&e.func).cloned();
            let bytes = name.as_deref().unwrap_or("").as_bytes();
            name_blob.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            name_blob.extend_from_slice(bytes);
        }
        while !name_blob.len().is_multiple_of(4) {
            name_blob.push(0);
        }
    }

    // Assemble.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    push_u32(&mut bytes, VERSION_V2);
    push_u32(&mut bytes, c.functions.len() as u32);
    push_u32(&mut bytes, dcg_comp.len() as u32);
    push_u32(&mut bytes, name_blob.len() as u32);
    for e in &table {
        push_u32(&mut bytes, e.func.as_u32());
        push_u32(&mut bytes, e.call_count);
        push_u32(&mut bytes, e.n_dicts);
        push_u32(&mut bytes, e.n_traces);
        push_u32(&mut bytes, e.offset);
        push_u32(&mut bytes, e.byte_len);
    }
    bytes.extend_from_slice(&dcg_comp);
    bytes.resize(bytes.len() + (dcg_padded - dcg_comp.len()), 0);
    bytes.extend_from_slice(&name_blob);
    for words in &regions {
        for w in words {
            push_u32(&mut bytes, *w);
        }
    }
    Ok(bytes)
}

fn push_u32(bytes: &mut Vec<u8>, w: u32) {
    bytes.extend_from_slice(&w.to_le_bytes());
}

pub(crate) fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

pub(crate) fn check_func_count(n_funcs: usize) -> Result<(), ArchiveError> {
    if n_funcs > MAX_FUNCTIONS {
        return Err(ArchiveError::TooLarge {
            what: "function count",
            declared: n_funcs as u64,
            limit: MAX_FUNCTIONS as u64,
        });
    }
    Ok(())
}

pub(crate) fn decode_dcg(comp: &[u8]) -> Result<Dcg, ArchiveError> {
    let raw = lzw::decompress_bounded(comp, MAX_DCG_RAW_BYTES)?;
    if !raw.len().is_multiple_of(4) {
        return Err(ArchiveError::Corrupt("DCG byte length"));
    }
    let words: Vec<u32> = raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Dcg::from_words(&words).ok_or(ArchiveError::Corrupt("DCG structure"))
}

// ---------------------------------------------------------------------------
// v2 parsing
// ---------------------------------------------------------------------------

type ParsedHeaderV2 = (Vec<TableEntry>, Vec<Option<String>>, usize, usize);

fn parse_header_v2(bytes: &[u8]) -> Result<ParsedHeaderV2, ArchiveError> {
    if bytes.len() < FIXED_HEADER_LEN {
        return Err(ArchiveError::Truncated);
    }
    let n_funcs = read_u32(&bytes[8..12]) as usize;
    let dcg_comp_len = read_u32(&bytes[12..16]) as usize;
    let names_len = read_u32(&bytes[16..20]) as usize;
    check_func_count(n_funcs)?;
    let table_len = n_funcs
        .checked_mul(TABLE_ENTRY_WORDS * 4)
        .ok_or(ArchiveError::Truncated)?;
    let names_start = FIXED_HEADER_LEN
        .checked_add(table_len)
        .and_then(|x| x.checked_add(dcg_comp_len.div_ceil(4) * 4))
        .ok_or(ArchiveError::Truncated)?;
    let data_start = names_start
        .checked_add(names_len)
        .ok_or(ArchiveError::Truncated)?;
    if data_start > bytes.len() {
        return Err(ArchiveError::Truncated);
    }
    let mut table = Vec::with_capacity(n_funcs);
    for chunk in
        bytes[FIXED_HEADER_LEN..FIXED_HEADER_LEN + table_len].chunks_exact(TABLE_ENTRY_WORDS * 4)
    {
        table.push(TableEntry {
            func: FuncId::from_u32(read_u32(&chunk[0..4])),
            call_count: read_u32(&chunk[4..8]),
            n_dicts: read_u32(&chunk[8..12]),
            n_traces: read_u32(&chunk[12..16]),
            offset: read_u32(&chunk[16..20]),
            byte_len: read_u32(&chunk[20..24]),
            crc: 0,
        });
    }
    let names = parse_names_v2(&bytes[names_start..names_start + names_len], n_funcs)?;
    Ok((table, names, dcg_comp_len, data_start))
}

/// Parses the v2 length-prefixed name table; an empty blob means unnamed.
fn parse_names_v2(blob: &[u8], n_funcs: usize) -> Result<Vec<Option<String>>, ArchiveError> {
    if blob.is_empty() {
        return Ok(vec![None; n_funcs]);
    }
    let mut names = Vec::with_capacity(n_funcs);
    let mut pos = 0usize;
    for _ in 0..n_funcs {
        if pos + 4 > blob.len() {
            return Err(ArchiveError::Corrupt("name table"));
        }
        let len = read_u32(&blob[pos..pos + 4]) as usize;
        pos += 4;
        if pos + len > blob.len() {
            return Err(ArchiveError::Corrupt("name table"));
        }
        let name = std::str::from_utf8(&blob[pos..pos + len])
            .map_err(|_| ArchiveError::Corrupt("name table utf-8"))?;
        pos += len;
        names.push(if name.is_empty() {
            None
        } else {
            Some(name.to_owned())
        });
    }
    Ok(names)
}

// ---------------------------------------------------------------------------
// v3 parsing
// ---------------------------------------------------------------------------

/// Region geometry of a v3 archive, computed from the fixed header.
pub(crate) struct MetaV3 {
    pub(crate) dcg_comp_len: usize,
    pub(crate) dcg_crc_at: usize,
    pub(crate) names_start: usize,
    pub(crate) names_len: usize,
    pub(crate) names_crc_at: usize,
    pub(crate) data_start: usize,
}

/// Verifies the header checksum and computes the metadata region offsets.
pub(crate) fn parse_meta_v3(bytes: &[u8]) -> Result<MetaV3, ArchiveError> {
    let stored = read_u32(&bytes[16..20]);
    let actual = crc32(&bytes[0..16]);
    if stored != actual {
        return Err(ArchiveError::ChecksumMismatch {
            region: "header",
            expected: stored,
            actual,
        });
    }
    let dcg_comp_len = read_u32(&bytes[8..12]) as usize;
    let names_len = read_u32(&bytes[12..16]) as usize;
    if !names_len.is_multiple_of(4) {
        return Err(ArchiveError::Corrupt("name table alignment"));
    }
    let dcg_crc_at = FIXED_HEADER_LEN
        .checked_add(dcg_comp_len.div_ceil(4) * 4)
        .ok_or(ArchiveError::Truncated)?;
    let names_start = dcg_crc_at.checked_add(4).ok_or(ArchiveError::Truncated)?;
    let names_crc_at = names_start
        .checked_add(names_len)
        .ok_or(ArchiveError::Truncated)?;
    let data_start = names_crc_at.checked_add(4).ok_or(ArchiveError::Truncated)?;
    if data_start > bytes.len() {
        return Err(ArchiveError::Truncated);
    }
    Ok(MetaV3 {
        dcg_comp_len,
        dcg_crc_at,
        names_start,
        names_len,
        names_crc_at,
        data_start,
    })
}

pub(crate) fn verify_meta_crcs(bytes: &[u8], meta: &MetaV3) -> Result<(), ArchiveError> {
    let stored = read_u32(&bytes[meta.dcg_crc_at..meta.dcg_crc_at + 4]);
    let actual = crc32(&bytes[FIXED_HEADER_LEN..FIXED_HEADER_LEN + meta.dcg_comp_len]);
    if stored != actual {
        return Err(ArchiveError::ChecksumMismatch {
            region: "dcg",
            expected: stored,
            actual,
        });
    }
    let stored = read_u32(&bytes[meta.names_crc_at..meta.names_crc_at + 4]);
    let actual = crc32(&bytes[meta.names_start..meta.names_start + meta.names_len]);
    if stored != actual {
        return Err(ArchiveError::ChecksumMismatch {
            region: "name table",
            expected: stored,
            actual,
        });
    }
    Ok(())
}

/// Encodes the v3 keyed name table: `count, (func_id, len, utf8)…`,
/// zero-padded to 4 bytes. An empty map encodes as an empty blob.
fn encode_names_v3(names: &HashMap<FuncId, String>) -> Vec<u8> {
    if names.is_empty() {
        return Vec::new();
    }
    let mut entries: Vec<(&FuncId, &String)> = names.iter().collect();
    entries.sort_by_key(|(f, _)| **f);
    let mut blob = Vec::new();
    push_u32(&mut blob, entries.len() as u32);
    for (func, name) in entries {
        push_u32(&mut blob, func.as_u32());
        push_u32(&mut blob, name.len() as u32);
        blob.extend_from_slice(name.as_bytes());
    }
    while !blob.len().is_multiple_of(4) {
        blob.push(0);
    }
    blob
}

/// Parses the v3 keyed name table into a map.
pub(crate) fn parse_names_v3(blob: &[u8]) -> Result<HashMap<FuncId, String>, ArchiveError> {
    let mut map = HashMap::new();
    if blob.is_empty() {
        return Ok(map);
    }
    if blob.len() < 4 {
        return Err(ArchiveError::Corrupt("name table"));
    }
    let count = read_u32(&blob[0..4]) as usize;
    // Each entry takes at least 8 bytes: cross-check the declared count
    // against the blob before trusting it.
    if count > (blob.len() - 4) / 8 {
        return Err(ArchiveError::TooLarge {
            what: "name count",
            declared: count as u64,
            limit: ((blob.len() - 4) / 8) as u64,
        });
    }
    let mut pos = 4usize;
    for _ in 0..count {
        if pos + 8 > blob.len() {
            return Err(ArchiveError::Corrupt("name table"));
        }
        let func = FuncId::from_u32(read_u32(&blob[pos..pos + 4]));
        let len = read_u32(&blob[pos + 4..pos + 8]) as usize;
        pos += 8;
        if len > blob.len() - pos {
            return Err(ArchiveError::Corrupt("name table"));
        }
        let name = std::str::from_utf8(&blob[pos..pos + len])
            .map_err(|_| ArchiveError::Corrupt("name table utf-8"))?;
        pos += len;
        if !name.is_empty() {
            map.insert(func, name.to_owned());
        }
    }
    Ok(map)
}

pub(crate) fn footer_entry(chunk: &[u8]) -> TableEntry {
    TableEntry {
        func: FuncId::from_u32(read_u32(&chunk[0..4])),
        call_count: read_u32(&chunk[4..8]),
        n_dicts: read_u32(&chunk[8..12]),
        n_traces: read_u32(&chunk[12..16]),
        offset: read_u32(&chunk[16..20]),
        byte_len: read_u32(&chunk[20..24]),
        crc: read_u32(&chunk[24..28]),
    }
}

/// Locates and verifies the commit footer; returns the table and the
/// footer's start offset (= end of the data section).
fn parse_footer_v3(bytes: &[u8], data_start: usize) -> Result<(Vec<TableEntry>, usize), ArchiveError> {
    if bytes.len() < data_start + FOOTER_FIXED_LEN {
        return Err(ArchiveError::Truncated);
    }
    if bytes[bytes.len() - 4..] != COMMIT_MAGIC {
        return Err(ArchiveError::NotCommitted);
    }
    let tail = &bytes[bytes.len() - 16..];
    let n_funcs = read_u32(&tail[0..4]) as usize;
    let data_len = read_u32(&tail[4..8]) as usize;
    check_func_count(n_funcs)?;
    let footer_len = 4 + n_funcs * FOOTER_ENTRY_BYTES + 16;
    if footer_len > bytes.len() - data_start {
        return Err(ArchiveError::Truncated);
    }
    let footer_start = bytes.len() - footer_len;
    let footer = &bytes[footer_start..];
    if footer[0..4] != FOOTER_MAGIC {
        return Err(ArchiveError::Corrupt("footer magic"));
    }
    let stored = read_u32(&footer[footer_len - 8..footer_len - 4]);
    let actual = crc32(&footer[..footer_len - 8]);
    if stored != actual {
        return Err(ArchiveError::ChecksumMismatch {
            region: "footer",
            expected: stored,
            actual,
        });
    }
    if footer_start - data_start != data_len {
        return Err(ArchiveError::Corrupt("footer data length"));
    }
    let table = footer[4..4 + n_funcs * FOOTER_ENTRY_BYTES]
        .chunks_exact(FOOTER_ENTRY_BYTES)
        .map(footer_entry)
        .collect();
    Ok((table, footer_start))
}

// ---------------------------------------------------------------------------
// Salvage
// ---------------------------------------------------------------------------

/// Checks one v3 frame (located via a verified footer entry) and decodes
/// its payload.
fn check_frame(
    bytes: &[u8],
    data_start: usize,
    footer_start: usize,
    e: TableEntry,
) -> (RegionStatus, Option<FunctionRecord>) {
    let Some(frame_start) = data_start.checked_add(e.offset as usize) else {
        return (RegionStatus::Truncated, None);
    };
    let Some(end) = frame_start
        .checked_add(FRAME_HEADER_LEN)
        .and_then(|x| x.checked_add(e.byte_len as usize))
    else {
        return (RegionStatus::Truncated, None);
    };
    if end > footer_start || frame_start + 4 > footer_start {
        return (RegionStatus::Truncated, None);
    }
    if bytes[frame_start..frame_start + 4] != FRAME_MAGIC {
        return (RegionStatus::BadChecksum, None);
    }
    let payload = &bytes[frame_start + FRAME_HEADER_LEN..end];
    let mut h = Crc32::new();
    h.update(&bytes[frame_start + 4..frame_start + 24]);
    h.update(payload);
    if h.finalize() != e.crc {
        return (RegionStatus::BadChecksum, None);
    }
    match decode_region(e, payload) {
        Ok(r) => (RegionStatus::Ok, Some(r)),
        Err(err) => (RegionStatus::Undecodable(err.to_string()), None),
    }
}

/// One verified frame candidate from the recovery scan: the verdict the
/// sequential walk would emit if it stops at this offset, the decoded
/// record (for `Ok` frames), and how far the walk advances afterwards.
struct FrameCandidate {
    verdict: FunctionVerdict,
    record: Option<FunctionRecord>,
    advance: usize,
}

/// Verifies one `TWPR` candidate at `pos` — pure per offset, so candidates
/// can be checked on worker threads. The caller guarantees
/// `bytes[pos..pos + 4] == FRAME_MAGIC` and a full header fits.
fn verify_frame_candidate(bytes: &[u8], pos: usize) -> FrameCandidate {
    let func = FuncId::from_u32(read_u32(&bytes[pos + 4..pos + 8]));
    let payload_len = read_u32(&bytes[pos + 20..pos + 24]) as usize;
    let verdict = |status: RegionStatus| FunctionVerdict {
        func,
        offset: pos,
        byte_len: payload_len,
        status,
    };
    let sane = payload_len.is_multiple_of(4) && payload_len <= bytes.len() - pos - FRAME_HEADER_LEN;
    if !sane {
        return FrameCandidate {
            verdict: verdict(RegionStatus::Truncated),
            record: None,
            advance: 4,
        };
    }
    let e = TableEntry {
        func,
        call_count: read_u32(&bytes[pos + 8..pos + 12]),
        n_dicts: read_u32(&bytes[pos + 12..pos + 16]),
        n_traces: read_u32(&bytes[pos + 16..pos + 20]),
        offset: 0,
        byte_len: payload_len as u32,
        crc: read_u32(&bytes[pos + 24..pos + 28]),
    };
    let payload = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + payload_len];
    let mut h = Crc32::new();
    h.update(&bytes[pos + 4..pos + 24]);
    h.update(payload);
    if h.finalize() != e.crc {
        return FrameCandidate {
            verdict: verdict(RegionStatus::BadChecksum),
            record: None,
            advance: 4,
        };
    }
    match decode_region(e, payload) {
        Ok(r) => FrameCandidate {
            verdict: verdict(RegionStatus::Ok),
            record: Some(r),
            advance: FRAME_HEADER_LEN + payload_len,
        },
        Err(err) => FrameCandidate {
            verdict: verdict(RegionStatus::Undecodable(err.to_string())),
            record: None,
            advance: FRAME_HEADER_LEN + payload_len,
        },
    }
}

/// Scans `bytes[from..]` for intact frames at 4-byte alignment; used when
/// the footer is missing or corrupt. Each candidate frame must pass its
/// checksum to be admitted, so a corrupted frame causes a resync rather
/// than garbage.
///
/// Candidate verification (checksum + decode) is pure per offset and fans
/// across up to `threads` workers; a sequential resync walk then consumes
/// the precomputed results, so the verdict list and record order are
/// byte-identical to a single-threaded scan.
fn scan_frames(
    bytes: &[u8],
    from: usize,
    threads: usize,
) -> (Vec<FunctionVerdict>, Vec<FunctionRecord>) {
    let start = from.div_ceil(4) * 4;
    // Phase 1: find every aligned `TWPR` magic with room for a header.
    let mut candidates: Vec<usize> = Vec::new();
    let mut pos = start;
    while pos + FRAME_HEADER_LEN <= bytes.len() {
        if bytes[pos..pos + 4] == FRAME_MAGIC {
            candidates.push(pos);
        }
        pos += 4;
    }
    // Phase 2: verify + decode candidates in parallel (pure per offset).
    let mut verified =
        crate::par::map_indexed(&candidates, threads, |_, &p| verify_frame_candidate(bytes, p));
    let index_of: HashMap<usize, usize> =
        candidates.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    // Phase 3: the sequential resync walk. Frame advances are multiples
    // of 4 (header is 28 bytes, payloads are word-aligned), so the walk
    // only ever lands on aligned offsets covered by phase 1.
    let mut verdicts = Vec::new();
    let mut records = Vec::new();
    let mut pos = start;
    while pos + FRAME_HEADER_LEN <= bytes.len() {
        let Some(&i) = index_of.get(&pos) else {
            pos += 4;
            continue;
        };
        let c = &mut verified[i];
        verdicts.push(c.verdict.clone());
        if let Some(r) = c.record.take() {
            records.push(r);
        }
        pos += c.advance;
    }
    (verdicts, records)
}

/// Re-encodes salvaged pieces as a fresh, committed v3 archive.
/// Degraded-function sentinels present in the damaged input are
/// preserved, so salvage never silently forgets what a degraded run
/// already reported as lost.
fn rebuild(
    dcg: Dcg,
    names: &HashMap<FuncId, String>,
    records: Vec<FunctionRecord>,
    failed: &[(FuncId, u32)],
) -> TwppArchive {
    let mut seen = HashSet::new();
    let mut w = ArchiveWriter::new(Vec::new(), &dcg, names)
        .expect("writing to an in-memory buffer cannot fail");
    for r in records {
        if seen.insert(r.func) {
            // Decoded records always re-encode: their trace lengths were
            // bounded by `MAX_DECODED_LEN` (< i32::MAX) during salvage.
            w.add_function(&r.into_block())
                .expect("salvaged records always re-encode");
        }
    }
    for &(func, call_count) in failed {
        if seen.insert(func) {
            w.add_failed_function(func, u64::from(call_count));
        }
    }
    let bytes = w
        .finish()
        .expect("writing to an in-memory buffer cannot fail");
    TwppArchive::from_bytes(bytes).expect("rebuilt archive must parse")
}

fn recover_v3(bytes: &[u8], threads: usize) -> Result<(TwppArchive, RecoveryReport), ArchiveError> {
    let mut report = RecoveryReport {
        version: VERSION,
        total_bytes: bytes.len(),
        header_ok: false,
        dcg_ok: false,
        names_ok: false,
        committed: false,
        salvaged_bytes: 0,
        // Refined below: header parse upgrades to FrameScan, a verified
        // footer to Footer.
        strategy: SalvageStrategy::HeaderlessScan,
        functions: Vec::new(),
    };
    let mut dcg = Dcg::empty();
    let mut names: HashMap<FuncId, String> = HashMap::new();
    let mut scan_from = FIXED_HEADER_LEN.min(bytes.len());
    let mut data_start = scan_from;
    let mut footer_table: Option<(Vec<TableEntry>, usize)> = None;

    if bytes.len() >= FIXED_HEADER_LEN {
        if let Ok(meta) = parse_meta_v3(bytes) {
            report.header_ok = true;
            report.strategy = SalvageStrategy::FrameScan;
            data_start = meta.data_start;
            scan_from = meta.data_start;
            // DCG: checksum, then decode.
            let dcg_bytes = &bytes[FIXED_HEADER_LEN..FIXED_HEADER_LEN + meta.dcg_comp_len];
            let dcg_crc_ok =
                read_u32(&bytes[meta.dcg_crc_at..meta.dcg_crc_at + 4]) == crc32(dcg_bytes);
            if dcg_crc_ok {
                if let Ok(d) = decode_dcg(dcg_bytes) {
                    dcg = d;
                    report.dcg_ok = true;
                    report.salvaged_bytes += meta.dcg_comp_len;
                }
            }
            // Names: checksum, then decode.
            let names_bytes = &bytes[meta.names_start..meta.names_start + meta.names_len];
            let names_crc_ok =
                read_u32(&bytes[meta.names_crc_at..meta.names_crc_at + 4]) == crc32(names_bytes);
            if names_crc_ok {
                if let Ok(map) = parse_names_v3(names_bytes) {
                    names = map;
                    report.names_ok = true;
                    report.salvaged_bytes += meta.names_len;
                }
            }
            if let Ok(found) = parse_footer_v3(bytes, meta.data_start) {
                footer_table = Some(found);
            }
        }
    }

    let mut failed: Vec<(FuncId, u32)> = Vec::new();
    let records = match footer_table {
        Some((table, footer_start)) => {
            report.committed = true;
            report.strategy = SalvageStrategy::Footer;
            // Per-entry verification is pure: fan the checksum + decode
            // work across workers, then fold verdicts in table order so
            // the report matches the sequential walk exactly. Degraded
            // sentinels have no frame: they get a FailedAtCompaction
            // verdict instead of being mistaken for truncation.
            let checked = crate::par::map_indexed(&table, threads, |_, &e| {
                if e.is_sentinel() {
                    (RegionStatus::FailedAtCompaction, None)
                } else {
                    check_frame(bytes, data_start, footer_start, e)
                }
            });
            let mut records = Vec::new();
            for (e, (status, record)) in table.iter().zip(checked) {
                if let Some(r) = record {
                    report.salvaged_bytes += e.byte_len as usize;
                    records.push(r);
                }
                if e.is_sentinel() {
                    failed.push((e.func, e.call_count));
                    report.functions.push(FunctionVerdict {
                        func: e.func,
                        offset: 0,
                        byte_len: 0,
                        status,
                    });
                } else {
                    report.functions.push(FunctionVerdict {
                        func: e.func,
                        offset: data_start + e.offset as usize,
                        byte_len: e.byte_len as usize,
                        status,
                    });
                }
            }
            records
        }
        None => {
            let (verdicts, records) = scan_frames(bytes, scan_from, threads);
            report.salvaged_bytes += verdicts
                .iter()
                .filter(|v| v.status.is_ok())
                .map(|v| v.byte_len)
                .sum::<usize>();
            report.functions = verdicts;
            records
        }
    };

    Ok((rebuild(dcg, &names, records, &failed), report))
}

fn recover_v2(bytes: &[u8], threads: usize) -> Result<(TwppArchive, RecoveryReport), ArchiveError> {
    let (table, names_vec, dcg_comp_len, data_start) = parse_header_v2(bytes)?;
    let mut report = RecoveryReport {
        version: VERSION_V2,
        total_bytes: bytes.len(),
        header_ok: true,
        dcg_ok: false,
        names_ok: true,
        committed: true,
        salvaged_bytes: 0,
        strategy: SalvageStrategy::V2Decode,
        functions: Vec::new(),
    };
    // v2 has no checksums: salvage by decoding.
    let dcg_start = FIXED_HEADER_LEN + table.len() * TABLE_ENTRY_WORDS * 4;
    let mut dcg = Dcg::empty();
    if dcg_start + dcg_comp_len <= bytes.len() {
        if let Ok(d) = decode_dcg(&bytes[dcg_start..dcg_start + dcg_comp_len]) {
            dcg = d;
            report.dcg_ok = true;
            report.salvaged_bytes += dcg_comp_len;
        }
    }
    let names: HashMap<FuncId, String> = table
        .iter()
        .zip(&names_vec)
        .filter_map(|(e, n)| n.clone().map(|n| (e.func, n)))
        .collect();
    // v2 regions are independent: decode them in parallel, then fold the
    // verdicts in table order.
    let decoded = crate::par::map_indexed(&table, threads, |_, e| {
        let start = data_start + e.offset as usize;
        let end = start.saturating_add(e.byte_len as usize);
        if end > bytes.len() {
            (RegionStatus::Truncated, None)
        } else {
            match decode_region(*e, &bytes[start..end]) {
                Ok(r) => (RegionStatus::Ok, Some(r)),
                Err(err) => (RegionStatus::Undecodable(err.to_string()), None),
            }
        }
    });
    let mut records = Vec::new();
    for (e, (status, record)) in table.iter().zip(decoded) {
        if let Some(r) = record {
            report.salvaged_bytes += e.byte_len as usize;
            records.push(r);
        }
        report.functions.push(FunctionVerdict {
            func: e.func,
            offset: data_start + e.offset as usize,
            byte_len: e.byte_len as usize,
            status,
        });
    }
    Ok((rebuild(dcg, &names, records, &[]), report))
}

// ---------------------------------------------------------------------------
// Region codec (shared by v2 and v3)
// ---------------------------------------------------------------------------

/// Encodes one function's region:
/// dictionaries (`n_chains, (head, len, blocks…)*` each) followed by traces
/// (`dict_idx` + timestamped words each).
///
/// Fails only when a timestamped trace holds timestamps outside the wire
/// encoding's `i32` domain — impossible for pipeline-produced blocks,
/// whose trace lengths are asserted `<= i32::MAX` at construction.
fn encode_region(fb: &FunctionBlock, codec: Codec) -> Result<Vec<u32>, ArchiveError> {
    let mut words = Vec::new();
    for dict in &fb.dicts {
        words.push(dict.len() as u32);
        for (head, chain) in dict.iter() {
            words.push(head.as_u32());
            words.push(chain.len() as u32);
            words.extend(chain.iter().map(|b| b.as_u32()));
        }
    }
    for (dict_idx, tt) in &fb.traces {
        words.push(*dict_idx);
        words.extend(tt.to_words_with(codec)?);
    }
    Ok(words)
}

pub(crate) fn decode_region(e: TableEntry, region: &[u8]) -> Result<FunctionRecord, ArchiveError> {
    if !region.len().is_multiple_of(4) {
        return Err(ArchiveError::Corrupt("region length"));
    }
    let words: Vec<u32> = region
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let mut pos = 0usize;
    let take = |pos: &mut usize| -> Result<u32, ArchiveError> {
        let w = *words.get(*pos).ok_or(ArchiveError::Truncated)?;
        *pos += 1;
        Ok(w)
    };
    // Counts come from the (possibly corrupted) header: clamp every
    // pre-allocation to what the region could actually hold.
    let cap = |n: usize| n.min(words.len() + 1);
    let mut dicts = Vec::with_capacity(cap(e.n_dicts as usize));
    for _ in 0..e.n_dicts {
        let n_chains = take(&mut pos)?;
        let mut chains = Vec::with_capacity(cap(n_chains as usize));
        for _ in 0..n_chains {
            let head = take(&mut pos)?;
            let len = take(&mut pos)? as usize;
            if len < 2 {
                return Err(ArchiveError::Corrupt("chain too short"));
            }
            let mut chain = Vec::with_capacity(cap(len));
            for _ in 0..len {
                let b = take(&mut pos)?;
                if b == 0 {
                    return Err(ArchiveError::Corrupt("zero block id"));
                }
                chain.push(BlockId::new(b));
            }
            if head == 0 || chain[0].as_u32() != head {
                return Err(ArchiveError::Corrupt("chain head mismatch"));
            }
            chains.push(chain);
        }
        dicts.push(DbbDictionary::from_chains(chains));
    }
    let mut traces = Vec::with_capacity(cap(e.n_traces as usize));
    for _ in 0..e.n_traces {
        let dict_idx = take(&mut pos)?;
        if dict_idx as usize >= dicts.len() {
            return Err(ArchiveError::Corrupt("dictionary index"));
        }
        let tt = TimestampedTrace::from_words(&words, &mut pos)?;
        traces.push((dict_idx, tt));
    }
    if pos != words.len() {
        return Err(ArchiveError::Corrupt("trailing region bytes"));
    }
    Ok(FunctionRecord {
        func: e.func,
        call_count: u64::from(e.call_count),
        dicts,
        traces,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::pipeline::compact;
    use twpp_tracer::{RawWpp, WppEvent};

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    fn sample_wpp() -> RawWpp {
        let t1: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10];
        let t2: Vec<u32> = vec![1, 2, 7, 8, 9, 6, 10];
        let calls = [&t1, &t2, &t1, &t1];
        let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(BlockId::new(1))];
        for t in calls {
            events.push(WppEvent::Enter(f(1)));
            for &x in t.iter() {
                events.push(WppEvent::Block(BlockId::new(x)));
            }
            events.push(WppEvent::Exit);
        }
        events.push(WppEvent::Block(BlockId::new(2)));
        events.push(WppEvent::Exit);
        RawWpp::from_events(&events)
    }

    fn sample_names() -> HashMap<FuncId, String> {
        let mut names = HashMap::new();
        names.insert(f(0), "main".to_owned());
        names.insert(f(1), "helper".to_owned());
        names
    }

    #[test]
    fn archive_round_trip() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        assert_eq!(a.version(), VERSION);
        let b = TwppArchive::from_bytes(a.as_bytes().to_vec()).unwrap();
        assert_eq!(b.to_compacted().unwrap(), c);
        assert_eq!(b.read_dcg().unwrap(), c.dcg);
    }

    #[test]
    fn adaptive_archive_round_trips_and_never_grows() {
        let c = compact(&sample_wpp()).unwrap();
        let names = sample_names();
        let legacy =
            TwppArchive::from_compacted_codec(&c, &names, 1, &[], &crate::obs::Obs::noop(), Codec::Legacy);
        let adaptive = TwppArchive::from_compacted_codec(
            &c,
            &names,
            1,
            &[],
            &crate::obs::Obs::noop(),
            Codec::Adaptive,
        );
        // The explicit-legacy constructor is byte-identical to the default.
        assert_eq!(legacy.as_bytes(), TwppArchive::from_compacted_named(&c, &names).as_bytes());
        // Adaptive decodes to the same compacted TWPP and never costs bytes.
        assert_eq!(adaptive.to_compacted().unwrap(), c);
        assert!(adaptive.byte_len() <= legacy.byte_len());
        for func in legacy.function_ids() {
            assert_eq!(
                adaptive.read_function(func).unwrap(),
                legacy.read_function(func).unwrap()
            );
        }
        // Salvage understands adaptive frames (codec handled below the
        // frame layer).
        let (recovered, report) = TwppArchive::recover(adaptive.as_bytes()).unwrap();
        assert!(report.functions.iter().all(|v| v.status.is_ok()));
        assert_eq!(recovered.to_compacted().unwrap(), c);
    }

    #[test]
    fn per_function_read_matches_raw_scan() {
        let wpp = sample_wpp();
        let c = compact(&wpp).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let record = a.read_function(f(1)).unwrap();
        assert_eq!(record.call_count, 4);
        // The unique traces recoverable from the archive must equal the
        // unique traces a full scan finds.
        let mut scanned: Vec<Vec<BlockId>> = wpp.scan_function(f(1));
        scanned.dedup();
        scanned.sort();
        let mut expanded: Vec<Vec<BlockId>> = record
            .expanded_traces()
            .into_iter()
            .map(Vec::from)
            .collect();
        expanded.sort();
        scanned.dedup();
        assert_eq!(expanded, scanned);
    }

    #[test]
    fn unknown_function_is_reported() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        assert!(matches!(
            a.read_function(f(7)),
            Err(ArchiveError::UnknownFunction(_))
        ));
    }

    #[test]
    fn degraded_archive_round_trips_survivors_and_reports_failed() {
        let mut c = compact(&sample_wpp()).unwrap();
        // Pretend f(1)'s compaction stage failed: drop its block and
        // record the failure as the governed pipeline would.
        let pos = c.functions.iter().position(|fb| fb.func == f(1)).unwrap();
        let dropped = c.functions.remove(pos);
        let failed = vec![crate::pipeline::FailedFunction {
            func: dropped.func,
            call_count: dropped.call_count,
            stage: "compact",
            reason: "injected".to_owned(),
        }];
        let a = TwppArchive::from_compacted_governed(&c, &sample_names(), 2, &failed);
        assert!(a.is_degraded());
        assert_eq!(a.failed_functions(), &[(f(1), 4)]);
        // The survivor decodes; the failed function yields the typed error.
        assert!(a.read_function(f(0)).is_ok());
        assert!(matches!(
            a.read_function(f(1)),
            Err(ArchiveError::DegradedFunction(id)) if id == f(1)
        ));
        // Re-parsing the bytes preserves the split.
        let b = TwppArchive::from_bytes(a.as_bytes().to_vec()).unwrap();
        assert_eq!(b.failed_functions(), &[(f(1), 4)]);
        assert_eq!(b.function_ids(), vec![f(0)]);
        // fsck over the degraded archive: intact modulo the reported
        // function, and the sentinel survives the rebuild.
        let (rebuilt, report) = TwppArchive::recover(a.as_bytes()).unwrap();
        assert!(!report.is_clean());
        assert!(report.is_degraded_only());
        assert_eq!(report.degraded_functions(), vec![f(1)]);
        assert_eq!(rebuilt.failed_functions(), &[(f(1), 4)]);
        // File-based single-function read reports the degraded function.
        let dir = std::env::temp_dir().join("twpp-degraded-archive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("degraded.twpa");
        a.save(&path).unwrap();
        assert!(TwppArchive::read_function_from_file(&path, f(0)).is_ok());
        assert!(matches!(
            TwppArchive::read_function_from_file(&path, f(1)),
            Err(ArchiveError::DegradedFunction(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn governed_encode_with_no_failures_is_byte_identical() {
        let c = compact(&sample_wpp()).unwrap();
        let plain = TwppArchive::from_compacted_named_with_threads(&c, &sample_names(), 2);
        let governed = TwppArchive::from_compacted_governed(&c, &sample_names(), 2, &[]);
        assert_eq!(plain.as_bytes(), governed.as_bytes());
        assert!(!governed.is_degraded());
    }

    #[test]
    fn layout_orders_most_called_first() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        assert_eq!(a.function_ids(), vec![f(1), f(0)]);
        assert_eq!(a.call_count(f(1)), Some(4));
        assert_eq!(a.call_count(f(9)), None);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let bytes = a.as_bytes();
        assert!(matches!(
            TwppArchive::from_bytes(b"XXXX123".to_vec()),
            Err(ArchiveError::BadMagic) | Err(ArchiveError::Truncated)
        ));
        // Truncations anywhere must error, not panic.
        for cut in [4usize, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(TwppArchive::from_bytes(bytes[..cut.min(bytes.len())].to_vec()).is_err());
        }
    }

    #[test]
    fn named_archives_store_and_look_up_names() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted_named(&c, &sample_names());
        assert_eq!(a.function_name(f(0)), Some("main"));
        assert_eq!(a.function_name(f(1)), Some("helper"));
        assert_eq!(a.function_by_name("helper"), Some(f(1)));
        assert_eq!(a.function_by_name("nope"), None);
        // Names survive the byte round trip.
        let b = TwppArchive::from_bytes(a.as_bytes().to_vec()).unwrap();
        assert_eq!(b.function_name(f(1)), Some("helper"));
        assert_eq!(b.to_compacted().unwrap(), c);
        // Unnamed archives answer None.
        let plain = TwppArchive::from_compacted(&c);
        assert_eq!(plain.function_name(f(0)), None);
        // Partial name maps leave the rest unnamed.
        let mut partial = HashMap::new();
        partial.insert(f(1), "only".to_owned());
        let a = TwppArchive::from_compacted_named(&c, &partial);
        assert_eq!(a.function_name(f(0)), None);
        assert_eq!(a.function_name(f(1)), Some("only"));
    }

    #[test]
    fn file_round_trip_and_seek_read() {
        let dir = std::env::temp_dir().join("twpp-archive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.twpa");
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        a.save(&path).unwrap();

        let loaded = TwppArchive::load(&path).unwrap();
        assert_eq!(loaded.to_compacted().unwrap(), c);

        let record = TwppArchive::read_function_from_file(&path, f(1)).unwrap();
        assert_eq!(record, a.read_function(f(1)).unwrap());
        assert!(TwppArchive::read_function_from_file(&path, f(9)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_archives_are_still_readable() {
        let c = compact(&sample_wpp()).unwrap();
        let names = sample_names();
        let v2 = encode_v2_named(&c, &names).unwrap();
        let a = TwppArchive::from_bytes(v2).unwrap();
        assert_eq!(a.version(), VERSION_V2);
        assert_eq!(a.to_compacted().unwrap(), c);
        assert_eq!(a.read_dcg().unwrap(), c.dcg);
        assert_eq!(a.function_name(f(1)), Some("helper"));
        // And seek-reads work on v2 files too.
        let dir = std::env::temp_dir().join("twpp-archive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.twpa");
        std::fs::write(&path, a.as_bytes()).unwrap();
        let record = TwppArchive::read_function_from_file(&path, f(1)).unwrap();
        assert_eq!(record.call_count, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_writer_matches_one_shot_encoder() {
        let c = compact(&sample_wpp()).unwrap();
        let names = sample_names();
        let mut w = ArchiveWriter::new(Vec::new(), &c.dcg, &names).unwrap();
        for fb in &c.functions {
            w.add_function(fb).unwrap();
        }
        let streamed = w.finish().unwrap();
        let one_shot = TwppArchive::from_compacted_named(&c, &names);
        assert_eq!(streamed, one_shot.as_bytes());
    }

    #[test]
    fn flipped_function_region_is_caught_and_others_survive() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let mut bytes = a.as_bytes().to_vec();
        // Flip one payload bit of the first (hottest) function's frame.
        let flip_at = a.data_start + FRAME_HEADER_LEN + 2;
        bytes[flip_at] ^= 0x10;
        // The strict parser still accepts the container (payload CRCs are
        // lazy) but reading the damaged function reports the mismatch...
        let b = TwppArchive::from_bytes(bytes.clone()).unwrap();
        assert!(matches!(
            b.read_function(f(1)),
            Err(ArchiveError::ChecksumMismatch { region: "function region", .. })
        ));
        // ...while the untouched function still reads fine.
        assert_eq!(b.read_function(f(0)).unwrap(), a.read_function(f(0)).unwrap());
        // Salvage keeps the intact function and names the loss.
        let (salvaged, report) = TwppArchive::recover(&bytes).unwrap();
        assert!(!report.is_clean());
        assert!(report.committed && report.dcg_ok);
        assert_eq!(report.salvaged_functions(), 1);
        let lost = report.functions.iter().find(|v| !v.status.is_ok()).unwrap();
        assert_eq!(lost.func, f(1));
        assert_eq!(lost.status, RegionStatus::BadChecksum);
        assert_eq!(
            salvaged.read_function(f(0)).unwrap(),
            a.read_function(f(0)).unwrap()
        );
        assert!(salvaged.read_function(f(1)).is_err());
    }

    #[test]
    fn interrupted_write_is_not_committed_but_salvageable() {
        let c = compact(&sample_wpp()).unwrap();
        let names = sample_names();
        // Simulate a crash after the first frame: write header + one
        // function, never finish().
        let mut w = ArchiveWriter::new(Vec::new(), &c.dcg, &names).unwrap();
        w.add_function(&c.functions[0]).unwrap();
        let partial = w.sink.clone();
        drop(w);
        assert!(matches!(
            TwppArchive::from_bytes(partial.clone()),
            Err(ArchiveError::NotCommitted)
        ));
        let (salvaged, report) = TwppArchive::recover(&partial).unwrap();
        assert!(!report.committed);
        assert!(report.header_ok && report.dcg_ok && report.names_ok);
        assert_eq!(report.salvaged_functions(), 1);
        assert_eq!(salvaged.function_ids(), vec![c.functions[0].func]);
        assert_eq!(salvaged.read_dcg().unwrap(), c.dcg);
        assert_eq!(salvaged.function_name(f(1)), Some("helper"));
    }

    #[test]
    fn damaged_header_still_salvages_frames_by_scanning() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let mut bytes = a.as_bytes().to_vec();
        bytes[9] ^= 0xff; // corrupt dcg_comp_len in the header
        assert!(matches!(
            TwppArchive::from_bytes(bytes.clone()),
            Err(ArchiveError::ChecksumMismatch { region: "header", .. })
        ));
        let (salvaged, report) = TwppArchive::recover(&bytes).unwrap();
        assert!(!report.header_ok);
        assert!(!report.dcg_ok);
        assert_eq!(report.salvaged_functions(), 2);
        // The DCG is lost but both functions decode from the rebuilt
        // archive.
        assert_eq!(salvaged.read_dcg().unwrap(), Dcg::empty());
        assert_eq!(
            salvaged.read_function(f(1)).unwrap().traces,
            a.read_function(f(1)).unwrap().traces
        );
    }

    #[test]
    fn recover_on_clean_archive_reports_clean() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted_named(&c, &sample_names());
        let (salvaged, report) = TwppArchive::recover(a.as_bytes()).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.salvaged_functions(), 2);
        assert_eq!(salvaged.to_compacted().unwrap(), c);
    }

    #[test]
    fn recover_v2_salvages_decodable_regions() {
        let c = compact(&sample_wpp()).unwrap();
        let v2 = encode_v2_named(&c, &sample_names()).unwrap();
        let (salvaged, report) = TwppArchive::recover(&v2).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.version, VERSION_V2);
        // Salvage upgrades to the current container.
        assert_eq!(salvaged.version(), VERSION);
        assert_eq!(salvaged.to_compacted().unwrap(), c);
        assert_eq!(salvaged.function_name(f(1)), Some("helper"));
        // Truncating the last region loses exactly that function.
        let cut = &v2[..v2.len() - 4];
        let (salvaged, report) = TwppArchive::recover(cut).unwrap();
        assert_eq!(report.salvaged_functions(), 1);
        assert!(salvaged.read_function(f(1)).is_ok());
    }

    #[test]
    fn recover_rejects_unusable_input() {
        assert!(matches!(
            TwppArchive::recover(b"XXXXXXXX"),
            Err(ArchiveError::BadMagic)
        ));
        assert!(matches!(
            TwppArchive::recover(b"TW"),
            Err(ArchiveError::Truncated)
        ));
        let mut bad_version = Vec::new();
        bad_version.extend_from_slice(&MAGIC);
        bad_version.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            TwppArchive::recover(&bad_version),
            Err(ArchiveError::BadVersion(99))
        ));
    }

    #[test]
    fn corrupt_footer_falls_back_to_frame_scan() {
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let mut bytes = a.as_bytes().to_vec();
        // Swap the two footer entries' func fields: footer CRC fails, so
        // salvage must rescan frames (whose own CRCs are intact).
        let n = bytes.len();
        let e0 = n - 16 - 2 * FOOTER_ENTRY_BYTES;
        let e1 = n - 16 - FOOTER_ENTRY_BYTES;
        for k in 0..4 {
            bytes.swap(e0 + k, e1 + k);
        }
        assert!(TwppArchive::from_bytes(bytes.clone()).is_err());
        let (salvaged, report) = TwppArchive::recover(&bytes).unwrap();
        assert!(!report.committed);
        assert_eq!(report.salvaged_functions(), 2);
        assert_eq!(salvaged.to_compacted().unwrap(), c);
    }

    #[test]
    fn declared_function_count_is_capped() {
        // A v3 footer tail claiming u32::MAX functions must be rejected
        // before any allocation.
        let c = compact(&sample_wpp()).unwrap();
        let a = TwppArchive::from_compacted(&c);
        let mut bytes = a.as_bytes().to_vec();
        let n = bytes.len();
        bytes[n - 16..n - 12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            TwppArchive::from_bytes(bytes),
            Err(ArchiveError::TooLarge { .. }) | Err(ArchiveError::Truncated)
        ));
    }
}
