//! Partitioning a WPP into per-call path traces linked by the dynamic call
//! graph — the first transformation of the paper (Figure 1 → Figure 2) —
//! and the inverse reconstruction.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use twpp_ir::FuncId;
use twpp_tracer::{RawWpp, WppEvent};

use crate::dcg::{Dcg, DcgNode, DcgNodeId};
use crate::trace::PathTrace;

/// Errors produced while partitioning a malformed event stream.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum PartitionError {
    /// A block or exit event occurred outside any activation.
    EventOutsideActivation,
    /// The stream contains more than one top-level activation.
    MultipleRoots,
    /// The stream is empty.
    Empty,
    /// A pipeline-internal count overflowed its serialized width; the
    /// string names the limit.
    LimitExceeded(&'static str),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::EventOutsideActivation => {
                f.write_str("block or exit event outside any activation")
            }
            PartitionError::MultipleRoots => f.write_str("WPP has multiple top-level activations"),
            PartitionError::Empty => f.write_str("WPP stream is empty"),
            PartitionError::LimitExceeded(what) => write!(f, "{what}"),
        }
    }
}

impl Error for PartitionError {}

/// A WPP partitioned into per-function path traces plus the linking DCG
/// (the paper's Figure 2 form). Before redundancy elimination every
/// activation owns its own trace; [`crate::dedup::eliminate_redundancy`]
/// collapses duplicates in place.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartitionedWpp {
    /// The dynamic call graph.
    pub dcg: Dcg,
    /// Path traces per function; `Dcg` nodes carry indices into these lists.
    pub traces: BTreeMap<FuncId, Vec<PathTrace>>,
}

impl PartitionedWpp {
    /// Total byte size of all stored path traces (4 bytes per block id).
    pub fn trace_bytes(&self) -> usize {
        self.traces
            .values()
            .flat_map(|ts| ts.iter())
            .map(PathTrace::byte_size)
            .sum()
    }

    /// The path trace of a given activation.
    pub fn trace_of(&self, node: DcgNodeId) -> &PathTrace {
        let n = self.dcg.node(node);
        &self.traces[&n.func][n.trace_idx as usize]
    }

    /// Reconstructs the original interleaved WPP event stream — the inverse
    /// of [`partition`], used to prove the representation is lossless.
    pub fn reconstruct(&self) -> RawWpp {
        let mut events = Vec::new();
        if self.dcg.node_count() > 0 {
            self.emit(self.dcg.root(), &mut events);
        }
        RawWpp::from_events(&events)
    }

    fn emit(&self, node_id: DcgNodeId, events: &mut Vec<WppEvent>) {
        // An explicit stack avoids overflowing on deep activation chains.
        // Each frame tracks how many blocks and children have been emitted.
        struct Frame {
            node: DcgNodeId,
            block_pos: usize,
            child_pos: usize,
        }
        let mut stack = vec![Frame {
            node: node_id,
            block_pos: 0,
            child_pos: 0,
        }];
        events.push(WppEvent::Enter(self.dcg.node(node_id).func));
        while let Some(frame) = stack.last_mut() {
            let node = self.dcg.node(frame.node);
            let trace = self.trace_of(frame.node);
            // Emit any child whose call position has been reached.
            if frame.child_pos < node.children.len() {
                let child = node.children[frame.child_pos];
                if self.dcg.node(child).offset_in_parent as usize <= frame.block_pos {
                    frame.child_pos += 1;
                    events.push(WppEvent::Enter(self.dcg.node(child).func));
                    stack.push(Frame {
                        node: child,
                        block_pos: 0,
                        child_pos: 0,
                    });
                    continue;
                }
            }
            if frame.block_pos < trace.len() {
                events.push(WppEvent::Block(trace.blocks()[frame.block_pos]));
                frame.block_pos += 1;
            } else {
                events.push(WppEvent::Exit);
                stack.pop();
            }
        }
    }
}

/// Splits a WPP event stream into per-call path traces and the dynamic call
/// graph (Figure 2 of the paper).
///
/// # Errors
///
/// Returns a [`PartitionError`] for empty or structurally malformed streams.
/// Streams that end mid-activation (a truncated execution) are accepted; the
/// open activations are closed implicitly.
pub fn partition(wpp: &RawWpp) -> Result<PartitionedWpp, PartitionError> {
    if wpp.is_empty() {
        return Err(PartitionError::Empty);
    }
    let mut nodes: Vec<DcgNode> = Vec::new();
    let mut open_traces: Vec<PathTrace> = Vec::new(); // parallel to `stack`
    let mut stack: Vec<usize> = Vec::new(); // node indices
    let mut traces: BTreeMap<FuncId, Vec<PathTrace>> = BTreeMap::new();
    let mut root_seen = false;

    let close_top = |nodes: &mut Vec<DcgNode>,
                         stack: &mut Vec<usize>,
                         open_traces: &mut Vec<PathTrace>,
                         traces: &mut BTreeMap<FuncId, Vec<PathTrace>>| {
        let idx = stack.pop().expect("close_top requires an open activation");
        let trace = open_traces.pop().expect("trace stack parallels node stack");
        let func = nodes[idx].func;
        let list = traces.entry(func).or_default();
        nodes[idx].trace_idx = u32::try_from(list.len()).expect("trace count exceeds u32");
        list.push(trace);
    };

    for event in wpp.iter() {
        match event {
            WppEvent::Enter(func) => {
                if stack.is_empty() && root_seen {
                    return Err(PartitionError::MultipleRoots);
                }
                root_seen = true;
                let idx = nodes.len();
                let offset = match stack.last() {
                    Some(&parent) => {
                        let off = u32::try_from(open_traces[stack.len() - 1].len())
                            .expect("trace length exceeds u32");
                        nodes[parent].children.push(DcgNodeId::from_index(idx));
                        off
                    }
                    None => 0,
                };
                nodes.push(DcgNode {
                    func,
                    trace_idx: 0,
                    offset_in_parent: offset,
                    children: Vec::new(),
                });
                stack.push(idx);
                open_traces.push(PathTrace::new());
            }
            WppEvent::Block(b) => {
                let top = open_traces
                    .last_mut()
                    .ok_or(PartitionError::EventOutsideActivation)?;
                top.push(b);
            }
            WppEvent::Exit => {
                if stack.is_empty() {
                    return Err(PartitionError::EventOutsideActivation);
                }
                close_top(&mut nodes, &mut stack, &mut open_traces, &mut traces);
            }
        }
    }
    // Close activations left open by a truncated stream.
    while !stack.is_empty() {
        close_top(&mut nodes, &mut stack, &mut open_traces, &mut traces);
    }
    Ok(PartitionedWpp {
        dcg: Dcg::from_nodes(nodes),
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp_ir::BlockId;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    /// The paper's Figure 1 stream: main's loop calls f five times.
    fn figure1() -> RawWpp {
        let t1: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10];
        let t2: Vec<u32> = vec![1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10];
        let calls = [&t2, &t2, &t1, &t2, &t1];
        let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(b(1))];
        for t in calls {
            events.push(WppEvent::Block(b(2)));
            events.push(WppEvent::Block(b(3)));
            events.push(WppEvent::Enter(f(1)));
            for &x in t.iter() {
                events.push(WppEvent::Block(b(x)));
            }
            events.push(WppEvent::Exit);
            events.push(WppEvent::Block(b(4)));
        }
        events.push(WppEvent::Block(b(6)));
        events.push(WppEvent::Exit);
        RawWpp::from_events(&events)
    }

    #[test]
    fn partitions_figure1_into_six_activations() {
        let wpp = figure1();
        let part = partition(&wpp).unwrap();
        assert_eq!(part.dcg.node_count(), 6);
        assert_eq!(part.traces[&f(0)].len(), 1);
        assert_eq!(part.traces[&f(1)].len(), 5);
        // main's own trace excludes f's blocks.
        assert_eq!(
            part.traces[&f(0)][0].to_string(),
            "1.2.3.4.2.3.4.2.3.4.2.3.4.2.3.4.6"
        );
    }

    #[test]
    fn reconstruction_is_lossless() {
        let wpp = figure1();
        let part = partition(&wpp).unwrap();
        assert_eq!(part.reconstruct(), wpp);
    }

    #[test]
    fn empty_stream_is_rejected() {
        assert_eq!(partition(&RawWpp::new()), Err(PartitionError::Empty));
    }

    #[test]
    fn stray_events_are_rejected() {
        let wpp = RawWpp::from_events(&[WppEvent::Block(b(1))]);
        assert_eq!(
            partition(&wpp),
            Err(PartitionError::EventOutsideActivation)
        );
        let wpp = RawWpp::from_events(&[WppEvent::Exit]);
        assert_eq!(
            partition(&wpp),
            Err(PartitionError::EventOutsideActivation)
        );
    }

    #[test]
    fn multiple_roots_are_rejected() {
        let wpp = RawWpp::from_events(&[
            WppEvent::Enter(f(0)),
            WppEvent::Exit,
            WppEvent::Enter(f(0)),
            WppEvent::Exit,
        ]);
        assert_eq!(partition(&wpp), Err(PartitionError::MultipleRoots));
    }

    #[test]
    fn truncated_stream_closes_open_activations() {
        let wpp = RawWpp::from_events(&[
            WppEvent::Enter(f(0)),
            WppEvent::Block(b(1)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(2)),
        ]);
        let part = partition(&wpp).unwrap();
        assert_eq!(part.dcg.node_count(), 2);
        assert_eq!(part.traces[&f(1)][0].to_string(), "2");
        // Reconstruction closes the activations explicitly, so it appends
        // the two missing exits.
        let rec = part.reconstruct();
        assert_eq!(rec.event_count(), wpp.event_count() + 2);
    }

    #[test]
    fn call_offsets_record_interleaving() {
        // main: block 1, call f, block 2.
        let wpp = RawWpp::from_events(&[
            WppEvent::Enter(f(0)),
            WppEvent::Block(b(1)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(1)),
            WppEvent::Exit,
            WppEvent::Block(b(2)),
            WppEvent::Exit,
        ]);
        let part = partition(&wpp).unwrap();
        let root = part.dcg.root();
        let child = part.dcg.node(root).children[0];
        assert_eq!(part.dcg.node(child).offset_in_parent, 1);
        assert_eq!(part.reconstruct(), wpp);
    }
}
