//! **twpp-par** — a minimal deterministic worker pool for per-function
//! stages.
//!
//! The TWPP pipeline is embarrassingly parallel by construction:
//! partitioning yields one independent path-trace block per function, and
//! dedup, DBB dictionary building, TWPP inversion and timestamp-series
//! compaction never cross function boundaries. This module provides the
//! one primitive all the parallel stages share: an **order-preserving
//! indexed map** over a slice, executed by a hand-rolled
//! [`std::thread::scope`] pool with a chunked atomic work queue.
//!
//! Design constraints (and why no external crate):
//!
//! * **Determinism** — [`map_indexed`] returns results in input order no
//!   matter how the scheduler interleaves workers, so parallel output is
//!   byte-identical to the sequential path. The property tests in
//!   `tests/parallel.rs` enforce this equality.
//! * **Panic propagation** — a panicking worker does not deadlock or get
//!   swallowed: the panic payload is re-raised on the calling thread via
//!   [`std::panic::resume_unwind`].
//! * **No dependencies** — the build environment has no registry access,
//!   so the pool is ~150 lines of std-only code instead of rayon.
//!
//! Thread counts resolve in priority order: explicit argument >
//! `TWPP_THREADS` environment variable > `available_parallelism()`.

#![deny(clippy::unwrap_used)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::obs::Obs;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "TWPP_THREADS";

/// Hard cap on the worker count (guards against absurd overrides).
pub const MAX_THREADS: usize = 256;

/// Number of worker threads used when no explicit count is given:
/// `TWPP_THREADS` if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`], clamped to [`MAX_THREADS`].
pub fn default_threads() -> usize {
    let from_env = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    from_env.unwrap_or_else(hardware_threads).min(MAX_THREADS)
}

/// The hardware's parallelism, falling back to 1 when unknown.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves an optional explicit thread count: `Some(n)` is clamped to
/// `1..=MAX_THREADS`, `None` falls back to [`default_threads`].
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.clamp(1, MAX_THREADS),
        None => default_threads(),
    }
}

/// Per-pool execution accounting: how the work of one parallel stage was
/// spread over workers, surfaced by `--stats` and the bench crate.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WorkerReport {
    /// Workers actually spawned (1 means the stage ran inline).
    pub threads: usize,
    /// Items processed by each worker, indexed by worker id. The counts
    /// depend on scheduling and are *not* deterministic — only the mapped
    /// results are.
    pub items_per_worker: Vec<u64>,
    /// Wall-clock nanoseconds spent in the stage (spawn to last join).
    pub wall_nanos: u64,
}

impl WorkerReport {
    /// Total items processed across all workers.
    pub fn total_items(&self) -> u64 {
        self.items_per_worker.iter().sum()
    }

    /// Workers that processed at least one item.
    pub fn busy_workers(&self) -> usize {
        self.items_per_worker.iter().filter(|&&n| n > 0).count()
    }
}

/// Applies `f` to every item of `items` using up to `threads` workers and
/// returns the results **in input order**.
///
/// Work is distributed through a chunked atomic cursor: each worker claims
/// a contiguous run of indices at a time, so neighbouring items (which
/// tend to have similar cost in frequency-sorted function lists) spread
/// across workers without a lock per item. With `threads <= 1`, a
/// single-item input, or an empty input, everything runs inline on the
/// calling thread — the sequential path is the same code.
///
/// # Panics
///
/// If `f` panics on any item, the first worker's panic payload is
/// re-raised on the calling thread after all workers have stopped.
pub fn map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed_report(items, threads, f).0
}

/// Like [`map_indexed`], additionally returning a [`WorkerReport`] with
/// per-worker item counts and the stage's wall time.
pub fn map_indexed_report<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, WorkerReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed_observed(items, threads, &Obs::noop(), "par", f)
}

/// Like [`map_indexed_report`], additionally recording one span per
/// worker (`span_name`, tid = worker index + 1) into `obs`.
///
/// Workers measure their own busy interval with [`Obs::now_ns`]; the
/// records are pushed **at join time, in worker order**, so the
/// per-thread buffers merge deterministically (the span tracer's export
/// additionally sorts by `(start, tid, name)`). With a noop observer the
/// instrumentation is one branch per pool invocation — the mapped
/// results are identical either way.
pub fn map_indexed_observed<T, R, F>(
    items: &[T],
    threads: usize,
    obs: &Obs,
    span_name: &'static str,
    f: F,
) -> (Vec<R>, WorkerReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let started = Instant::now();
    let n = items.len();
    let workers = threads.clamp(1, MAX_THREADS).min(n.max(1));
    if workers <= 1 || n <= 1 {
        let span_start = obs.now_ns();
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        if obs.is_enabled() && n > 0 {
            let end = obs.now_ns();
            obs.record_span(span_name, 1, span_start, end.saturating_sub(span_start));
        }
        let report = WorkerReport {
            threads: 1,
            items_per_worker: vec![n as u64],
            wall_nanos: elapsed_nanos(started),
        };
        return (out, report);
    }

    // Chunk size: a few claims per worker keeps contention negligible
    // while still balancing uneven per-item cost.
    let chunk = (n / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    let mut counts: Vec<u64> = vec![0; workers];
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let obs = &*obs;
            handles.push(scope.spawn(move || {
                let span_start = obs.now_ns();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        local.push((i, f(i, item)));
                    }
                }
                let span_end = obs.now_ns();
                (local, span_start, span_end)
            }));
        }
        // Join in spawn order: the deterministic merge point for the
        // per-worker spans.
        for (w, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((local, span_start, span_end)) => {
                    if obs.is_enabled() && !local.is_empty() {
                        let tid = u32::try_from(w + 1).unwrap_or(u32::MAX);
                        obs.record_span(
                            span_name,
                            tid,
                            span_start,
                            span_end.saturating_sub(span_start),
                        );
                    }
                    counts[w] = local.len() as u64;
                    buckets.push(local);
                }
                Err(payload) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }

    // Reassemble in input order: every index was claimed exactly once.
    let mut pairs: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    pairs.sort_unstable_by_key(|&(i, _)| i);
    assert!(
        pairs.len() == n,
        "worker pool lost items: got {} of {n}",
        pairs.len()
    );
    let out: Vec<R> = pairs.into_iter().map(|(_, r)| r).collect();
    let report = WorkerReport {
        threads: workers,
        items_per_worker: counts,
        wall_nanos: elapsed_nanos(started),
    };
    (out, report)
}

/// Like [`map_indexed_report`], but every invocation of `f` is wrapped
/// in [`std::panic::catch_unwind`]: a panicking item yields
/// `Err(message)` for that index while every other item still completes
/// and is returned in input order.
///
/// This is the degrade-mode primitive: one poisoned function must not
/// abort the whole compaction. The fail-fast paths keep using
/// [`map_indexed`], whose panic-propagation semantics are unchanged.
///
/// The panic hook is left untouched, so an injected panic still prints a
/// backtrace unless the caller silences it; callers that expect panics
/// (tests, degrade-mode CLI) may install a quiet hook around the call.
pub fn map_indexed_isolated<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> (Vec<Result<R, String>>, WorkerReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed_isolated_observed(items, threads, &Obs::noop(), "par", f)
}

/// Like [`map_indexed_isolated`], additionally recording per-worker
/// spans into `obs` (see [`map_indexed_observed`]).
pub fn map_indexed_isolated_observed<T, R, F>(
    items: &[T],
    threads: usize,
    obs: &Obs,
    span_name: &'static str,
    f: F,
) -> (Vec<Result<R, String>>, WorkerReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let f = &f;
    map_indexed_observed(items, threads, obs, span_name, move |i, item| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)))
            .map_err(|payload| crate::gov::panic_message(payload.as_ref()))
    })
}

/// Elapsed nanoseconds since `started`, saturating at `u64::MAX`.
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = map_indexed(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_equals_sequential_for_every_thread_count() {
        let items: Vec<u32> = (0..257).rev().collect();
        let seq = map_indexed(&items, 1, |i, &x| (i, x.wrapping_mul(2654435761)));
        for threads in 2..=8 {
            assert_eq!(map_indexed(&items, threads, |i, &x| (i, x.wrapping_mul(2654435761))), seq);
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let (out, report) = map_indexed_report(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(report.threads, 1);
        let (out, report) = map_indexed_report(&[7u32], 8, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(report.threads, 1);
        assert_eq!(report.total_items(), 1);
    }

    #[test]
    fn report_accounts_for_every_item() {
        let items: Vec<u32> = (0..100).collect();
        let (_, report) = map_indexed_report(&items, 4, |_, &x| x);
        assert_eq!(report.threads, 4);
        assert_eq!(report.items_per_worker.len(), 4);
        assert_eq!(report.total_items(), 100);
        assert!(report.busy_workers() >= 1);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            map_indexed(&items, 4, |_, &x| {
                if x == 33 {
                    panic!("worker exploded on {x}");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("worker exploded"), "unexpected payload: {msg}");
    }

    #[test]
    fn isolated_map_contains_panics() {
        let items: Vec<u32> = (0..64).collect();
        // Silence the default panic hook's stderr spew for the injected
        // panic; restore afterwards so other tests are unaffected.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (out, report) = map_indexed_isolated(&items, 4, |_, &x| {
            if x == 33 {
                panic!("worker exploded on {x}");
            }
            x * 2
        });
        std::panic::set_hook(prev);
        assert_eq!(out.len(), 64);
        assert_eq!(report.total_items(), 64);
        for (i, r) in out.iter().enumerate() {
            if i == 33 {
                let msg = r.as_ref().expect_err("item 33 must fail");
                assert!(msg.contains("worker exploded"), "got: {msg}");
            } else {
                assert_eq!(*r.as_ref().expect("other items succeed"), (i as u32) * 2);
            }
        }
    }

    #[test]
    fn observed_map_records_busy_worker_spans() {
        let items: Vec<u32> = (0..128).collect();
        let obs = Obs::collecting();
        let (out, report) = map_indexed_observed(&items, 4, &obs, "stage", |_, &x| x + 1);
        assert_eq!(out.len(), 128);
        let spans = obs.spans();
        // One span per busy worker, tids in 1..=threads.
        assert_eq!(spans.len(), report.busy_workers());
        for s in &spans {
            assert_eq!(s.name, "stage");
            assert!(s.tid >= 1 && s.tid as usize <= report.threads);
        }
        // A noop observer records nothing and returns the same results.
        let noop = Obs::noop();
        let (out2, _) = map_indexed_observed(&items, 4, &noop, "stage", |_, &x| x + 1);
        assert_eq!(out2, out);
        assert_eq!(noop.span_count(), 0);
    }

    #[test]
    fn thread_resolution_rules() {
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(100_000)), MAX_THREADS);
        assert!(resolve_threads(None) >= 1);
        assert!(default_threads() >= 1);
        assert!(hardware_threads() >= 1);
    }
}
