//! **twpp::net** — the length-prefixed framed protocol of the streaming
//! ingestion daemon (`twpp serve-ingest`).
//!
//! The wire discipline deliberately mirrors the WAL's: every frame is
//! magic-tagged, length-prefixed and CRC-protected, so a decoder facing
//! a hostile or merely unlucky byte stream can always classify it as
//! *incomplete* (wait for more bytes), *well-formed* (a [`Frame`]) or
//! *garbage* (a typed [`NetError`] — the connection is quarantined, the
//! daemon survives). Nothing in this module touches sockets except the
//! thin [`FramedStream`] / [`Client`] helpers; the codec itself is pure
//! bytes-in/frames-out and is property-tested that way.
//!
//! # Frame format (all integers little-endian)
//!
//! ```text
//! frame    := "TWPN" | len u32 | crc u32 | body
//! body     := kind u32 | payload              (len = body length, ≤ MAX)
//! ```
//!
//! `crc` is CRC32 over the body. Frame kinds and payloads:
//!
//! | kind | frame      | payload                                |
//! |------|------------|----------------------------------------|
//! | 1    | `Hello`    | source name (UTF-8)                    |
//! | 2    | `Events`   | offset u64, then 4-byte WPP event words|
//! | 3    | `Seal`     | empty                                  |
//! | 4    | `Drain`    | empty                                  |
//! | 16   | `Ok`       | accepted u64                           |
//! | 17   | `Busy`     | retry_after_ms u64                     |
//! | 18   | `Error`    | code u32, then UTF-8 message           |
//!
//! `Events.offset` is the global index of the batch's first event in
//! the source's stream. The server acknowledges with `Ok{accepted}` —
//! the number of events durably accepted so far — and silently skips
//! any batch prefix it already holds, which is what makes blind replay
//! after a `Busy` or a reconnect *exactly-once*: a client can always
//! resend from its last un-acknowledged offset and lose nothing.

use std::fmt;
use std::io::{Read, Write};

use twpp_tracer::WppEvent;

use twpp_ir::checksum::crc32;

use crate::gov::Retry;

/// Magic bytes opening every frame.
pub const NET_MAGIC: [u8; 4] = *b"TWPN";
/// Frame header length: magic + len + crc.
pub const FRAME_HEADER_LEN: usize = 12;
/// Upper bound on a frame body; a larger length field is a torn or
/// hostile frame, not an allocation request.
pub const MAX_FRAME_BYTES: u32 = 1 << 24;
/// Longest accepted source name.
pub const MAX_SOURCE_NAME: usize = 64;

/// Protocol error code: the frame could not be decoded.
pub const ERR_PROTOCOL: u32 = 1;
/// Protocol error code: the event batch is structurally invalid for the
/// source's stream (bad sequence or an offset gap).
pub const ERR_STREAM: u32 = 2;
/// Protocol error code: the source was failed in isolation (wedged seal
/// or unrecoverable I/O) and accepts no further events.
pub const ERR_SOURCE_FAILED: u32 = 3;
/// Protocol error code: the daemon is draining and accepts no new work.
pub const ERR_DRAINING: u32 = 4;
/// Protocol error code: the first frame on a connection must be `Hello`.
pub const ERR_NO_HELLO: u32 = 5;
/// Protocol error code: the named archive is not in the served fleet.
pub const ERR_UNKNOWN_ARCHIVE: u32 = 6;
/// Protocol error code: the request is well-formed on the wire but
/// unanswerable (unknown function, trace index out of range, …).
pub const ERR_BAD_REQUEST: u32 = 7;
/// Protocol error code: the queried function is a degraded sentinel and
/// carries no traces. A remote client maps this to the same degraded
/// exit the local CLI uses.
pub const ERR_DEGRADED: u32 = 8;

/// Errors decoding or transporting frames.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum NetError {
    /// An I/O failure on the underlying stream.
    Io(String),
    /// The bytes at the frame boundary do not start with `TWPN`.
    BadMagic,
    /// The length field exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The claimed body length.
        len: u32,
    },
    /// The body checksum does not match.
    BadCrc,
    /// The frame kind is not one this build understands.
    BadKind(u32),
    /// The payload is malformed for its kind (message says how).
    BadPayload(String),
    /// The connection closed mid-frame (a torn frame).
    Closed,
    /// The peer answered with an `Error` frame.
    Remote {
        /// The peer's error code (`ERR_*`).
        code: u32,
        /// The peer's message.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(msg) => write!(f, "network I/O error: {msg}"),
            NetError::BadMagic => f.write_str("frame does not start with TWPN magic"),
            NetError::Oversized { len } => {
                write!(f, "frame body of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            NetError::BadCrc => f.write_str("frame checksum mismatch"),
            NetError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            NetError::BadPayload(msg) => write!(f, "malformed frame payload: {msg}"),
            NetError::Closed => f.write_str("connection closed mid-frame"),
            NetError::Remote { code, message } => {
                write!(f, "peer error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Per-request resource bounds carried by every serve request. Zero
/// means "server default" for the deadline and "unlimited" for steps;
/// the server clamps both against its own configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BudgetSpec {
    /// Wall-clock deadline in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// Solver step limit (0 = unlimited).
    pub max_steps: u64,
}

/// A `Query` request: list the expanded path traces of one function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryReq {
    /// Archive name (file stem under the fleet root).
    pub archive: String,
    /// Function id to query.
    pub func: u32,
}

/// A `Slice` request: the backward dynamic-slice closure over one
/// trace's dynamic CFG from a criterion block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SliceReq {
    /// Archive name.
    pub archive: String,
    /// Function id.
    pub func: u32,
    /// Unique-trace index within the function's block.
    pub trace: u32,
    /// Criterion block id (a dynamic-CFG node head).
    pub criterion: u32,
}

/// A `Currency` request: which executions of a use see `def_block`'s
/// value un-clobbered by any of `redefs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CurrencyReq {
    /// Archive name.
    pub archive: String,
    /// Function id.
    pub func: u32,
    /// Unique-trace index within the function's block.
    pub trace: u32,
    /// Block whose definition is being tracked.
    pub def_block: u32,
    /// Block where the value is observed.
    pub use_block: u32,
    /// Blocks that clobber the definition.
    pub redefs: Vec<u32>,
}

/// One fleet entry in an `Archives` reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArchiveStat {
    /// Archive name (file stem).
    pub name: String,
    /// Live (non-degraded) function count.
    pub functions: u32,
    /// Whether the archive carries degraded-function sentinels.
    pub degraded: bool,
    /// On-disk file size in bytes.
    pub file_bytes: u64,
}

/// Typed result payload of an [`Answer`], one variant per request kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnswerData {
    /// Reply to [`QueryReq`].
    Query {
        /// Recorded call count of the function.
        call_count: u64,
        /// DBB dictionary count.
        dicts: u32,
        /// Unique path traces the function holds.
        total_traces: u32,
        /// Traces actually rendered before the budget ran out
        /// (`== total_traces` when complete).
        rendered: u32,
    },
    /// Reply to [`SliceReq`]: the slice as sorted block ids.
    Slice {
        /// Sorted, deduplicated block ids in the slice closure.
        blocks: Vec<u32>,
    },
    /// Reply to [`CurrencyReq`].
    Currency {
        /// Timestamps at the use where the definition is current.
        current: u64,
        /// Total timestamps examined at the use.
        total: u64,
        /// `holds` timestamp set, wire words ([`TsSet::to_wire`]).
        ///
        /// [`TsSet::to_wire`]: crate::tsset::TsSet::to_wire
        holds: Vec<i32>,
        /// `not_holds` timestamp set, wire words.
        not_holds: Vec<i32>,
    },
}

/// A complete or governed-partial answer to a serve request.
///
/// `text` carries the exact bytes the local one-shot CLI would print
/// for the same request, so remote output is byte-identical by
/// construction; the structured fields exist for machine comparison
/// (conformance, tests) and for the client to reproduce the CLI's
/// degraded-exit contract.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Answer {
    /// Whether the solver ran to completion.
    pub complete: bool,
    /// Why it stopped when partial: 0 none, 1 deadline, 2 step limit,
    /// 3 byte limit, 4 cancelled.
    pub stop_code: u32,
    /// Fraction of the full answer covered, as `f64::to_bits` (kept as
    /// bits so `Frame` stays `Eq`); `1.0` when complete.
    pub coverage_bits: u64,
    /// Rendered answer, byte-identical to the local CLI's stdout.
    pub text: String,
    /// Structured result.
    pub data: AnswerData,
}

impl Answer {
    /// Coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        f64::from_bits(self.coverage_bits)
    }
}

/// One protocol frame: ingest client→server verbs
/// (`Hello`/`Events`/`Seal`/`Drain`), serve request verbs
/// (`Query`/`Slice`/`Currency`/`ListArchives`/`Stat`), and
/// server→client replies (`Ok`/`Busy`/`Error`/`Answer`/`Archives`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Frame {
    /// Opens a connection: names the source stream the events belong to.
    /// The server replies `Ok{accepted}` so a reconnecting client learns
    /// the durable position to resume from.
    Hello {
        /// Source name; see [`valid_source_name`].
        source: String,
    },
    /// A batch of events starting at global index `offset`.
    Events {
        /// Global index of the first event in the batch.
        offset: u64,
        /// The batch.
        events: Vec<WppEvent>,
    },
    /// Forces the source's open window to seal into a segment.
    Seal,
    /// Requests a daemon-wide graceful drain.
    Drain,
    /// Acknowledgement: `accepted` events are durable for this source.
    Ok {
        /// Durable event count for the connection's source.
        accepted: u64,
    },
    /// Backpressure: retry the same frame after the hinted pause.
    Busy {
        /// Suggested client-side pause, in milliseconds.
        retry_after_ms: u64,
    },
    /// A typed refusal; see the `ERR_*` constants.
    Error {
        /// One of the `ERR_*` codes.
        code: u32,
        /// Human-readable context.
        message: String,
    },
    /// Serve: list one function's expanded path traces.
    Query {
        /// What to answer.
        req: QueryReq,
        /// Resource bounds.
        budget: BudgetSpec,
    },
    /// Serve: backward dynamic slice over one trace's dynamic CFG.
    Slice {
        /// What to answer.
        req: SliceReq,
        /// Resource bounds.
        budget: BudgetSpec,
    },
    /// Serve: currency determination at a use.
    Currency {
        /// What to answer.
        req: CurrencyReq,
        /// Resource bounds.
        budget: BudgetSpec,
    },
    /// Serve: enumerate the fleet.
    ListArchives,
    /// Serve: stat one archive.
    Stat {
        /// Archive name.
        archive: String,
    },
    /// Serve reply: a complete or governed-partial answer.
    Answer(Box<Answer>),
    /// Serve reply to `ListArchives` (every fleet entry, name-sorted)
    /// and `Stat` (exactly one entry).
    Archives {
        /// The fleet entries.
        entries: Vec<ArchiveStat>,
    },
}

const KIND_HELLO: u32 = 1;
const KIND_EVENTS: u32 = 2;
const KIND_SEAL: u32 = 3;
const KIND_DRAIN: u32 = 4;
const KIND_OK: u32 = 16;
const KIND_BUSY: u32 = 17;
const KIND_ERROR: u32 = 18;
const KIND_QUERY: u32 = 32;
const KIND_SLICE: u32 = 33;
const KIND_CURRENCY: u32 = 34;
const KIND_LIST_ARCHIVES: u32 = 35;
const KIND_STAT: u32 = 36;
const KIND_ANSWER: u32 = 48;
const KIND_ARCHIVES: u32 = 49;

const ANSWER_TAG_QUERY: u32 = 1;
const ANSWER_TAG_SLICE: u32 = 2;
const ANSWER_TAG_CURRENCY: u32 = 3;

/// Whether `name` is acceptable as a source name (and therefore as a
/// subdirectory of the daemon's root): 1..=64 chars of
/// `[A-Za-z0-9._-]`, not starting with a dot or dash.
pub fn valid_source_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_SOURCE_NAME
        && !name.starts_with(['.', '-'])
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

impl Frame {
    fn kind(&self) -> u32 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Events { .. } => KIND_EVENTS,
            Frame::Seal => KIND_SEAL,
            Frame::Drain => KIND_DRAIN,
            Frame::Ok { .. } => KIND_OK,
            Frame::Busy { .. } => KIND_BUSY,
            Frame::Error { .. } => KIND_ERROR,
            Frame::Query { .. } => KIND_QUERY,
            Frame::Slice { .. } => KIND_SLICE,
            Frame::Currency { .. } => KIND_CURRENCY,
            Frame::ListArchives => KIND_LIST_ARCHIVES,
            Frame::Stat { .. } => KIND_STAT,
            Frame::Answer(_) => KIND_ANSWER,
            Frame::Archives { .. } => KIND_ARCHIVES,
        }
    }

    /// Serializes the frame (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(16);
        body.extend_from_slice(&self.kind().to_le_bytes());
        match self {
            Frame::Hello { source } => body.extend_from_slice(source.as_bytes()),
            Frame::Events { offset, events } => {
                body.extend_from_slice(&offset.to_le_bytes());
                for e in events {
                    body.extend_from_slice(&e.encode().to_le_bytes());
                }
            }
            Frame::Seal | Frame::Drain => {}
            Frame::Ok { accepted } => body.extend_from_slice(&accepted.to_le_bytes()),
            Frame::Busy { retry_after_ms } => {
                body.extend_from_slice(&retry_after_ms.to_le_bytes())
            }
            Frame::Error { code, message } => {
                body.extend_from_slice(&code.to_le_bytes());
                body.extend_from_slice(message.as_bytes());
            }
            Frame::Query { req, budget } => {
                put_str(&mut body, &req.archive);
                body.extend_from_slice(&req.func.to_le_bytes());
                put_budget(&mut body, budget);
            }
            Frame::Slice { req, budget } => {
                put_str(&mut body, &req.archive);
                body.extend_from_slice(&req.func.to_le_bytes());
                body.extend_from_slice(&req.trace.to_le_bytes());
                body.extend_from_slice(&req.criterion.to_le_bytes());
                put_budget(&mut body, budget);
            }
            Frame::Currency { req, budget } => {
                put_str(&mut body, &req.archive);
                body.extend_from_slice(&req.func.to_le_bytes());
                body.extend_from_slice(&req.trace.to_le_bytes());
                body.extend_from_slice(&req.def_block.to_le_bytes());
                body.extend_from_slice(&req.use_block.to_le_bytes());
                body.extend_from_slice(&(req.redefs.len() as u32).to_le_bytes());
                for r in &req.redefs {
                    body.extend_from_slice(&r.to_le_bytes());
                }
                put_budget(&mut body, budget);
            }
            Frame::ListArchives => {}
            Frame::Stat { archive } => put_str(&mut body, archive),
            Frame::Answer(a) => {
                let tag = match &a.data {
                    AnswerData::Query { .. } => ANSWER_TAG_QUERY,
                    AnswerData::Slice { .. } => ANSWER_TAG_SLICE,
                    AnswerData::Currency { .. } => ANSWER_TAG_CURRENCY,
                };
                body.extend_from_slice(&tag.to_le_bytes());
                body.extend_from_slice(&u32::from(a.complete).to_le_bytes());
                body.extend_from_slice(&a.stop_code.to_le_bytes());
                body.extend_from_slice(&a.coverage_bits.to_le_bytes());
                put_str(&mut body, &a.text);
                match &a.data {
                    AnswerData::Query { call_count, dicts, total_traces, rendered } => {
                        body.extend_from_slice(&call_count.to_le_bytes());
                        body.extend_from_slice(&dicts.to_le_bytes());
                        body.extend_from_slice(&total_traces.to_le_bytes());
                        body.extend_from_slice(&rendered.to_le_bytes());
                    }
                    AnswerData::Slice { blocks } => {
                        body.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                        for b in blocks {
                            body.extend_from_slice(&b.to_le_bytes());
                        }
                    }
                    AnswerData::Currency { current, total, holds, not_holds } => {
                        body.extend_from_slice(&current.to_le_bytes());
                        body.extend_from_slice(&total.to_le_bytes());
                        for words in [holds, not_holds] {
                            body.extend_from_slice(&(words.len() as u32).to_le_bytes());
                            for w in words {
                                body.extend_from_slice(&w.to_le_bytes());
                            }
                        }
                    }
                }
            }
            Frame::Archives { entries } => {
                body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    put_str(&mut body, &e.name);
                    body.extend_from_slice(&e.functions.to_le_bytes());
                    body.extend_from_slice(&u32::from(e.degraded).to_le_bytes());
                    body.extend_from_slice(&e.file_bytes.to_le_bytes());
                }
            }
        }
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
        out.extend_from_slice(&NET_MAGIC);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a CRC-verified frame body (kind word + payload).
    fn decode_body(body: &[u8]) -> Result<Frame, NetError> {
        if body.len() < 4 {
            return Err(NetError::BadPayload("body shorter than its kind word".into()));
        }
        let kind = read_u32(body, 0);
        let payload = &body[4..];
        match kind {
            KIND_HELLO => {
                let source = std::str::from_utf8(payload)
                    .map_err(|_| NetError::BadPayload("source name is not UTF-8".into()))?
                    .to_owned();
                if !valid_source_name(&source) {
                    return Err(NetError::BadPayload(format!(
                        "invalid source name {source:?}"
                    )));
                }
                Ok(Frame::Hello { source })
            }
            KIND_EVENTS => {
                if payload.len() < 8 || !(payload.len() - 8).is_multiple_of(4) {
                    return Err(NetError::BadPayload(
                        "events payload is not offset + whole words".into(),
                    ));
                }
                let offset = read_u64(payload, 0);
                let mut events = Vec::with_capacity((payload.len() - 8) / 4);
                for i in (8..payload.len()).step_by(4) {
                    let word = read_u32(payload, i);
                    match WppEvent::decode(word) {
                        Some(e) => events.push(e),
                        None => {
                            return Err(NetError::BadPayload(format!(
                                "undecodable event word {word:#010x}"
                            )))
                        }
                    }
                }
                Ok(Frame::Events { offset, events })
            }
            KIND_SEAL | KIND_DRAIN => {
                if !payload.is_empty() {
                    return Err(NetError::BadPayload("control frame carries a payload".into()));
                }
                Ok(if kind == KIND_SEAL { Frame::Seal } else { Frame::Drain })
            }
            KIND_OK | KIND_BUSY => {
                if payload.len() != 8 {
                    return Err(NetError::BadPayload("expected one u64 payload".into()));
                }
                let v = read_u64(payload, 0);
                Ok(if kind == KIND_OK {
                    Frame::Ok { accepted: v }
                } else {
                    Frame::Busy { retry_after_ms: v }
                })
            }
            KIND_ERROR => {
                if payload.len() < 4 {
                    return Err(NetError::BadPayload("error frame without a code".into()));
                }
                let code = read_u32(payload, 0);
                let message = String::from_utf8_lossy(&payload[4..]).into_owned();
                Ok(Frame::Error { code, message })
            }
            KIND_QUERY => {
                let mut r = Reader::new(payload);
                let archive = r.archive_name()?;
                let func = r.u32()?;
                let budget = r.budget()?;
                r.done()?;
                Ok(Frame::Query { req: QueryReq { archive, func }, budget })
            }
            KIND_SLICE => {
                let mut r = Reader::new(payload);
                let archive = r.archive_name()?;
                let func = r.u32()?;
                let trace = r.u32()?;
                let criterion = r.u32()?;
                let budget = r.budget()?;
                r.done()?;
                Ok(Frame::Slice {
                    req: SliceReq { archive, func, trace, criterion },
                    budget,
                })
            }
            KIND_CURRENCY => {
                let mut r = Reader::new(payload);
                let archive = r.archive_name()?;
                let func = r.u32()?;
                let trace = r.u32()?;
                let def_block = r.u32()?;
                let use_block = r.u32()?;
                let n = r.u32()? as usize;
                let redefs = r.u32_vec(n)?;
                let budget = r.budget()?;
                r.done()?;
                Ok(Frame::Currency {
                    req: CurrencyReq { archive, func, trace, def_block, use_block, redefs },
                    budget,
                })
            }
            KIND_LIST_ARCHIVES => {
                if !payload.is_empty() {
                    return Err(NetError::BadPayload("control frame carries a payload".into()));
                }
                Ok(Frame::ListArchives)
            }
            KIND_STAT => {
                let mut r = Reader::new(payload);
                let archive = r.archive_name()?;
                r.done()?;
                Ok(Frame::Stat { archive })
            }
            KIND_ANSWER => {
                let mut r = Reader::new(payload);
                let tag = r.u32()?;
                let complete = r.flag()?;
                let stop_code = r.u32()?;
                if stop_code > 4 {
                    return Err(NetError::BadPayload(format!("bad stop code {stop_code}")));
                }
                let coverage_bits = r.u64()?;
                let cov = f64::from_bits(coverage_bits);
                if !(0.0..=1.0).contains(&cov) {
                    return Err(NetError::BadPayload("coverage outside [0, 1]".into()));
                }
                let text = r.str()?;
                let data = match tag {
                    ANSWER_TAG_QUERY => AnswerData::Query {
                        call_count: r.u64()?,
                        dicts: r.u32()?,
                        total_traces: r.u32()?,
                        rendered: r.u32()?,
                    },
                    ANSWER_TAG_SLICE => {
                        let n = r.u32()? as usize;
                        AnswerData::Slice { blocks: r.u32_vec(n)? }
                    }
                    ANSWER_TAG_CURRENCY => {
                        let current = r.u64()?;
                        let total = r.u64()?;
                        let nh = r.u32()? as usize;
                        let holds = r.i32_vec(nh)?;
                        let nn = r.u32()? as usize;
                        let not_holds = r.i32_vec(nn)?;
                        AnswerData::Currency { current, total, holds, not_holds }
                    }
                    other => {
                        return Err(NetError::BadPayload(format!("unknown answer tag {other}")))
                    }
                };
                r.done()?;
                Ok(Frame::Answer(Box::new(Answer {
                    complete,
                    stop_code,
                    coverage_bits,
                    text,
                    data,
                })))
            }
            KIND_ARCHIVES => {
                let mut r = Reader::new(payload);
                let n = r.u32()? as usize;
                if n > payload.len() {
                    return Err(NetError::BadPayload("archive count exceeds payload".into()));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(ArchiveStat {
                        name: r.archive_name()?,
                        functions: r.u32()?,
                        degraded: r.flag()?,
                        file_bytes: r.u64()?,
                    });
                }
                r.done()?;
                Ok(Frame::Archives { entries })
            }
            other => Err(NetError::BadKind(other)),
        }
    }
}

fn put_str(body: &mut Vec<u8>, s: &str) {
    body.extend_from_slice(&(s.len() as u32).to_le_bytes());
    body.extend_from_slice(s.as_bytes());
}

fn put_budget(body: &mut Vec<u8>, b: &BudgetSpec) {
    body.extend_from_slice(&b.deadline_ms.to_le_bytes());
    body.extend_from_slice(&b.max_steps.to_le_bytes());
}

/// Strict little-endian cursor for serve-frame payloads: every read is
/// bounds-checked and [`Reader::done`] rejects trailing garbage, so a
/// malformed body always surfaces as a typed [`NetError::BadPayload`].
struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(b: &'a [u8]) -> Reader<'a> {
        Reader { b, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.b.len() - self.at < n {
            return Err(NetError::BadPayload("payload truncated".into()));
        }
        let out = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(read_u32(self.take(4)?, 0))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(read_u64(self.take(8)?, 0))
    }

    fn flag(&mut self) -> Result<bool, NetError> {
        match self.u32()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(NetError::BadPayload(format!("bad boolean {other}"))),
        }
    }

    fn str(&mut self) -> Result<String, NetError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NetError::BadPayload("string is not UTF-8".into()))
    }

    fn archive_name(&mut self) -> Result<String, NetError> {
        let name = self.str()?;
        if !valid_source_name(&name) {
            return Err(NetError::BadPayload(format!("invalid archive name {name:?}")));
        }
        Ok(name)
    }

    fn budget(&mut self) -> Result<BudgetSpec, NetError> {
        Ok(BudgetSpec { deadline_ms: self.u64()?, max_steps: self.u64()? })
    }

    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, NetError> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| {
            NetError::BadPayload("element count overflows".into())
        })?)?;
        Ok(bytes.chunks_exact(4).map(|c| read_u32(c, 0)).collect())
    }

    fn i32_vec(&mut self, n: usize) -> Result<Vec<i32>, NetError> {
        Ok(self.u32_vec(n)?.into_iter().map(|w| w as i32).collect())
    }

    fn done(&self) -> Result<(), NetError> {
        if self.at != self.b.len() {
            return Err(NetError::BadPayload("trailing bytes after payload".into()));
        }
        Ok(())
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Incremental frame decoder over a growing byte buffer.
///
/// Push bytes as they arrive; [`FrameDecoder::next_frame`] yields
/// `Ok(Some(frame))` for each complete well-formed frame, `Ok(None)`
/// when the buffered bytes are a (possibly empty) prefix of a frame,
/// and a typed [`NetError`] the moment the buffer cannot be a prefix of
/// any valid frame — at which point the connection should be dropped
/// (the decoder makes no attempt to resynchronise inside a poisoned
/// stream).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so a long-lived connection doesn't grow without
        // bound: drop the consumed prefix once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Attempts to decode the next frame; see the type docs for the
    /// three-way contract.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, NetError> {
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return Ok(None);
        }
        let probe = rest.len().min(4);
        if rest[..probe] != NET_MAGIC[..probe] {
            return Err(NetError::BadMagic);
        }
        if rest.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = read_u32(rest, 4);
        if len > MAX_FRAME_BYTES {
            return Err(NetError::Oversized { len });
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if rest.len() < total {
            return Ok(None);
        }
        let crc = read_u32(rest, 8);
        let body = &rest[FRAME_HEADER_LEN..total];
        if crc32(body) != crc {
            return Err(NetError::BadCrc);
        }
        let frame = Frame::decode_body(body)?;
        self.pos += total;
        Ok(Some(frame))
    }
}

/// A blocking frame transport over any `Read + Write` stream.
#[derive(Debug)]
pub struct FramedStream<S> {
    stream: S,
    decoder: FrameDecoder,
}

impl<S: Read + Write> FramedStream<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S) -> FramedStream<S> {
        FramedStream { stream, decoder: FrameDecoder::new() }
    }

    /// The underlying stream (for timeouts, shutdown, addresses).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Writes one frame and flushes.
    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        let bytes = frame.encode();
        self.stream
            .write_all(&bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| NetError::Io(e.to_string()))
    }

    /// Blocks until the next complete frame arrives. A clean close at a
    /// frame boundary and a close mid-frame both surface as
    /// [`NetError::Closed`] (the caller knows whether it expected EOF).
    ///
    /// A read timeout configured on the underlying socket surfaces as
    /// [`NetError::Io`] with a `WouldBlock`/`TimedOut` message; callers
    /// that poll use [`FramedStream::recv_step`] instead.
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        loop {
            match self.recv_step()? {
                Some(frame) => return Ok(frame),
                None => continue,
            }
        }
    }

    /// One poll step: reads once from the stream and returns a frame if
    /// one completed. `Ok(None)` means "no full frame yet" — either the
    /// read returned partial bytes or it timed out (when the socket has
    /// a read timeout), letting the caller interleave shutdown checks.
    pub fn recv_step(&mut self) -> Result<Option<Frame>, NetError> {
        if let Some(frame) = self.decoder.next_frame()? {
            return Ok(Some(frame));
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(NetError::Closed),
            Ok(n) => {
                self.decoder.push(&chunk[..n]);
                self.decoder.next_frame()
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(NetError::Io(e.to_string())),
        }
    }
}

/// A minimal ingest client: HELLO handshake, offset-tracked event
/// batches with BUSY-honouring retry, seal and drain. This is the same
/// code path `twpp net-feed` and the test harnesses use, so the
/// replay-after-BUSY contract is exercised exactly as documented.
#[derive(Debug)]
pub struct Client<S> {
    framed: FramedStream<S>,
    accepted: u64,
}

impl<S: Read + Write> Client<S> {
    /// Performs the HELLO handshake on a connected stream. Returns the
    /// client; [`Client::accepted`] then holds the server's durable
    /// position for `source` (non-zero after a reconnect).
    pub fn hello(stream: S, source: &str) -> Result<Client<S>, NetError> {
        let mut framed = FramedStream::new(stream);
        framed.send(&Frame::Hello { source: source.to_owned() })?;
        match framed.recv()? {
            Frame::Ok { accepted } => Ok(Client { framed, accepted }),
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::BadPayload(format!(
                "expected Ok/Error after Hello, got {other:?}"
            ))),
        }
    }

    /// Events the server has durably accepted for this source.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Sends one `Events` batch at the current accepted offset, honouring
    /// `Busy` responses by sleeping the hinted (or backoff-jittered)
    /// pause and resending — bounded by the retry policy's attempt cap.
    /// On `Ok` the server's accepted count is recorded and returned.
    pub fn send_events(&mut self, events: &[WppEvent], retry: &Retry) -> Result<u64, NetError> {
        let offset = self.accepted;
        let cap = retry.max_attempts.max(1);
        let mut busy_rounds = 0u32;
        loop {
            self.framed.send(&Frame::Events { offset, events: events.to_vec() })?;
            match self.framed.recv()? {
                Frame::Ok { accepted } => {
                    self.accepted = accepted;
                    return Ok(accepted);
                }
                Frame::Busy { retry_after_ms } => {
                    busy_rounds += 1;
                    if busy_rounds >= cap {
                        return Err(NetError::Remote {
                            code: ERR_DRAINING,
                            message: format!("still busy after {busy_rounds} attempts"),
                        });
                    }
                    let ms = retry_after_ms.max(retry.backoff_ms(busy_rounds));
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                Frame::Error { code, message } => return Err(NetError::Remote { code, message }),
                other => {
                    return Err(NetError::BadPayload(format!(
                        "expected Ok/Busy/Error after Events, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Sends a control frame (`Seal` or `Drain`) and waits for the ack.
    fn control(&mut self, frame: Frame) -> Result<u64, NetError> {
        self.framed.send(&frame)?;
        match self.framed.recv()? {
            Frame::Ok { accepted } => {
                self.accepted = accepted;
                Ok(accepted)
            }
            Frame::Error { code, message } => Err(NetError::Remote { code, message }),
            other => Err(NetError::BadPayload(format!(
                "expected Ok/Error after control frame, got {other:?}"
            ))),
        }
    }

    /// Asks the server to seal the source's open window now.
    pub fn seal(&mut self) -> Result<u64, NetError> {
        self.control(Frame::Seal)
    }

    /// Requests a daemon-wide graceful drain.
    pub fn drain(&mut self) -> Result<u64, NetError> {
        self.control(Frame::Drain)
    }
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.0 helpers (the daemon's admin plane)
// ---------------------------------------------------------------------------
//
// The admin listener speaks just enough HTTP/1.0 for `curl`, Prometheus
// scrapers and `twpp status`: one GET request per connection, a fixed
// response, `Connection: close`. No keep-alive, no chunking, no TLS —
// anything beyond a two-token GET line is refused, which keeps the
// parser too small to be attack surface.

/// Cap on an accepted HTTP request head; the admin plane serves short
/// GET lines, anything larger is hostile, not a request.
pub const MAX_HTTP_HEAD: usize = 8192;

/// Reads one HTTP request head from `stream` and returns the request
/// path of a well-formed `GET <path> HTTP/1.x` line.
///
/// # Errors
///
/// [`NetError::Io`] on transport failure, [`NetError::BadPayload`] for
/// anything that is not a plain GET (wrong method, oversized head,
/// malformed request line).
pub fn http_read_request_path<S: Read>(stream: &mut S) -> Result<String, NetError> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > MAX_HTTP_HEAD {
            return Err(NetError::BadPayload("oversized HTTP request head".into()));
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e.to_string())),
        }
    }
    let text = std::str::from_utf8(&head)
        .map_err(|_| NetError::BadPayload("HTTP request head is not UTF-8".into()))?;
    let line = text.lines().next().unwrap_or("");
    let mut words = line.split_whitespace();
    match (words.next(), words.next(), words.next(), words.next()) {
        (Some("GET"), Some(path), Some(version), None)
            if path.starts_with('/') && version.starts_with("HTTP/") =>
        {
            Ok(path.to_owned())
        }
        _ => Err(NetError::BadPayload(format!("not a plain HTTP GET: {line:?}"))),
    }
}

/// Writes a complete HTTP/1.0 response (status line, `Content-Type`,
/// `Content-Length`, `Connection: close`, body) and flushes.
///
/// # Errors
///
/// [`NetError::Io`] if the transport fails.
pub fn http_write_response<S: Write>(
    stream: &mut S,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> Result<(), NetError> {
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| NetError::Io(e.to_string()))
}

/// Fetches `path` from an admin listener at `addr` and returns
/// `(status, body)`. `addr` uses the same spec grammar as the daemon's
/// listeners: `tcp:host:port` (or a bare `host:port`) and, on Unix,
/// `unix:/path/to.sock`.
///
/// # Errors
///
/// [`NetError::Io`] on connect/transport failure, or
/// [`NetError::BadPayload`] when the peer's reply is not an HTTP
/// response.
pub fn http_get(addr: &str, path: &str) -> Result<(u16, String), NetError> {
    let request = format!("GET {path} HTTP/1.0\r\nHost: twpp-admin\r\nConnection: close\r\n\r\n");
    let raw = if let Some(sock) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            let mut stream = std::os::unix::net::UnixStream::connect(sock)
                .map_err(|e| NetError::Io(format!("connect {sock}: {e}")))?;
            http_exchange(&mut stream, &request)?
        }
        #[cfg(not(unix))]
        {
            return Err(NetError::Io(format!(
                "unix sockets are unsupported on this platform: {sock}"
            )));
        }
    } else {
        let tcp = addr.strip_prefix("tcp:").unwrap_or(addr);
        let mut stream = std::net::TcpStream::connect(tcp)
            .map_err(|e| NetError::Io(format!("connect {tcp}: {e}")))?;
        http_exchange(&mut stream, &request)?
    };
    parse_http_response(&raw)
}

fn http_exchange<S: Read + Write>(stream: &mut S, request: &str) -> Result<Vec<u8>, NetError> {
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| NetError::Io(e.to_string()))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| NetError::Io(e.to_string()))?;
    Ok(raw)
}

fn parse_http_response(raw: &[u8]) -> Result<(u16, String), NetError> {
    let text = String::from_utf8_lossy(raw);
    let line = text.lines().next().unwrap_or("");
    let status = line
        .strip_prefix("HTTP/")
        .and_then(|rest| rest.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| NetError::BadPayload(format!("not an HTTP response: {line:?}")))?;
    let body = match text.split_once("\r\n\r\n").or_else(|| text.split_once("\n\n")) {
        Some((_, body)) => body.to_owned(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use twpp_ir::{BlockId, FuncId};

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { source: "web-01".into() },
            Frame::Events {
                offset: 17,
                events: vec![
                    WppEvent::Enter(FuncId::from_u32(3)),
                    WppEvent::Block(BlockId::new(9)),
                    WppEvent::Exit,
                ],
            },
            Frame::Events { offset: 0, events: vec![] },
            Frame::Seal,
            Frame::Drain,
            Frame::Ok { accepted: u64::MAX },
            Frame::Busy { retry_after_ms: 25 },
            Frame::Error { code: ERR_STREAM, message: "offset gap".into() },
            Frame::Query {
                req: QueryReq { archive: "web-01".into(), func: 3 },
                budget: BudgetSpec { deadline_ms: 250, max_steps: 0 },
            },
            Frame::Slice {
                req: SliceReq { archive: "a.b-c".into(), func: 0, trace: 2, criterion: 7 },
                budget: BudgetSpec::default(),
            },
            Frame::Currency {
                req: CurrencyReq {
                    archive: "fleet42".into(),
                    func: 1,
                    trace: 0,
                    def_block: 2,
                    use_block: 9,
                    redefs: vec![3, 5],
                },
                budget: BudgetSpec { deadline_ms: 0, max_steps: 1000 },
            },
            Frame::ListArchives,
            Frame::Stat { archive: "web-01".into() },
            Frame::Answer(Box::new(Answer {
                complete: true,
                stop_code: 0,
                coverage_bits: 1.0f64.to_bits(),
                text: "function 3: 4 calls\n".into(),
                data: AnswerData::Query { call_count: 4, dicts: 1, total_traces: 2, rendered: 2 },
            })),
            Frame::Answer(Box::new(Answer {
                complete: false,
                stop_code: 2,
                coverage_bits: 0.5f64.to_bits(),
                text: String::new(),
                data: AnswerData::Slice { blocks: vec![1, 4, 9] },
            })),
            Frame::Answer(Box::new(Answer {
                complete: true,
                stop_code: 0,
                coverage_bits: 1.0f64.to_bits(),
                text: "currency 2/3\n".into(),
                data: AnswerData::Currency {
                    current: 2,
                    total: 3,
                    holds: vec![2, -4],
                    not_holds: vec![-7],
                },
            })),
            Frame::Archives {
                entries: vec![ArchiveStat {
                    name: "web-01".into(),
                    functions: 12,
                    degraded: false,
                    file_bytes: 4096,
                }],
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut dec = FrameDecoder::new();
        for f in sample_frames() {
            dec.push(&f.encode());
            assert_eq!(dec.next_frame().unwrap(), Some(f));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_delivery_waits_then_decodes() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let mut dec = FrameDecoder::new();
            for &b in &bytes[..bytes.len() - 1] {
                dec.push(&[b]);
                assert_eq!(dec.next_frame().unwrap(), None, "incomplete frame must wait");
            }
            dec.push(&bytes[bytes.len() - 1..]);
            assert_eq!(dec.next_frame().unwrap(), Some(frame));
        }
    }

    #[test]
    fn garbage_is_rejected_with_typed_errors() {
        let mut dec = FrameDecoder::new();
        dec.push(b"HTTP/1.1 200 OK\r\n");
        assert_eq!(dec.next_frame(), Err(NetError::BadMagic));

        let mut dec = FrameDecoder::new();
        let mut oversize = Vec::new();
        oversize.extend_from_slice(&NET_MAGIC);
        oversize.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        oversize.extend_from_slice(&0u32.to_le_bytes());
        dec.push(&oversize);
        assert_eq!(dec.next_frame(), Err(NetError::Oversized { len: MAX_FRAME_BYTES + 1 }));

        let mut corrupt = Frame::Seal.encode();
        let n = corrupt.len();
        corrupt[n - 1] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.push(&corrupt);
        assert_eq!(dec.next_frame(), Err(NetError::BadCrc));

        // Valid header + CRC around an unknown kind.
        let mut body = 99u32.to_le_bytes().to_vec();
        body.extend_from_slice(b"x");
        let mut raw = Vec::new();
        raw.extend_from_slice(&NET_MAGIC);
        raw.extend_from_slice(&(body.len() as u32).to_le_bytes());
        raw.extend_from_slice(&crc32(&body).to_le_bytes());
        raw.extend_from_slice(&body);
        let mut dec = FrameDecoder::new();
        dec.push(&raw);
        assert_eq!(dec.next_frame(), Err(NetError::BadKind(99)));
    }

    #[test]
    fn bad_event_words_and_names_are_bad_payloads() {
        // An Events payload with an undecodable word (reserved tag 11).
        let mut body = KIND_EVENTS.to_le_bytes().to_vec();
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&(3u32 << 30).to_le_bytes());
        let mut raw = Vec::new();
        raw.extend_from_slice(&NET_MAGIC);
        raw.extend_from_slice(&(body.len() as u32).to_le_bytes());
        raw.extend_from_slice(&crc32(&body).to_le_bytes());
        raw.extend_from_slice(&body);
        let mut dec = FrameDecoder::new();
        dec.push(&raw);
        assert!(matches!(dec.next_frame(), Err(NetError::BadPayload(_))));

        for bad in ["", ".hidden", "-dash", "a/b", "x".repeat(65).as_str()] {
            assert!(!valid_source_name(bad), "{bad:?} must be rejected");
        }
        for good in ["web-01", "a", "svc.prod_7"] {
            assert!(valid_source_name(good), "{good:?} must be accepted");
        }
    }

    #[test]
    fn malformed_serve_payloads_are_bad_payloads() {
        // Helper: wrap a raw body (kind included) in a valid header+CRC.
        let wrap = |body: &[u8]| {
            let mut raw = Vec::new();
            raw.extend_from_slice(&NET_MAGIC);
            raw.extend_from_slice(&(body.len() as u32).to_le_bytes());
            raw.extend_from_slice(&crc32(body).to_le_bytes());
            raw.extend_from_slice(body);
            raw
        };
        let expect_bad = |body: Vec<u8>, what: &str| {
            let mut dec = FrameDecoder::new();
            dec.push(&wrap(&body));
            assert!(
                matches!(dec.next_frame(), Err(NetError::BadPayload(_))),
                "{what} must be a BadPayload"
            );
        };

        // Query with a truncated archive-name length.
        let mut body = KIND_QUERY.to_le_bytes().to_vec();
        body.extend_from_slice(&100u32.to_le_bytes());
        body.extend_from_slice(b"ab");
        expect_bad(body, "truncated name");

        // Query with an invalid archive name.
        let mut body = KIND_QUERY.to_le_bytes().to_vec();
        body.extend_from_slice(&7u32.to_le_bytes());
        body.extend_from_slice(b".hidden");
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&[0u8; 16]);
        expect_bad(body, "invalid archive name");

        // Well-formed Query followed by trailing garbage.
        let good = Frame::Query {
            req: QueryReq { archive: "a".into(), func: 0 },
            budget: BudgetSpec::default(),
        };
        let mut enc = good.encode();
        let body_start = FRAME_HEADER_LEN;
        let mut body = enc.split_off(body_start);
        body.push(0xEE);
        expect_bad(body, "trailing bytes");

        // Answer with an out-of-range coverage.
        let ans = Frame::Answer(Box::new(Answer {
            complete: true,
            stop_code: 0,
            coverage_bits: 2.0f64.to_bits(),
            text: String::new(),
            data: AnswerData::Slice { blocks: vec![] },
        }));
        let enc = ans.encode();
        expect_bad(enc[FRAME_HEADER_LEN..].to_vec(), "coverage > 1");

        // Currency with an element count far beyond the payload.
        let mut body = KIND_CURRENCY.to_le_bytes().to_vec();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(b"a");
        for v in [0u32, 0, 0, 0, u32::MAX] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        expect_bad(body, "absurd redef count");
    }

    #[test]
    fn framed_stream_over_in_memory_pipe() {
        use std::io::Cursor;
        let mut wire = Vec::new();
        for f in sample_frames() {
            wire.extend_from_slice(&f.encode());
        }
        struct Half(Cursor<Vec<u8>>);
        impl Read for Half {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.0.read(buf)
            }
        }
        impl Write for Half {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut fs = FramedStream::new(Half(Cursor::new(wire)));
        for expect in sample_frames() {
            assert_eq!(fs.recv().unwrap(), expect);
        }
        assert_eq!(fs.recv(), Err(NetError::Closed));
    }

    #[test]
    fn http_request_line_parses_and_rejects() {
        let mut req: &[u8] = b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n";
        assert_eq!(http_read_request_path(&mut req).unwrap(), "/metrics");
        // Bare LF line endings are tolerated.
        let mut req: &[u8] = b"GET /status HTTP/1.1\nAccept: */*\n\n";
        assert_eq!(http_read_request_path(&mut req).unwrap(), "/status");
        for bad in [
            &b"POST /metrics HTTP/1.0\r\n\r\n"[..],
            &b"GET metrics HTTP/1.0\r\n\r\n"[..],
            &b"GARBAGE\r\n\r\n"[..],
        ] {
            let mut r = bad;
            assert!(matches!(
                http_read_request_path(&mut r),
                Err(NetError::BadPayload(_))
            ));
        }
    }

    #[test]
    fn http_response_round_trips_through_the_parser() {
        let mut wire = Vec::new();
        http_write_response(&mut wire, 200, "OK", "application/json", b"{\"a\":1}").unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        let (status, body) = parse_http_response(&wire).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"a\":1}");
        assert!(parse_http_response(b"TWPN junk").is_err());
    }
}
