//! The timestamped path trace: the WPP → TWPP inversion (Figure 6/7 of the
//! paper).
//!
//! A path trace in WPP form maps timestamps to dynamic basic blocks
//! (`T -> B`: position `i` of the trace executed block `b`). The TWPP form
//! inverts this into `B -> P(T)`: each dynamic basic block carries the
//! ordered set of timestamps at which it executed — precisely the
//! organisation profile-limited data flow analysis wants, and one that
//! compacts further because loop iterations produce arithmetic series.

#![deny(clippy::unwrap_used)]

use std::error::Error;
use std::fmt;

use twpp_ir::BlockId;

use crate::trace::PathTrace;
use crate::tsset::{TsSet, TsSetError};

/// Maximum trace length accepted by [`TimestampedTrace::from_words`]
/// (16 Mi positions). A forged `len` word combined with arithmetic-series
/// timestamp entries could otherwise make a handful of wire words claim
/// billions of positions and blow up [`TimestampedTrace::to_path_trace`];
/// real per-call path traces are orders of magnitude below this cap.
pub const MAX_DECODED_LEN: u32 = 1 << 24;

/// A path trace in timestamped (TWPP) form: `block -> ordered timestamp
/// set`, with timestamps `1..=len` numbering the trace positions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TimestampedTrace {
    len: u32,
    /// Sorted by block id.
    map: Vec<(BlockId, TsSet)>,
}

/// Errors produced while decoding a serialized timestamped trace.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum TimestampedTraceError {
    /// The word stream ended early.
    Truncated,
    /// Block ids are out of order or duplicated.
    UnorderedBlocks,
    /// A timestamp set failed to decode.
    BadTsSet(TsSetError),
    /// The timestamp sets do not partition `1..=len`.
    NotAPartition,
    /// The declared trace length exceeds [`MAX_DECODED_LEN`].
    TooLong(u32),
}

impl fmt::Display for TimestampedTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimestampedTraceError::Truncated => f.write_str("truncated timestamped trace"),
            TimestampedTraceError::UnorderedBlocks => {
                f.write_str("block entries out of order or duplicated")
            }
            TimestampedTraceError::BadTsSet(e) => write!(f, "bad timestamp set: {e}"),
            TimestampedTraceError::NotAPartition => {
                f.write_str("timestamp sets do not partition the trace positions")
            }
            TimestampedTraceError::TooLong(len) => {
                write!(f, "declared trace length {len} exceeds the {MAX_DECODED_LEN} cap")
            }
        }
    }
}

impl Error for TimestampedTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TimestampedTraceError::BadTsSet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TsSetError> for TimestampedTraceError {
    fn from(e: TsSetError) -> TimestampedTraceError {
        TimestampedTraceError::BadTsSet(e)
    }
}

impl TimestampedTrace {
    /// Converts a (DBB-compacted) path trace to timestamped form.
    ///
    /// # Panics
    ///
    /// Panics if the trace has more than `i32::MAX` positions — the sign
    /// encoding of [`TsSet`] caps individual trace lengths, which the paper
    /// notes is harmless because single path traces are far smaller than
    /// the whole WPP.
    pub fn from_path_trace(trace: &PathTrace) -> TimestampedTrace {
        let len = u32::try_from(trace.len()).expect("trace length exceeds u32");
        assert!(len <= i32::MAX as u32, "trace too long for sign encoding");
        // Gather timestamps per block, then compact each list.
        let mut pairs: Vec<(BlockId, Vec<u32>)> = Vec::new();
        let mut index: std::collections::HashMap<BlockId, usize> = std::collections::HashMap::new();
        for (i, b) in trace.iter().enumerate() {
            let ts = (i + 1) as u32;
            match index.get(&b) {
                Some(&k) => pairs[k].1.push(ts),
                None => {
                    index.insert(b, pairs.len());
                    pairs.push((b, vec![ts]));
                }
            }
        }
        pairs.sort_by_key(|(b, _)| *b);
        let map = pairs
            .into_iter()
            .map(|(b, ts)| (b, TsSet::from_sorted(&ts)))
            .collect();
        TimestampedTrace { len, map }
    }

    /// Converts back to the positional path trace (the inverse of
    /// [`TimestampedTrace::from_path_trace`]).
    pub fn to_path_trace(&self) -> PathTrace {
        let mut slots: Vec<Option<BlockId>> = vec![None; self.len as usize];
        for (b, ts) in &self.map {
            for t in ts.iter() {
                let slot = &mut slots[(t - 1) as usize];
                debug_assert!(slot.is_none(), "timestamp sets overlap");
                *slot = Some(*b);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("timestamp sets partition 1..=len"))
            .collect()
    }

    /// Number of trace positions (timestamps run `1..=len`).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` for the empty trace.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct dynamic basic blocks.
    pub fn block_count(&self) -> usize {
        self.map.len()
    }

    /// The timestamp set of `block`, if the block executed.
    pub fn ts_of(&self, block: BlockId) -> Option<&TsSet> {
        self.map
            .binary_search_by_key(&block, |(b, _)| *b)
            .ok()
            .map(|i| &self.map[i].1)
    }

    /// Iterates over `(block, timestamp set)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &TsSet)> {
        self.map.iter().map(|(b, ts)| (*b, ts))
    }

    /// The block executing at timestamp `t`, if `1 <= t <= len`.
    ///
    /// This is a linear scan over blocks; analyses that walk traces should
    /// use the timestamp sets directly.
    pub fn block_at(&self, t: u32) -> Option<BlockId> {
        self.map
            .iter()
            .find(|(_, ts)| ts.contains(t))
            .map(|(b, _)| *b)
    }

    /// Serializes to a word stream:
    /// `[len, n_blocks, (block_id, n_words, words…)*]`, with timestamp
    /// words holding the sign-delimited [`TsSet`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`TimestampedTraceError::BadTsSet`] (carrying
    /// [`TsSetError::TimestampOverflow`]) when a timestamp set holds values
    /// the sign encoding cannot represent (`> i32::MAX`). Traces built via
    /// [`TimestampedTrace::from_path_trace`] always encode, because
    /// construction asserts `len <= i32::MAX`.
    pub fn to_words(&self) -> Result<Vec<u32>, TimestampedTraceError> {
        let mut words = vec![self.len, self.map.len() as u32];
        for (b, ts) in &self.map {
            let wire = ts.to_wire()?;
            words.push(b.as_u32());
            words.push(wire.len() as u32);
            words.extend(wire.iter().map(|&w| w as u32));
        }
        Ok(words)
    }

    /// Decodes a stream produced by [`TimestampedTrace::to_words`],
    /// consuming from `words[*pos]` and advancing `pos`.
    ///
    /// # Errors
    ///
    /// Returns a [`TimestampedTraceError`] for malformed input, including
    /// timestamp sets that do not exactly partition `1..=len`.
    pub fn from_words(words: &[u32], pos: &mut usize) -> Result<TimestampedTrace, TimestampedTraceError> {
        let take = |pos: &mut usize| -> Result<u32, TimestampedTraceError> {
            let w = *words.get(*pos).ok_or(TimestampedTraceError::Truncated)?;
            *pos += 1;
            Ok(w)
        };
        let len = take(pos)?;
        if len > MAX_DECODED_LEN {
            return Err(TimestampedTraceError::TooLong(len));
        }
        let n_blocks = take(pos)? as usize;
        // Clamp: n_blocks is untrusted input.
        let mut map = Vec::with_capacity(n_blocks.min(words.len() - *pos + 1));
        let mut total: u64 = 0;
        for _ in 0..n_blocks {
            let raw_id = take(pos)?;
            if raw_id == 0 {
                return Err(TimestampedTraceError::UnorderedBlocks);
            }
            let b = BlockId::new(raw_id);
            if let Some(&(prev, _)) = map.last() {
                let prev: BlockId = prev;
                if prev >= b {
                    return Err(TimestampedTraceError::UnorderedBlocks);
                }
            }
            let n_words = take(pos)? as usize;
            if *pos + n_words > words.len() {
                return Err(TimestampedTraceError::Truncated);
            }
            let wire: Vec<i32> = words[*pos..*pos + n_words].iter().map(|&w| w as i32).collect();
            *pos += n_words;
            // Bounded decoding: every timestamp must fall in `1..=len`,
            // rejecting wire entries that claim huge member counts.
            let ts = TsSet::from_wire_capped(&wire, len)?;
            if let Some(first) = ts.first() {
                if first < 1 {
                    return Err(TimestampedTraceError::NotAPartition);
                }
            }
            total += ts.len();
            map.push((b, ts));
        }
        if total != u64::from(len) {
            return Err(TimestampedTraceError::NotAPartition);
        }
        Ok(TimestampedTrace { len, map })
    }

    /// Serialized size in bytes (4 bytes per word).
    pub fn byte_size(&self) -> usize {
        (2 + self
            .map
            .iter()
            .map(|(_, ts)| 2 + ts.wire_word_count())
            .sum::<usize>())
            * 4
    }

    /// Total number of timestamp entries across all blocks (the compacted
    /// timestamp-vector sizes of Table 6).
    pub fn total_entries(&self) -> usize {
        self.map.iter().map(|(_, ts)| ts.entry_count()).sum()
    }
}

impl fmt::Display for TimestampedTrace {
    /// Formats like the paper's Figure 7: `1 -> {1}; 2 -> {2:6}; 6 -> {7}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (b, ts)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{} -> {}", b.as_u32(), ts)?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::trace::trace_of;

    #[test]
    fn forged_length_bomb_is_rejected() {
        // len = 2^30 with a single 2-word range set totalling exactly len:
        // without the cap this would decode and let `to_path_trace`
        // allocate gigabytes.
        let words = vec![1u32 << 30, 1, 1, 2, 1, (-(1i32 << 30)) as u32];
        let mut pos = 0;
        assert_eq!(
            TimestampedTrace::from_words(&words, &mut pos),
            Err(TimestampedTraceError::TooLong(1 << 30))
        );
        // A set reaching past a *plausible* len is rejected by the cap too.
        let words = vec![10u32, 1, 1, 2, 1, (-20i32) as u32];
        let mut pos = 0;
        assert!(matches!(
            TimestampedTrace::from_words(&words, &mut pos),
            Err(TimestampedTraceError::BadTsSet(TsSetError::ExceedsCap { .. }))
        ));
    }

    #[test]
    fn paper_example_mapping() {
        // Trace 1.2.2.2.2.2.6: {1 -> {1}, 2 -> {2..6}, 6 -> {7}}.
        let t = trace_of(&[1, 2, 2, 2, 2, 2, 6]);
        let tt = TimestampedTrace::from_path_trace(&t);
        assert_eq!(tt.to_string(), "1 -> {1}; 2 -> {2:6}; 6 -> {7}");
        assert_eq!(tt.len(), 7);
        assert_eq!(tt.block_count(), 3);
        assert_eq!(tt.to_path_trace(), t);
    }

    #[test]
    fn inversion_round_trip() {
        for ids in [
            &[1u32][..],
            &[1, 2, 3, 4, 5][..],
            &[1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10][..],
            &[5, 5, 5, 5][..],
        ] {
            let t = trace_of(ids);
            let tt = TimestampedTrace::from_path_trace(&t);
            assert_eq!(tt.to_path_trace(), t);
        }
    }

    #[test]
    fn empty_trace() {
        let t = trace_of(&[]);
        let tt = TimestampedTrace::from_path_trace(&t);
        assert!(tt.is_empty());
        assert_eq!(tt.to_path_trace(), t);
    }

    #[test]
    fn serialization_round_trip() {
        let t = trace_of(&[1, 2, 2, 2, 9, 2, 6, 9]);
        let tt = TimestampedTrace::from_path_trace(&t);
        let words = tt.to_words().unwrap();
        assert_eq!(words.len() * 4, tt.byte_size());
        let mut pos = 0;
        let back = TimestampedTrace::from_words(&words, &mut pos).unwrap();
        assert_eq!(pos, words.len());
        assert_eq!(back, tt);
    }

    #[test]
    fn decoding_rejects_non_partition() {
        let t = trace_of(&[1, 2, 3]);
        let tt = TimestampedTrace::from_path_trace(&t);
        let mut words = tt.to_words().unwrap();
        words[0] = 4; // claim an extra position
        let mut pos = 0;
        assert_eq!(
            TimestampedTrace::from_words(&words, &mut pos),
            Err(TimestampedTraceError::NotAPartition)
        );
    }

    #[test]
    fn decoding_rejects_truncation() {
        let t = trace_of(&[1, 2, 3]);
        let tt = TimestampedTrace::from_path_trace(&t);
        let words = tt.to_words().unwrap();
        for cut in 0..words.len() {
            let mut pos = 0;
            assert!(TimestampedTrace::from_words(&words[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn ts_of_and_block_at() {
        let t = trace_of(&[3, 1, 3, 1, 3]);
        let tt = TimestampedTrace::from_path_trace(&t);
        assert_eq!(tt.ts_of(BlockId::new(3)).unwrap().to_vec(), vec![1, 3, 5]);
        assert_eq!(tt.ts_of(BlockId::new(1)).unwrap().to_vec(), vec![2, 4]);
        assert_eq!(tt.ts_of(BlockId::new(9)), None);
        assert_eq!(tt.block_at(4), Some(BlockId::new(1)));
        assert_eq!(tt.block_at(6), None);
    }

    #[test]
    fn loop_trace_compacts_to_few_entries() {
        // 1.(2.3)^500.4 — after DBB compaction this would be 1.2^500.4;
        // feed the compacted shape directly.
        let mut ids = vec![1u32];
        ids.extend(std::iter::repeat_n(2, 500));
        ids.push(4);
        let tt = TimestampedTrace::from_path_trace(&trace_of(&ids));
        assert_eq!(tt.total_entries(), 3);
        assert_eq!(tt.byte_size(), (2 + (2 + 1) + (2 + 2) + (2 + 1)) * 4);
    }
}
