//! The timestamped path trace: the WPP → TWPP inversion (Figure 6/7 of the
//! paper).
//!
//! A path trace in WPP form maps timestamps to dynamic basic blocks
//! (`T -> B`: position `i` of the trace executed block `b`). The TWPP form
//! inverts this into `B -> P(T)`: each dynamic basic block carries the
//! ordered set of timestamps at which it executed — precisely the
//! organisation profile-limited data flow analysis wants, and one that
//! compacts further because loop iterations produce arithmetic series.

#![deny(clippy::unwrap_used)]

use std::error::Error;
use std::fmt;

use twpp_ir::BlockId;

use crate::bitcodec::{self, BitCodecError};
use crate::trace::PathTrace;
use crate::tsset::{TsSet, TsSetError};

/// Maximum trace length accepted by [`TimestampedTrace::from_words`]
/// (16 Mi positions). A forged `len` word combined with arithmetic-series
/// timestamp entries could otherwise make a handful of wire words claim
/// billions of positions and blow up [`TimestampedTrace::to_path_trace`];
/// real per-call path traces are orders of magnitude below this cap.
pub const MAX_DECODED_LEN: u32 = 1 << 24;

/// Which timestamp-set encoder the archive writer uses per block.
///
/// The knob only affects *encoding*: decoders read the per-block codec
/// tag, so every reader understands every codec, and
/// [`Codec::Legacy`]-encoded bytes are bit-identical to pre-codec-tag
/// archives (the tag bits of a legacy block are always zero).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum Codec {
    /// The paper's sign-delimited `l:h:s` series encoding, exclusively.
    /// Byte-identical output to every archive written before the codec
    /// tag existed; the default.
    #[default]
    Legacy,
    /// Per-block smallest-wins choice between `l:h:s`, raw timestamps,
    /// and Gorilla-style delta-of-delta bit packing
    /// ([`crate::bitcodec`]). Never larger than [`Codec::Legacy`];
    /// ties keep the legacy form.
    Adaptive,
}

impl Codec {
    /// Stable string form (`legacy` / `adaptive`), the CLI flag
    /// vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            Codec::Legacy => "legacy",
            Codec::Adaptive => "adaptive",
        }
    }

    /// Parses the CLI flag vocabulary.
    pub fn parse(s: &str) -> Option<Codec> {
        match s {
            "legacy" => Some(Codec::Legacy),
            "adaptive" => Some(Codec::Adaptive),
            _ => None,
        }
    }
}

/// The per-block codec tag lives in the top two bits of the `n_words`
/// word (legacy writers always left them zero: wire word counts are
/// bounded far below 2^30, so old archives carry tag 0 everywhere and
/// readers predating the tag see a tagged word as an impossible count
/// and fail with a clean `Truncated` error, never a misdecode).
const CODEC_TAG_MASK: u32 = 0b11 << 30;
/// Tag 0: the paper's sign-delimited `l:h:s` encoding.
const CODEC_TAG_LEGACY: u32 = 0;
/// Tag 1: raw — one `u32` word per timestamp, strictly increasing.
const CODEC_TAG_RAW: u32 = 1 << 30;
/// Tag 2: delta-of-delta bit stream ([`crate::bitcodec`]).
const CODEC_TAG_DD: u32 = 2 << 30;

/// A path trace in timestamped (TWPP) form: `block -> ordered timestamp
/// set`, with timestamps `1..=len` numbering the trace positions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TimestampedTrace {
    len: u32,
    /// Sorted by block id.
    map: Vec<(BlockId, TsSet)>,
}

/// Errors produced while decoding a serialized timestamped trace.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum TimestampedTraceError {
    /// The word stream ended early.
    Truncated,
    /// Block ids are out of order or duplicated.
    UnorderedBlocks,
    /// A timestamp set failed to decode.
    BadTsSet(TsSetError),
    /// A delta-delta coded timestamp set failed to decode.
    BadBitStream(BitCodecError),
    /// A block carried the reserved (undefined) codec tag.
    UnknownCodecTag(u32),
    /// The timestamp sets do not partition `1..=len`.
    NotAPartition,
    /// The declared trace length exceeds [`MAX_DECODED_LEN`].
    TooLong(u32),
}

impl fmt::Display for TimestampedTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimestampedTraceError::Truncated => f.write_str("truncated timestamped trace"),
            TimestampedTraceError::UnorderedBlocks => {
                f.write_str("block entries out of order or duplicated")
            }
            TimestampedTraceError::BadTsSet(e) => write!(f, "bad timestamp set: {e}"),
            TimestampedTraceError::BadBitStream(e) => {
                write!(f, "bad delta-delta timestamp set: {e}")
            }
            TimestampedTraceError::UnknownCodecTag(tag) => {
                write!(f, "unknown codec tag {tag}")
            }
            TimestampedTraceError::NotAPartition => {
                f.write_str("timestamp sets do not partition the trace positions")
            }
            TimestampedTraceError::TooLong(len) => {
                write!(f, "declared trace length {len} exceeds the {MAX_DECODED_LEN} cap")
            }
        }
    }
}

impl Error for TimestampedTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TimestampedTraceError::BadTsSet(e) => Some(e),
            TimestampedTraceError::BadBitStream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TsSetError> for TimestampedTraceError {
    fn from(e: TsSetError) -> TimestampedTraceError {
        TimestampedTraceError::BadTsSet(e)
    }
}

impl From<BitCodecError> for TimestampedTraceError {
    fn from(e: BitCodecError) -> TimestampedTraceError {
        TimestampedTraceError::BadBitStream(e)
    }
}

impl TimestampedTrace {
    /// Converts a (DBB-compacted) path trace to timestamped form.
    ///
    /// # Panics
    ///
    /// Panics if the trace has more than `i32::MAX` positions — the sign
    /// encoding of [`TsSet`] caps individual trace lengths, which the paper
    /// notes is harmless because single path traces are far smaller than
    /// the whole WPP.
    pub fn from_path_trace(trace: &PathTrace) -> TimestampedTrace {
        let len = u32::try_from(trace.len()).expect("trace length exceeds u32");
        assert!(len <= i32::MAX as u32, "trace too long for sign encoding");
        // Gather timestamps per block, then compact each list.
        let mut pairs: Vec<(BlockId, Vec<u32>)> = Vec::new();
        let mut index: std::collections::HashMap<BlockId, usize> = std::collections::HashMap::new();
        for (i, b) in trace.iter().enumerate() {
            let ts = (i + 1) as u32;
            match index.get(&b) {
                Some(&k) => pairs[k].1.push(ts),
                None => {
                    index.insert(b, pairs.len());
                    pairs.push((b, vec![ts]));
                }
            }
        }
        pairs.sort_by_key(|(b, _)| *b);
        let map = pairs
            .into_iter()
            .map(|(b, ts)| (b, TsSet::from_sorted(&ts)))
            .collect();
        TimestampedTrace { len, map }
    }

    /// Converts back to the positional path trace (the inverse of
    /// [`TimestampedTrace::from_path_trace`]).
    pub fn to_path_trace(&self) -> PathTrace {
        let mut slots: Vec<Option<BlockId>> = vec![None; self.len as usize];
        for (b, ts) in &self.map {
            for t in ts.iter() {
                let slot = &mut slots[(t - 1) as usize];
                debug_assert!(slot.is_none(), "timestamp sets overlap");
                *slot = Some(*b);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("timestamp sets partition 1..=len"))
            .collect()
    }

    /// Number of trace positions (timestamps run `1..=len`).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` for the empty trace.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct dynamic basic blocks.
    pub fn block_count(&self) -> usize {
        self.map.len()
    }

    /// The timestamp set of `block`, if the block executed.
    pub fn ts_of(&self, block: BlockId) -> Option<&TsSet> {
        self.map
            .binary_search_by_key(&block, |(b, _)| *b)
            .ok()
            .map(|i| &self.map[i].1)
    }

    /// Iterates over `(block, timestamp set)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &TsSet)> {
        self.map.iter().map(|(b, ts)| (*b, ts))
    }

    /// The block executing at timestamp `t`, if `1 <= t <= len`.
    ///
    /// This is a linear scan over blocks; analyses that walk traces should
    /// use the timestamp sets directly.
    pub fn block_at(&self, t: u32) -> Option<BlockId> {
        self.map
            .iter()
            .find(|(_, ts)| ts.contains(t))
            .map(|(b, _)| *b)
    }

    /// Serializes to a word stream:
    /// `[len, n_blocks, (block_id, n_words, words…)*]`, with timestamp
    /// words holding the sign-delimited [`TsSet`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`TimestampedTraceError::BadTsSet`] (carrying
    /// [`TsSetError::TimestampOverflow`]) when a timestamp set holds values
    /// the sign encoding cannot represent (`> i32::MAX`). Traces built via
    /// [`TimestampedTrace::from_path_trace`] always encode, because
    /// construction asserts `len <= i32::MAX`.
    pub fn to_words(&self) -> Result<Vec<u32>, TimestampedTraceError> {
        self.to_words_with(Codec::Legacy)
    }

    /// Like [`TimestampedTrace::to_words`] with an explicit per-block
    /// codec. [`Codec::Legacy`] output is byte-identical to
    /// [`TimestampedTrace::to_words`]; [`Codec::Adaptive`] picks the
    /// smallest of the legacy, raw and delta-delta encodings per block
    /// (ties keep legacy, then raw), so the stream is never larger than
    /// the legacy one. Every choice is recorded in the block's codec tag
    /// and [`TimestampedTrace::from_words`] understands all of them.
    ///
    /// # Errors
    ///
    /// Same as [`TimestampedTrace::to_words`].
    pub fn to_words_with(&self, codec: Codec) -> Result<Vec<u32>, TimestampedTraceError> {
        let mut words = vec![self.len, self.map.len() as u32];
        for (b, ts) in &self.map {
            let wire = ts.to_wire()?;
            words.push(b.as_u32());
            match codec {
                Codec::Adaptive => match adaptive_block_wire(ts, wire.len()) {
                    Some(AdaptiveWire::Raw(vals)) => {
                        words.push(vals.len() as u32 | CODEC_TAG_RAW);
                        words.extend(vals);
                        continue;
                    }
                    Some(AdaptiveWire::DeltaDelta(packed)) => {
                        words.push(packed.len() as u32 | CODEC_TAG_DD);
                        words.extend(packed);
                        continue;
                    }
                    None => {}
                },
                Codec::Legacy => {}
            }
            debug_assert!(wire.len() < (1 << 30) as usize, "wire count collides with tag bits");
            words.push(wire.len() as u32);
            words.extend(wire.iter().map(|&w| w as u32));
        }
        Ok(words)
    }

    /// Decodes a stream produced by [`TimestampedTrace::to_words`],
    /// consuming from `words[*pos]` and advancing `pos`.
    ///
    /// # Errors
    ///
    /// Returns a [`TimestampedTraceError`] for malformed input, including
    /// timestamp sets that do not exactly partition `1..=len`.
    pub fn from_words(words: &[u32], pos: &mut usize) -> Result<TimestampedTrace, TimestampedTraceError> {
        let take = |pos: &mut usize| -> Result<u32, TimestampedTraceError> {
            let w = *words.get(*pos).ok_or(TimestampedTraceError::Truncated)?;
            *pos += 1;
            Ok(w)
        };
        let len = take(pos)?;
        if len > MAX_DECODED_LEN {
            return Err(TimestampedTraceError::TooLong(len));
        }
        let n_blocks = take(pos)? as usize;
        // Clamp: n_blocks is untrusted input.
        let mut map = Vec::with_capacity(n_blocks.min(words.len() - *pos + 1));
        let mut total: u64 = 0;
        for _ in 0..n_blocks {
            let raw_id = take(pos)?;
            if raw_id == 0 {
                return Err(TimestampedTraceError::UnorderedBlocks);
            }
            let b = BlockId::new(raw_id);
            if let Some(&(prev, _)) = map.last() {
                let prev: BlockId = prev;
                if prev >= b {
                    return Err(TimestampedTraceError::UnorderedBlocks);
                }
            }
            let tagged = take(pos)?;
            let tag = tagged & CODEC_TAG_MASK;
            let n_words = (tagged & !CODEC_TAG_MASK) as usize;
            if *pos + n_words > words.len() {
                return Err(TimestampedTraceError::Truncated);
            }
            let block_words = &words[*pos..*pos + n_words];
            *pos += n_words;
            let ts = match tag {
                CODEC_TAG_LEGACY => {
                    let wire: Vec<i32> = block_words.iter().map(|&w| w as i32).collect();
                    // Bounded decoding: every timestamp must fall in
                    // `1..=len`, rejecting wire entries that claim huge
                    // member counts.
                    TsSet::from_wire_capped(&wire, len)?
                }
                CODEC_TAG_RAW => {
                    // One timestamp per word; validate 1-based, strictly
                    // increasing and capped before the (asserting)
                    // `from_sorted` sees the data.
                    let mut prev = 0u32;
                    for (i, &v) in block_words.iter().enumerate() {
                        if v == 0 {
                            return Err(TsSetError::BadEntry(i).into());
                        }
                        if v <= prev {
                            return Err(TsSetError::Unordered(i).into());
                        }
                        if v > len {
                            return Err(TsSetError::ExceedsCap { value: v, cap: len }.into());
                        }
                        prev = v;
                    }
                    TsSet::from_sorted(block_words)
                }
                CODEC_TAG_DD => {
                    // `decode_delta_delta` enforces 1-based, strictly
                    // increasing, `<= len`, and zero padding bits.
                    let values = bitcodec::decode_delta_delta(block_words, len)?;
                    TsSet::from_sorted(&values)
                }
                other => return Err(TimestampedTraceError::UnknownCodecTag(other >> 30)),
            };
            if let Some(first) = ts.first() {
                if first < 1 {
                    return Err(TimestampedTraceError::NotAPartition);
                }
            }
            total += ts.len();
            map.push((b, ts));
        }
        if total != u64::from(len) {
            return Err(TimestampedTraceError::NotAPartition);
        }
        Ok(TimestampedTrace { len, map })
    }

    /// Serialized size in bytes (4 bytes per word).
    pub fn byte_size(&self) -> usize {
        (2 + self
            .map
            .iter()
            .map(|(_, ts)| 2 + ts.wire_word_count())
            .sum::<usize>())
            * 4
    }

    /// Total number of timestamp entries across all blocks (the compacted
    /// timestamp-vector sizes of Table 6).
    pub fn total_entries(&self) -> usize {
        self.map.iter().map(|(_, ts)| ts.entry_count()).sum()
    }
}

/// A non-legacy block encoding picked by [`Codec::Adaptive`].
enum AdaptiveWire {
    /// One `u32` word per timestamp.
    Raw(Vec<u32>),
    /// Packed delta-of-delta bit stream ([`bitcodec::encode_delta_delta`]).
    DeltaDelta(Vec<u32>),
}

/// Picks the smallest encoding for one block, or `None` to keep legacy.
///
/// Legacy wins ties, raw beats delta-delta on a tie — and raw/delta-delta
/// are only *considered* when strictly smaller than the legacy wire, which
/// (a) caps the tagged word count below the tag bits and (b) guarantees an
/// adaptive stream is never larger than the legacy one. The `n <
/// legacy_words * 32` guard bounds the expansion work: delta-delta costs at
/// least one bit per element, so past that point neither alternative can
/// win and materialising the set would only burn time on adversarially
/// dense series.
fn adaptive_block_wire(ts: &TsSet, legacy_words: usize) -> Option<AdaptiveWire> {
    let n = ts.len();
    if n == 0 || n >= (legacy_words as u64).saturating_mul(32) {
        return None;
    }
    let values = ts.to_vec();
    // Raw and delta-delta decode through `TsSet::from_sorted`, which
    // re-compacts adjacent series; a set that differs from its compacted
    // form (possible for intersection results) would not round-trip, so
    // it keeps the legacy encoding.
    if TsSet::from_sorted(&values) != *ts {
        return None;
    }
    let dd = bitcodec::encode_delta_delta(&values);
    if values.len() < legacy_words && values.len() <= dd.len() {
        Some(AdaptiveWire::Raw(values))
    } else if dd.len() < legacy_words {
        Some(AdaptiveWire::DeltaDelta(dd))
    } else {
        None
    }
}

impl fmt::Display for TimestampedTrace {
    /// Formats like the paper's Figure 7: `1 -> {1}; 2 -> {2:6}; 6 -> {7}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (b, ts)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{} -> {}", b.as_u32(), ts)?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::trace::trace_of;

    #[test]
    fn forged_length_bomb_is_rejected() {
        // len = 2^30 with a single 2-word range set totalling exactly len:
        // without the cap this would decode and let `to_path_trace`
        // allocate gigabytes.
        let words = vec![1u32 << 30, 1, 1, 2, 1, (-(1i32 << 30)) as u32];
        let mut pos = 0;
        assert_eq!(
            TimestampedTrace::from_words(&words, &mut pos),
            Err(TimestampedTraceError::TooLong(1 << 30))
        );
        // A set reaching past a *plausible* len is rejected by the cap too.
        let words = vec![10u32, 1, 1, 2, 1, (-20i32) as u32];
        let mut pos = 0;
        assert!(matches!(
            TimestampedTrace::from_words(&words, &mut pos),
            Err(TimestampedTraceError::BadTsSet(TsSetError::ExceedsCap { .. }))
        ));
    }

    #[test]
    fn paper_example_mapping() {
        // Trace 1.2.2.2.2.2.6: {1 -> {1}, 2 -> {2..6}, 6 -> {7}}.
        let t = trace_of(&[1, 2, 2, 2, 2, 2, 6]);
        let tt = TimestampedTrace::from_path_trace(&t);
        assert_eq!(tt.to_string(), "1 -> {1}; 2 -> {2:6}; 6 -> {7}");
        assert_eq!(tt.len(), 7);
        assert_eq!(tt.block_count(), 3);
        assert_eq!(tt.to_path_trace(), t);
    }

    #[test]
    fn inversion_round_trip() {
        for ids in [
            &[1u32][..],
            &[1, 2, 3, 4, 5][..],
            &[1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10][..],
            &[5, 5, 5, 5][..],
        ] {
            let t = trace_of(ids);
            let tt = TimestampedTrace::from_path_trace(&t);
            assert_eq!(tt.to_path_trace(), t);
        }
    }

    #[test]
    fn empty_trace() {
        let t = trace_of(&[]);
        let tt = TimestampedTrace::from_path_trace(&t);
        assert!(tt.is_empty());
        assert_eq!(tt.to_path_trace(), t);
    }

    #[test]
    fn serialization_round_trip() {
        let t = trace_of(&[1, 2, 2, 2, 9, 2, 6, 9]);
        let tt = TimestampedTrace::from_path_trace(&t);
        let words = tt.to_words().unwrap();
        assert_eq!(words.len() * 4, tt.byte_size());
        let mut pos = 0;
        let back = TimestampedTrace::from_words(&words, &mut pos).unwrap();
        assert_eq!(pos, words.len());
        assert_eq!(back, tt);
    }

    #[test]
    fn decoding_rejects_non_partition() {
        let t = trace_of(&[1, 2, 3]);
        let tt = TimestampedTrace::from_path_trace(&t);
        let mut words = tt.to_words().unwrap();
        words[0] = 4; // claim an extra position
        let mut pos = 0;
        assert_eq!(
            TimestampedTrace::from_words(&words, &mut pos),
            Err(TimestampedTraceError::NotAPartition)
        );
    }

    #[test]
    fn decoding_rejects_truncation() {
        let t = trace_of(&[1, 2, 3]);
        let tt = TimestampedTrace::from_path_trace(&t);
        let words = tt.to_words().unwrap();
        for cut in 0..words.len() {
            let mut pos = 0;
            assert!(TimestampedTrace::from_words(&words[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn ts_of_and_block_at() {
        let t = trace_of(&[3, 1, 3, 1, 3]);
        let tt = TimestampedTrace::from_path_trace(&t);
        assert_eq!(tt.ts_of(BlockId::new(3)).unwrap().to_vec(), vec![1, 3, 5]);
        assert_eq!(tt.ts_of(BlockId::new(1)).unwrap().to_vec(), vec![2, 4]);
        assert_eq!(tt.ts_of(BlockId::new(9)), None);
        assert_eq!(tt.block_at(4), Some(BlockId::new(1)));
        assert_eq!(tt.block_at(6), None);
    }

    #[test]
    fn adaptive_round_trips_and_never_loses_on_size() {
        let shapes: &[&[u32]] = &[
            &[1],
            &[1, 2, 3, 4, 5],
            &[1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10],
            &[5, 5, 5, 5],
            // Irregular gaps: raw or delta-delta should beat the legacy
            // series encoding, which needs up to 3 words per fragment.
            &[1, 3, 2, 5, 9, 4, 1, 7, 2, 8, 3, 9, 4, 1, 5, 2, 6, 3, 7, 4],
        ];
        for ids in shapes {
            let tt = TimestampedTrace::from_path_trace(&trace_of(ids));
            let legacy = tt.to_words().unwrap();
            let adaptive = tt.to_words_with(Codec::Adaptive).unwrap();
            assert!(
                adaptive.len() <= legacy.len(),
                "adaptive ({}) larger than legacy ({}) for {ids:?}",
                adaptive.len(),
                legacy.len()
            );
            for words in [&legacy, &adaptive] {
                let mut pos = 0;
                let back = TimestampedTrace::from_words(words, &mut pos).unwrap();
                assert_eq!(pos, words.len());
                assert_eq!(&back, &tt);
            }
        }
    }

    #[test]
    fn adaptive_picks_non_legacy_for_irregular_sets() {
        // 17 blocks visited in a hash-scrambled order: each block's
        // timestamps are irregular with small gaps, where legacy pays up
        // to a word per element but a delta-delta block packs each gap
        // into a few bits.
        let ids: Vec<u32> = (0..200u64)
            .map(|i| ((i.wrapping_mul(2_654_435_761) >> 7) % 17 + 1) as u32)
            .collect();
        let tt = TimestampedTrace::from_path_trace(&trace_of(&ids));
        let legacy = tt.to_words().unwrap();
        let adaptive = tt.to_words_with(Codec::Adaptive).unwrap();
        assert!(
            adaptive.len() < legacy.len(),
            "expected a strict win, got adaptive={} legacy={}",
            adaptive.len(),
            legacy.len()
        );
        assert!(
            adaptive.iter().any(|w| w & CODEC_TAG_MASK != 0),
            "no non-legacy tags emitted"
        );
        let mut pos = 0;
        assert_eq!(TimestampedTrace::from_words(&adaptive, &mut pos).unwrap(), tt);
    }

    #[test]
    fn legacy_codec_is_byte_identical_to_untagged_encoder() {
        // `Codec::Legacy` must reproduce the historical stream exactly:
        // all tag bits zero, same words.
        let ids: Vec<u32> = (0..64u32).map(|i| i % 7 + 1).collect();
        let tt = TimestampedTrace::from_path_trace(&trace_of(&ids));
        let words = tt.to_words_with(Codec::Legacy).unwrap();
        assert_eq!(words, tt.to_words().unwrap());
        // Skip the two stream-header words; every per-block count word
        // must carry tag 0. (Walk the stream properly.)
        let mut pos = 2;
        while pos < words.len() {
            pos += 1; // block id
            let tagged = words[pos];
            assert_eq!(tagged & CODEC_TAG_MASK, 0);
            pos += 1 + tagged as usize;
        }
    }

    #[test]
    fn reserved_codec_tag_is_rejected() {
        let t = trace_of(&[1, 2, 3]);
        let tt = TimestampedTrace::from_path_trace(&t);
        let mut words = tt.to_words().unwrap();
        // Words: [len, n_blocks, id, n_words, ...] — tag the first count.
        words[3] |= CODEC_TAG_MASK;
        let mut pos = 0;
        assert_eq!(
            TimestampedTrace::from_words(&words, &mut pos),
            Err(TimestampedTraceError::UnknownCodecTag(3))
        );
    }

    #[test]
    fn raw_codec_rejects_malformed_words() {
        // Hand-built streams: len=3, one block, raw-tagged payloads.
        let raw = |payload: &[u32]| {
            let mut words = vec![3u32, 1, 1, payload.len() as u32 | CODEC_TAG_RAW];
            words.extend_from_slice(payload);
            let mut pos = 0;
            TimestampedTrace::from_words(&words, &mut pos)
        };
        assert_eq!(raw(&[1, 2, 3]).unwrap().len(), 3);
        assert!(matches!(
            raw(&[0, 1, 2]),
            Err(TimestampedTraceError::BadTsSet(TsSetError::BadEntry(0)))
        ));
        assert!(matches!(
            raw(&[2, 1, 3]),
            Err(TimestampedTraceError::BadTsSet(TsSetError::Unordered(1)))
        ));
        assert!(matches!(
            raw(&[1, 2, 4]),
            Err(TimestampedTraceError::BadTsSet(TsSetError::ExceedsCap { value: 4, cap: 3 }))
        ));
        // Duplicate (non-strict) ordering is Unordered too.
        assert!(matches!(
            raw(&[1, 1, 2]),
            Err(TimestampedTraceError::BadTsSet(TsSetError::Unordered(1)))
        ));
    }

    #[test]
    fn dd_codec_decode_is_bounded_and_checked() {
        use crate::bitcodec::encode_delta_delta;
        // A valid delta-delta block decodes…
        let values: Vec<u32> = (1..=20).collect();
        let packed = encode_delta_delta(&values);
        let mut words = vec![20u32, 1, 1, packed.len() as u32 | CODEC_TAG_DD];
        words.extend_from_slice(&packed);
        let mut pos = 0;
        let tt = TimestampedTrace::from_words(&words, &mut pos).unwrap();
        assert_eq!(tt.ts_of(BlockId::new(1)).unwrap().to_vec(), values);
        // …but the same stream under a smaller declared len is rejected
        // (values reach past the cap).
        words[0] = 19;
        let mut pos = 0;
        assert!(matches!(
            TimestampedTrace::from_words(&words, &mut pos),
            Err(TimestampedTraceError::BadBitStream(_))
        ));
        // Truncating the bit stream at every word never panics.
        for cut in 0..words.len() {
            let mut pos = 0;
            assert!(TimestampedTrace::from_words(&words[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn adaptive_truncation_never_panics() {
        let ids: Vec<u32> = (0..100u32).map(|i| (i * 13) % 17 + 1).collect();
        let tt = TimestampedTrace::from_path_trace(&trace_of(&ids));
        let words = tt.to_words_with(Codec::Adaptive).unwrap();
        for cut in 0..words.len() {
            let mut pos = 0;
            assert!(TimestampedTrace::from_words(&words[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn codec_parse_and_as_str_round_trip() {
        assert_eq!(Codec::parse("legacy"), Some(Codec::Legacy));
        assert_eq!(Codec::parse("adaptive"), Some(Codec::Adaptive));
        assert_eq!(Codec::parse("gorilla"), None);
        assert_eq!(Codec::default(), Codec::Legacy);
        for c in [Codec::Legacy, Codec::Adaptive] {
            assert_eq!(Codec::parse(c.as_str()), Some(c));
        }
    }

    #[test]
    fn loop_trace_compacts_to_few_entries() {
        // 1.(2.3)^500.4 — after DBB compaction this would be 1.2^500.4;
        // feed the compacted shape directly.
        let mut ids = vec![1u32];
        ids.extend(std::iter::repeat_n(2, 500));
        ids.push(4);
        let tt = TimestampedTrace::from_path_trace(&trace_of(&ids));
        assert_eq!(tt.total_entries(), 3);
        assert_eq!(tt.byte_size(), (2 + (2 + 1) + (2 + 2) + (2 + 1)) * 4);
    }
}
