//! Path traces: the per-activation block sequences the WPP is partitioned
//! into.

use std::fmt;

use twpp_ir::BlockId;

/// The block sequence executed by one function activation, at that
/// activation's own nesting level (callee blocks belong to the callees'
/// traces; the dynamic call graph links them together).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PathTrace {
    blocks: Vec<BlockId>,
}

impl PathTrace {
    /// Creates an empty path trace.
    pub fn new() -> PathTrace {
        PathTrace::default()
    }

    /// The blocks of the trace, in execution order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of blocks in the trace.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if no blocks were recorded.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Appends a block.
    pub fn push(&mut self, block: BlockId) {
        self.blocks.push(block);
    }

    /// Size in bytes of the uncompacted trace (4 bytes per block id).
    pub fn byte_size(&self) -> usize {
        self.blocks.len() * 4
    }

    /// Iterates over the blocks.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().copied()
    }
}

impl From<Vec<BlockId>> for PathTrace {
    fn from(blocks: Vec<BlockId>) -> PathTrace {
        PathTrace { blocks }
    }
}

impl From<PathTrace> for Vec<BlockId> {
    fn from(trace: PathTrace) -> Vec<BlockId> {
        trace.blocks
    }
}

impl FromIterator<BlockId> for PathTrace {
    fn from_iter<I: IntoIterator<Item = BlockId>>(iter: I) -> PathTrace {
        PathTrace {
            blocks: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for PathTrace {
    /// Formats the trace in the paper's dotted style, e.g. `1.2.3.4`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{}", b.as_u32())?;
        }
        Ok(())
    }
}

/// Builds a path trace from 1-based raw ids; test/readability helper used
/// throughout the workspace.
pub fn trace_of(ids: &[u32]) -> PathTrace {
    ids.iter().map(|&i| BlockId::new(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_dotted_notation() {
        assert_eq!(trace_of(&[1, 2, 7, 8]).to_string(), "1.2.7.8");
        assert_eq!(PathTrace::new().to_string(), "");
    }

    #[test]
    fn byte_size_is_four_per_block() {
        assert_eq!(trace_of(&[1, 2, 3]).byte_size(), 12);
        assert!(PathTrace::new().is_empty());
    }

    #[test]
    fn conversions_round_trip() {
        let t = trace_of(&[5, 6]);
        let v: Vec<BlockId> = t.clone().into();
        assert_eq!(PathTrace::from(v), t);
    }
}
