//! LZW compression (Welch's variation of the Ziv–Lempel adaptive dictionary
//! scheme), used by the paper to compress the dynamic call graph.
//!
//! Variable-width codes from 9 up to [`MAX_CODE_BITS`] bits; when the
//! dictionary fills, a clear code resets it, so arbitrarily long inputs
//! stay adaptive. The format is self-contained: the decoder rebuilds the
//! dictionary from the code stream alone.

#![deny(clippy::unwrap_used)]

use std::error::Error;
use std::fmt;

/// Maximum code width in bits.
pub const MAX_CODE_BITS: u32 = 16;

/// Default decompressed-output cap for [`decompress`] (1 GiB).
///
/// LZW output can grow quadratically in the input size for adversarial
/// streams (each code may expand to a dictionary entry tens of kilobytes
/// long), so every decode path is bounded. Callers that know a tighter
/// bound should use [`decompress_bounded`].
pub const DEFAULT_MAX_OUTPUT: usize = 1 << 30;

const CLEAR_CODE: u32 = 256;
const FIRST_CODE: u32 = 257;

/// Errors produced while decompressing.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum LzwError {
    /// A code referenced a dictionary entry that does not exist yet.
    BadCode(u32),
    /// The bit stream ended inside a code.
    Truncated,
    /// Decompression exceeded the caller's output cap — the stream is
    /// either hostile or destined for a larger budget.
    OutputLimit(usize),
}

impl fmt::Display for LzwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LzwError::BadCode(c) => write!(f, "invalid LZW code {c}"),
            LzwError::Truncated => f.write_str("truncated LZW stream"),
            LzwError::OutputLimit(cap) => {
                write!(f, "LZW output exceeds the {cap}-byte cap")
            }
        }
    }
}

impl Error for LzwError {}

struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u64,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter {
            bytes: Vec::new(),
            bit_pos: 0,
        }
    }

    fn write(&mut self, value: u32, bits: u32) {
        for i in 0..bits {
            let bit = (value >> i) & 1;
            let byte_idx = (self.bit_pos / 8) as usize;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit != 0 {
                self.bytes[byte_idx] |= 1 << (self.bit_pos % 8);
            }
            self.bit_pos += 1;
        }
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, bit_pos: 0 }
    }

    fn read(&mut self, bits: u32) -> Option<u32> {
        if self.bit_pos + bits as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut value = 0u32;
        for i in 0..bits {
            let byte = self.bytes[self.bit_pos / 8];
            let bit = (byte >> (self.bit_pos % 8)) & 1;
            value |= u32::from(bit) << i;
            self.bit_pos += 1;
        }
        Some(value)
    }

    /// Remaining bits, all of which must be padding zeroes at end of stream.
    fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.bit_pos
    }
}

/// Compresses `input` with LZW.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut writer = BitWriter::new();
    if input.is_empty() {
        return writer.bytes;
    }
    // Dictionary: maps (prefix code, next byte) -> code. A hash map keyed
    // on the pair keeps insertion O(1).
    let mut dict: std::collections::HashMap<(u32, u8), u32> = std::collections::HashMap::new();
    let mut next_code = FIRST_CODE;
    let mut code_bits = 9u32;
    let mut current = u32::from(input[0]);
    for &byte in &input[1..] {
        match dict.get(&(current, byte)) {
            Some(&code) => current = code,
            None => {
                writer.write(current, code_bits);
                dict.insert((current, byte), next_code);
                next_code += 1;
                if next_code > (1 << code_bits) && code_bits < MAX_CODE_BITS {
                    code_bits += 1;
                }
                if next_code == (1 << MAX_CODE_BITS) {
                    writer.write(CLEAR_CODE, code_bits);
                    dict.clear();
                    next_code = FIRST_CODE;
                    code_bits = 9;
                }
                current = u32::from(byte);
            }
        }
    }
    writer.write(current, code_bits);
    writer.bytes
}

/// Decompresses an LZW stream produced by [`compress`], capping the output
/// at [`DEFAULT_MAX_OUTPUT`] bytes.
///
/// # Errors
///
/// Returns an [`LzwError`] if the stream is truncated, references
/// impossible codes, or expands past the cap.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, LzwError> {
    decompress_bounded(input, DEFAULT_MAX_OUTPUT)
}

/// Decompresses an LZW stream with a caller-supplied output cap — the
/// bounded-decoding entry point for untrusted input.
///
/// # Errors
///
/// Returns [`LzwError::OutputLimit`] as soon as the decoded output would
/// exceed `max_output` bytes (the partial output is discarded), or any
/// other [`LzwError`] for malformed streams.
pub fn decompress_bounded(input: &[u8], max_output: usize) -> Result<Vec<u8>, LzwError> {
    let mut reader = BitReader::new(input);
    let mut output = Vec::new();
    if input.is_empty() {
        return Ok(output);
    }
    // Dictionary: code -> (prefix code or NONE, final byte). Entries 0..256
    // are implicit single bytes.
    const NONE: u32 = u32::MAX;
    let mut dict: Vec<(u32, u8)> = Vec::new();
    let mut code_bits = 9u32;
    let mut prev: Option<u32> = None;

    let first_byte_of = |dict: &[(u32, u8)], mut code: u32| -> Result<u8, LzwError> {
        loop {
            if code < 256 {
                return Ok(code as u8);
            }
            let idx = (code - FIRST_CODE) as usize;
            let &(prefix, _) = dict.get(idx).ok_or(LzwError::BadCode(code))?;
            if prefix == NONE {
                return Err(LzwError::BadCode(code));
            }
            code = prefix;
        }
    };
    let expand = |dict: &[(u32, u8)], mut code: u32, out: &mut Vec<u8>| -> Result<(), LzwError> {
        let start = out.len();
        loop {
            if code < 256 {
                out.push(code as u8);
                break;
            }
            let idx = (code - FIRST_CODE) as usize;
            let &(prefix, byte) = dict.get(idx).ok_or(LzwError::BadCode(code))?;
            out.push(byte);
            if prefix == NONE {
                return Err(LzwError::BadCode(code));
            }
            code = prefix;
        }
        out[start..].reverse();
        Ok(())
    };

    loop {
        if reader.remaining_bits() < code_bits as usize {
            // Any leftover bits must be zero padding.
            return Ok(output);
        }
        let code = reader.read(code_bits).ok_or(LzwError::Truncated)?;
        if code == CLEAR_CODE {
            dict.clear();
            code_bits = 9;
            prev = None;
            continue;
        }
        let next_code = FIRST_CODE + dict.len() as u32;
        match prev {
            None => {
                if code >= 256 {
                    return Err(LzwError::BadCode(code));
                }
                output.push(code as u8);
            }
            Some(p) => {
                if code < next_code {
                    // Known code: emit it, then record p + first(code).
                    let first = first_byte_of(&dict, code)?;
                    expand(&dict, code, &mut output)?;
                    dict.push((p, first));
                } else if code == next_code {
                    // The classic KwKwK case.
                    let first = first_byte_of(&dict, p)?;
                    dict.push((p, first));
                    expand(&dict, code, &mut output)?;
                } else {
                    return Err(LzwError::BadCode(code));
                }
                let defined = FIRST_CODE + dict.len() as u32;
                if defined + 1 > (1 << code_bits) && code_bits < MAX_CODE_BITS {
                    code_bits += 1;
                }
                if defined == (1 << MAX_CODE_BITS) {
                    // Encoder emitted a clear code right after this point.
                    // It is read on the next iteration.
                }
            }
        }
        if output.len() > max_output {
            return Err(LzwError::OutputLimit(max_output));
        }
        prev = Some(code);
    }
}

/// Convenience: compressed size of `input` in bytes.
pub fn compressed_size(input: &[u8]) -> usize {
    compress(input).len()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data, "round trip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"aaa");
    }

    #[test]
    fn repetitive_input_compresses() {
        let data: Vec<u8> = b"abcabcabcabc".iter().copied().cycle().take(10_000).collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn kwkwk_case() {
        // "abababab..." exercises the code == next_code path.
        let data: Vec<u8> = std::iter::repeat_n([b'a', b'b'], 500)
            .flatten()
            .collect();
        round_trip(&data);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5_000).collect();
        round_trip(&data);
    }

    #[test]
    fn long_input_with_dictionary_reset() {
        // Enough distinct digrams to overflow the 16-bit dictionary.
        let mut data = Vec::new();
        let mut x: u32 = 12345;
        for _ in 0..600_000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            data.push((x >> 16) as u8);
        }
        round_trip(&data);
    }

    #[test]
    fn truncated_stream_is_rejected_or_prefix() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog"
            .iter()
            .copied()
            .cycle()
            .take(2_000)
            .collect();
        let c = compress(&data);
        // Cutting the stream must never panic; it either errors or yields a
        // prefix of the original.
        for cut in 0..c.len() {
            if let Ok(d) = decompress(&c[..cut]) { assert!(data.starts_with(&d)) }
        }
    }

    #[test]
    fn output_cap_is_enforced() {
        let data: Vec<u8> = b"abcabcabc".iter().copied().cycle().take(10_000).collect();
        let c = compress(&data);
        // Exact size passes; one byte less trips the cap.
        assert_eq!(decompress_bounded(&c, data.len()).unwrap(), data);
        assert_eq!(
            decompress_bounded(&c, data.len() - 1),
            Err(LzwError::OutputLimit(data.len() - 1))
        );
    }

    #[test]
    fn structured_words_compress_like_a_dcg() {
        // A DCG serialization is a u32 stream with heavy repetition; check
        // LZW gets a real factor on that shape.
        let mut words: Vec<u32> = Vec::new();
        for i in 0..20_000u32 {
            words.extend_from_slice(&[i % 7, i % 3, 2, 0]);
        }
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let c = compress(&bytes);
        assert!(c.len() * 5 < bytes.len());
        assert_eq!(decompress(&c).unwrap(), bytes);
    }
}
