//! **twpp-obs** — zero-dependency observability for the whole pipeline.
//!
//! Production-scale trace processing needs the same discipline the paper
//! applies to traces themselves: metadata about a run is as valuable as
//! the run. This module provides three layers, all std-only:
//!
//! * a **span tracer** — hierarchical wall-clock spans recorded through an
//!   [`Obs`] handle ([`Obs::span`] / [`Obs::span_on`]), buffered per
//!   thread and merged deterministically, exportable as Chrome
//!   trace-event JSON ([`Obs::chrome_trace_json`], loadable in
//!   `chrome://tracing` or Perfetto);
//! * a **metrics registry** — named counters, gauges and fixed-bucket
//!   histograms ([`Obs::counter`] / [`Obs::gauge`] / [`Obs::histogram`])
//!   with Prometheus text exposition ([`Obs::prometheus_text`]) and a
//!   JSON form ([`Obs::metrics_json`]);
//! * a **[`RunReport`]** — one serializable struct unifying
//!   [`PipelineStats`](crate::pipeline::PipelineStats), stage timings,
//!   worker reports, degradation, budget usage and the metric snapshot,
//!   with a stable documented JSON schema (DESIGN.md §13) and a
//!   validator ([`validate_report_json`]) behind `twpp report-check`.
//!
//! Design constraints:
//!
//! * **No globals.** An [`Obs`] is passed in exactly like
//!   [`gov::Budget`](crate::gov::Budget): resolved once at pipeline
//!   entry, threaded by reference. Library code never consults the
//!   environment or a process-wide registry.
//! * **Near-zero cost when disabled.** [`Obs::noop`] allocates nothing
//!   (no `Arc`, no buffers); every instrumentation call is a single
//!   branch on a `bool`. The `tests/obs.rs` overhead guard asserts a
//!   noop-sink compact run is byte-identical to the uninstrumented
//!   pipeline for 1..=8 threads.
//! * **Allocation-light when enabled.** Span names are `&'static str`,
//!   metric handles are registered once and then cost one atomic op,
//!   and worker spans are timestamps folded in at join time.
//! * **Deterministic exports.** Metrics serialize in name order; spans
//!   serialize sorted by `(start, tid, name)`; JSON keys are emitted in
//!   a fixed documented order, so golden-file tests can compare bytes.
//!
//! Metric naming convention: `twpp_<crate>_<name>`, e.g.
//! `twpp_core_events_total`, `twpp_dataflow_query_nodes_visited_total`.

#![deny(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// The JSON schema version of [`RunReport::to_json`]. Bumped on any
/// breaking change to the report layout; `twpp report-check` refuses
/// reports from other versions.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Span records
// ---------------------------------------------------------------------------

/// One completed span: a named wall-clock interval attributed to a
/// logical thread (`tid` 0 is the calling thread; worker pools use
/// `worker index + 1`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// Span name (stage or operation).
    pub name: &'static str,
    /// Logical thread id (0 = orchestrating thread, n = worker n-1).
    pub tid: u32,
    /// Start offset in nanoseconds from the observer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// RAII guard returned by [`Obs::span`]: records the span on drop.
/// For a noop observer the guard is inert.
pub struct SpanGuard<'a> {
    obs: Option<&'a ObsInner>,
    name: &'static str,
    tid: u32,
    start_ns: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.obs {
            let end = inner.now_ns();
            inner.push_span(SpanRecord {
                name: self.name,
                tid: self.tid,
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter handle. Cloning shares the
/// underlying cell; a handle from a noop [`Obs`] is inert.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An inert counter (what a noop observer hands out).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a noop handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle: a value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// An inert gauge.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `v` (may be negative).
    pub fn add(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a noop handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bucket bounds, strictly increasing. An implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramInner>>);

impl Histogram {
    /// An inert histogram.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            let idx = h
                .bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(h.bounds.len());
            h.counts[idx].fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total observations (0 for a noop handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// The sampled value of one registered metric.
#[derive(Clone, PartialEq, Debug)]
pub enum SampleValue {
    /// A counter value.
    Counter(u64),
    /// A gauge value.
    Gauge(i64),
    /// A histogram: cumulative bucket counts per bound (plus `+Inf`),
    /// sum and count.
    Histogram {
        /// Upper bucket bounds (the `+Inf` bucket is implicit).
        bounds: Vec<u64>,
        /// Per-bucket (non-cumulative) counts; `len == bounds.len() + 1`.
        counts: Vec<u64>,
        /// Sum of all observed values.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One metric in a snapshot: name, help text, sampled value.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricSample {
    /// Metric name (`twpp_<crate>_<name>` convention).
    pub name: String,
    /// Help text for the Prometheus `# HELP` line.
    pub help: String,
    /// The sampled value.
    pub value: SampleValue,
}

/// A point-in-time snapshot of every registered metric, sorted by name.
/// The unit all exports ([`MetricsSnapshot::prometheus_text`],
/// [`MetricsSnapshot::to_json`]) and the [`RunReport`] consume.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsSnapshot {
    /// Samples in ascending name order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// The sample named `name`, if registered.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Prometheus text exposition format (version 0.0.4): `# HELP` /
    /// `# TYPE` preamble plus one value line per series, metrics in
    /// name order, HELP text escaped per the exposition spec.
    /// Deterministic for a given snapshot.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let _ = writeln!(out, "# HELP {} {}", s.name, escape_prometheus_help(&s.help));
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {} counter", s.name);
                    let _ = writeln!(out, "{} {}", s.name, v);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {} gauge", s.name);
                    let _ = writeln!(out, "{} {}", s.name, v);
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let _ = writeln!(out, "# TYPE {} histogram", s.name);
                    let mut cumulative = 0u64;
                    for (i, b) in bounds.iter().enumerate() {
                        cumulative += counts.get(i).copied().unwrap_or(0);
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {}",
                            s.name, b, cumulative
                        );
                    }
                    cumulative += counts.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", s.name, cumulative);
                    let _ = writeln!(out, "{}_sum {}", s.name, sum);
                    let _ = writeln!(out, "{}_count {}", s.name, count);
                }
            }
        }
        out
    }

    /// JSON form: one object keyed by metric name, each value an object
    /// with `type`, `help` and the sampled fields, keys in name order.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        for s in &self.samples {
            w.key(&s.name);
            w.begin_object();
            match &s.value {
                SampleValue::Counter(v) => {
                    w.key("type");
                    w.string("counter");
                    w.key("value");
                    w.uint(*v);
                }
                SampleValue::Gauge(v) => {
                    w.key("type");
                    w.string("gauge");
                    w.key("value");
                    w.int(*v);
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    w.key("type");
                    w.string("histogram");
                    w.key("bounds");
                    w.begin_array();
                    for b in bounds {
                        w.uint(*b);
                    }
                    w.end_array();
                    w.key("counts");
                    w.begin_array();
                    for c in counts {
                        w.uint(*c);
                    }
                    w.end_array();
                    w.key("sum");
                    w.uint(*sum);
                    w.key("count");
                    w.uint(*count);
                }
            }
            w.key("help");
            w.string(&s.help);
            w.end_object();
        }
        w.end_object();
    }
}

/// Escapes a `# HELP` line per the Prometheus text exposition format:
/// `\` becomes `\\` and a newline becomes `\n`.
pub fn escape_prometheus_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a label *value* per the Prometheus text exposition format:
/// `\`, `"` and newline become `\\`, `\"` and `\n`.
pub fn escape_prometheus_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Whether `name` is a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One metric family parsed from Prometheus exposition text.
#[derive(Clone, PartialEq, Debug)]
pub struct PromFamily {
    /// The family name (`_bucket`/`_sum`/`_count` suffixes stripped for
    /// histograms).
    pub name: String,
    /// The `# TYPE` (`counter`, `gauge` or `histogram`).
    pub kind: String,
    /// Sample lines: `(series name, label text or empty, value)`.
    pub samples: Vec<(String, String, f64)>,
}

/// A **strict** parser for the subset of the Prometheus text exposition
/// format this crate emits, used by tests and CI to validate live
/// `/metrics` scrapes. Enforced, beyond syntactic well-formedness:
///
/// * every sample belongs to a family announced by `# HELP` then
///   `# TYPE` (in that order), with a legal metric name and a known
///   type;
/// * family names are unique and strictly ascending (the registry
///   snapshots in name order);
/// * histogram families carry a complete series set: cumulative
///   monotone `_bucket` lines ending in `le="+Inf"`, plus `_sum` and
///   `_count`, with `_count` equal to the `+Inf` bucket;
/// * every value parses as a number; no garbage or orphan lines.
///
/// # Errors
///
/// The first violated constraint, naming the (1-based) line.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromFamily>, String> {
    let mut families: Vec<PromFamily> = Vec::new();
    // The family currently being declared: set by HELP, typed by TYPE.
    let mut pending_help: Option<String> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest
                .split_once(' ')
                .ok_or(format!("line {lineno}: HELP without help text"))?;
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: invalid metric name {name:?}"));
            }
            if let Some(last) = families.last() {
                if name <= last.name.as_str() {
                    return Err(format!(
                        "line {lineno}: family {name:?} out of order after {:?}",
                        last.name
                    ));
                }
            }
            if pending_help.is_some() {
                return Err(format!("line {lineno}: HELP for {name:?} before TYPE of previous family"));
            }
            pending_help = Some(name.to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or(format!("line {lineno}: TYPE without a type"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown type {kind:?}"));
            }
            match pending_help.take() {
                Some(h) if h == name => {}
                Some(h) => {
                    return Err(format!(
                        "line {lineno}: TYPE names {name:?} but HELP named {h:?}"
                    ))
                }
                None => return Err(format!("line {lineno}: TYPE {name:?} without preceding HELP")),
            }
            families.push(PromFamily {
                name: name.to_owned(),
                kind: kind.to_owned(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: unknown comment directive"));
        }
        // A sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: sample line without a value"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse()
                .map_err(|_| format!("line {lineno}: unparsable value {v:?}"))?,
        };
        let (series_name, labels) = match series.split_once('{') {
            None => (series, ""),
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or(format!("line {lineno}: unterminated label set"))?;
                (n, labels)
            }
        };
        if !valid_metric_name(series_name) {
            return Err(format!("line {lineno}: invalid series name {series_name:?}"));
        }
        let family = families
            .last_mut()
            .ok_or(format!("line {lineno}: sample before any HELP/TYPE"))?;
        let belongs = if family.kind == "histogram" {
            series_name
                .strip_prefix(family.name.as_str())
                .is_some_and(|suffix| matches!(suffix, "_bucket" | "_sum" | "_count"))
        } else {
            series_name == family.name
        };
        if !belongs {
            return Err(format!(
                "line {lineno}: series {series_name:?} does not belong to family {:?}",
                family.name
            ));
        }
        family
            .samples
            .push((series_name.to_owned(), labels.to_owned(), value));
    }
    if let Some(h) = pending_help {
        return Err(format!("HELP {h:?} at end of input without TYPE"));
    }
    for family in &families {
        validate_family(family)?;
    }
    Ok(families)
}

fn validate_family(family: &PromFamily) -> Result<(), String> {
    let name = &family.name;
    if family.kind != "histogram" {
        if family.samples.len() != 1 {
            return Err(format!(
                "{name}: {} must have exactly one sample, found {}",
                family.kind,
                family.samples.len()
            ));
        }
        return Ok(());
    }
    let mut buckets: Vec<(&str, f64)> = Vec::new();
    let mut sum = None;
    let mut count = None;
    for (series, labels, value) in &family.samples {
        match series.strip_prefix(name.as_str()) {
            Some("_bucket") => {
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or(format!("{name}: _bucket without an le label: {labels:?}"))?;
                buckets.push((le, *value));
            }
            Some("_sum") => sum = Some(*value),
            Some("_count") => count = Some(*value),
            _ => return Err(format!("{name}: unexpected series {series:?}")),
        }
    }
    if buckets.is_empty() {
        return Err(format!("{name}: histogram without _bucket lines"));
    }
    let (last_le, inf_count) = buckets[buckets.len() - 1];
    if last_le != "+Inf" {
        return Err(format!("{name}: final bucket must be le=\"+Inf\", found le={last_le:?}"));
    }
    let mut prev_le = f64::NEG_INFINITY;
    let mut prev_count = 0.0f64;
    for (le, bucket_count) in &buckets {
        let bound = if *le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse::<f64>()
                .map_err(|_| format!("{name}: unparsable le bound {le:?}"))?
        };
        if bound <= prev_le {
            return Err(format!("{name}: bucket bounds not strictly increasing at le={le:?}"));
        }
        if *bucket_count < prev_count {
            return Err(format!("{name}: bucket counts not cumulative at le={le:?}"));
        }
        prev_le = bound;
        prev_count = *bucket_count;
    }
    let sum = sum.ok_or(format!("{name}: histogram missing _sum"))?;
    let count = count.ok_or(format!("{name}: histogram missing _count"))?;
    if count != inf_count {
        return Err(format!(
            "{name}: _count {count} does not equal the +Inf bucket {inf_count}"
        ));
    }
    if count == 0.0 && sum != 0.0 {
        return Err(format!("{name}: empty histogram with non-zero _sum"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The Obs handle
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum MetricCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramInner>),
}

#[derive(Debug)]
struct MetricEntry {
    help: &'static str,
    cell: MetricCell,
}

#[derive(Debug)]
struct ObsInner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: Mutex<BTreeMap<&'static str, MetricEntry>>,
}

impl ObsInner {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push_span(&self, rec: SpanRecord) {
        lock(&self.spans).push(rec);
    }
}

/// Recovers a mutex guard even if another thread panicked while holding
/// it — observability must never poison the pipeline.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The observability handle threaded through the pipeline, mirroring how
/// [`gov::Budget`](crate::gov::Budget) is passed in. Cloning is cheap and
/// all clones record into the same buffers.
///
/// [`Obs::noop`] (the [`Default`]) allocates nothing and reduces every
/// instrumentation call to one branch; [`Obs::collecting`] records spans
/// and metrics for export.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The disabled observer: no allocation, every call is one branch.
    pub fn noop() -> Obs {
        Obs { inner: None }
    }

    /// An enabled observer collecting spans and metrics.
    pub fn collecting() -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                metrics: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether this observer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since this observer's epoch (0 when disabled). Used
    /// by worker pools that fold span timestamps in at join time.
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.now_ns())
    }

    /// Opens a span named `name` on the orchestrating thread (tid 0).
    /// The span is recorded when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_on(name, 0)
    }

    /// Opens a span attributed to logical thread `tid` (worker pools use
    /// `worker index + 1`).
    pub fn span_on(&self, name: &'static str, tid: u32) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard {
                obs: None,
                name,
                tid,
                start_ns: 0,
            },
            Some(inner) => SpanGuard {
                obs: Some(inner),
                name,
                tid,
                start_ns: inner.now_ns(),
            },
        }
    }

    /// Records an already-measured span. Worker pools call this at join
    /// time, in worker order, so per-thread buffers merge
    /// deterministically; tests use it to build golden traces.
    pub fn record_span(&self, name: &'static str, tid: u32, start_ns: u64, dur_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.push_span(SpanRecord {
                name,
                tid,
                start_ns,
                dur_ns,
            });
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| lock(&i.spans).len())
    }

    /// Registers (or retrieves) the counter `name`. Registration takes a
    /// lock; the returned handle is lock-free. Names should follow the
    /// `twpp_<crate>_<name>` convention.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let mut metrics = lock(&inner.metrics);
        let entry = metrics.entry(name).or_insert_with(|| MetricEntry {
            help,
            cell: MetricCell::Counter(Arc::new(AtomicU64::new(0))),
        });
        match &entry.cell {
            MetricCell::Counter(c) => Counter(Some(c.clone())),
            _ => Counter::noop(), // name already registered with another kind
        }
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let mut metrics = lock(&inner.metrics);
        let entry = metrics.entry(name).or_insert_with(|| MetricEntry {
            help,
            cell: MetricCell::Gauge(Arc::new(AtomicI64::new(0))),
        });
        match &entry.cell {
            MetricCell::Gauge(g) => Gauge(Some(g.clone())),
            _ => Gauge::noop(),
        }
    }

    /// Registers (or retrieves) the fixed-bucket histogram `name` with
    /// the given strictly-increasing upper `bounds` (an implicit `+Inf`
    /// bucket is appended).
    pub fn histogram(&self, name: &'static str, help: &'static str, bounds: &[u64]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let mut metrics = lock(&inner.metrics);
        let entry = metrics.entry(name).or_insert_with(|| MetricEntry {
            help,
            cell: MetricCell::Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })),
        });
        match &entry.cell {
            MetricCell::Histogram(h) => Histogram(Some(h.clone())),
            _ => Histogram::noop(),
        }
    }

    /// Samples every registered metric, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let metrics = lock(&inner.metrics);
        let samples = metrics
            .iter()
            .map(|(name, e)| MetricSample {
                name: (*name).to_owned(),
                help: e.help.to_owned(),
                value: match &e.cell {
                    MetricCell::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    MetricCell::Gauge(g) => SampleValue::Gauge(g.load(Ordering::Relaxed)),
                    MetricCell::Histogram(h) => SampleValue::Histogram {
                        bounds: h.bounds.clone(),
                        counts: h
                            .counts
                            .iter()
                            .map(|c| c.load(Ordering::Relaxed))
                            .collect(),
                        sum: h.sum.load(Ordering::Relaxed),
                        count: h.count.load(Ordering::Relaxed),
                    },
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// All recorded spans, sorted by `(start, tid, name)` — the
    /// deterministic merge order of the per-thread buffers.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut spans = lock(&inner.spans).clone();
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(a.tid.cmp(&b.tid))
                .then(a.name.cmp(b.name))
        });
        spans
    }

    /// Chrome trace-event JSON (the `chrome://tracing` / Perfetto
    /// format): complete (`"ph":"X"`) events with microsecond
    /// timestamps, fields in a fixed order, spans in deterministic
    /// merge order.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.spans();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("displayTimeUnit");
        w.string("ms");
        w.key("traceEvents");
        w.begin_array();
        for s in &spans {
            w.begin_object();
            w.key("name");
            w.string(s.name);
            w.key("cat");
            w.string("twpp");
            w.key("ph");
            w.string("X");
            w.key("ts");
            w.raw(&format_us(s.start_ns));
            w.key("dur");
            w.raw(&format_us(s.dur_ns));
            w.key("pid");
            w.uint(1);
            w.key("tid");
            w.uint(u64::from(s.tid));
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Prometheus text exposition of the current metric snapshot.
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }

    /// JSON form of the current metric snapshot.
    pub fn metrics_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// Nanoseconds rendered as microseconds with fixed 3-decimal precision
/// (the Chrome trace-event unit).
fn format_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

// ---------------------------------------------------------------------------
// Sliding-window rate estimator
// ---------------------------------------------------------------------------

/// A sliding-window events-per-second estimator for long-lived daemons.
///
/// Counts are bucketed into `buckets` slots of `bucket_ms` each; the
/// rate is the sum over the most recent full window divided by its
/// span. Recording is lock-free (one atomic add, plus one stamp CAS
/// when a slot is recycled), so it can sit on the daemon's hot feed
/// path. Precision is deliberately coarse: a slot that straddles a
/// concurrent recycle may drop a sample, which for an operational
/// gauge is the right trade.
#[derive(Debug)]
pub struct RateEstimator {
    epoch: Instant,
    bucket_ms: u64,
    /// Per-slot count and the window index it belongs to. A slot whose
    /// stamp is older than the current window is logically empty.
    counts: Vec<AtomicU64>,
    stamps: Vec<AtomicU64>,
}

impl RateEstimator {
    /// An estimator over `buckets` slots of `bucket_ms` milliseconds
    /// each (both clamped to at least 1). The default daemon
    /// configuration is ten one-second buckets.
    pub fn new(buckets: usize, bucket_ms: u64) -> RateEstimator {
        let buckets = buckets.max(1);
        RateEstimator {
            epoch: Instant::now(),
            bucket_ms: bucket_ms.max(1),
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            stamps: (0..buckets).map(|_| AtomicU64::new(u64::MAX)).collect(),
        }
    }

    /// The default daemon configuration: a 10-second window of
    /// one-second buckets.
    pub fn per_second_window() -> RateEstimator {
        RateEstimator::new(10, 1000)
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Records `n` events now.
    pub fn record(&self, n: u64) {
        self.record_at_ms(self.now_ms(), n);
    }

    /// Events per second over the trailing window.
    pub fn per_second(&self) -> f64 {
        self.rate_at_ms(self.now_ms())
    }

    /// Deterministic core of [`RateEstimator::record`], driven by an
    /// explicit clock for tests.
    pub fn record_at_ms(&self, now_ms: u64, n: u64) {
        let idx = now_ms / self.bucket_ms;
        let slot = (idx as usize) % self.counts.len();
        let stamp = self.stamps[slot].load(Ordering::Acquire);
        if stamp != idx {
            // Recycle the slot for the new window index. Exactly one
            // racer wins the CAS and zeroes the count; losers just add
            // into the freshly-stamped slot.
            if self.stamps[slot]
                .compare_exchange(stamp, idx, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.counts[slot].store(0, Ordering::Release);
            }
        }
        self.counts[slot].fetch_add(n, Ordering::Relaxed);
    }

    /// Deterministic core of [`RateEstimator::per_second`].
    pub fn rate_at_ms(&self, now_ms: u64) -> f64 {
        let idx = now_ms / self.bucket_ms;
        let window = self.counts.len() as u64;
        let mut total = 0u64;
        for slot in 0..self.counts.len() {
            let stamp = self.stamps[slot].load(Ordering::Acquire);
            // Count only slots inside the trailing window (including
            // the currently-filling bucket).
            if stamp != u64::MAX && stamp <= idx && idx - stamp < window {
                total += self.counts[slot].load(Ordering::Relaxed);
            }
        }
        // The observable span: full window once warmed up, else the
        // time actually elapsed (so early rates are not diluted).
        let span_ms = (window * self.bucket_ms).min(now_ms.max(self.bucket_ms));
        total as f64 * 1000.0 / span_ms as f64
    }
}

// ---------------------------------------------------------------------------
// Leveled structured JSONL logger
// ---------------------------------------------------------------------------

/// Log severity, ordered. A [`Logger`] drops records below its
/// configured minimum.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LogLevel {
    /// Verbose diagnostics.
    Debug,
    /// Normal operational events.
    Info,
    /// Something degraded but the daemon continues.
    Warn,
    /// A failure that cost work (a failed source, an aborted run).
    Error,
}

impl LogLevel {
    /// Stable lowercase form used in log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

#[derive(Debug)]
struct LoggerInner {
    path: std::path::PathBuf,
    max_bytes: u64,
    min_level: LogLevel,
    state: Mutex<LoggerState>,
}

#[derive(Debug)]
struct LoggerState {
    file: Option<std::fs::File>,
    written: u64,
}

/// A leveled structured logger writing one JSON object per line
/// (JSONL), with size-based rotation to a single `.1` sibling. The
/// noop logger (the [`Default`]) allocates nothing and reduces every
/// call to one branch — exactly the [`Obs`] discipline. Logging
/// failures are swallowed: observability must never take down the
/// daemon it observes.
///
/// Line grammar (DESIGN.md §18):
///
/// ```text
/// {"ts_ms":<unix millis>,"level":"info","msg":"...","k":"v",...}
/// ```
#[derive(Clone, Debug, Default)]
pub struct Logger {
    inner: Option<Arc<LoggerInner>>,
}

impl Logger {
    /// The disabled logger.
    pub fn noop() -> Logger {
        Logger { inner: None }
    }

    /// A logger appending to `path`, rotating to `<path>.1` once the
    /// active file passes `max_bytes` (0 means never rotate). Records
    /// below `min_level` are dropped.
    ///
    /// # Errors
    ///
    /// Opening (or creating) `path` failed.
    pub fn to_file(
        path: &std::path::Path,
        max_bytes: u64,
        min_level: LogLevel,
    ) -> std::io::Result<Logger> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(Logger {
            inner: Some(Arc::new(LoggerInner {
                path: path.to_path_buf(),
                max_bytes,
                min_level,
                state: Mutex::new(LoggerState { file: Some(file), written }),
            })),
        })
    }

    /// Whether this logger writes anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Writes one structured record: `msg` plus the given string
    /// fields, in call order, after the fixed `ts_ms`/`level`/`msg`
    /// prefix. Dropped when below the logger's minimum level.
    pub fn log(&self, level: LogLevel, msg: &str, fields: &[(&str, &str)]) {
        let Some(inner) = &self.inner else { return };
        if level < inner.min_level {
            return;
        }
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("ts_ms");
        w.uint(unix_time_ms());
        w.key("level");
        w.string(level.as_str());
        w.key("msg");
        w.string(msg);
        for (k, v) in fields {
            w.key(k);
            w.string(v);
        }
        w.end_object();
        let mut line = w.finish();
        line.push('\n');

        use std::io::Write as _;
        let mut state = lock(&inner.state);
        if inner.max_bytes > 0 && state.written + line.len() as u64 > inner.max_bytes {
            // Rotate: close, shift to the .1 sibling, reopen fresh.
            state.file = None;
            let mut rotated = inner.path.as_os_str().to_owned();
            rotated.push(".1");
            let _ = std::fs::rename(&inner.path, std::path::Path::new(&rotated));
            state.written = 0;
            state.file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&inner.path)
                .ok();
        }
        if let Some(f) = state.file.as_mut() {
            if f.write_all(line.as_bytes()).is_ok() {
                state.written += line.len() as u64;
            }
        }
    }

    /// [`LogLevel::Debug`] shorthand.
    pub fn debug(&self, msg: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Debug, msg, fields);
    }

    /// [`LogLevel::Info`] shorthand.
    pub fn info(&self, msg: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Info, msg, fields);
    }

    /// [`LogLevel::Warn`] shorthand.
    pub fn warn(&self, msg: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Warn, msg, fields);
    }

    /// [`LogLevel::Error`] shorthand.
    pub fn error(&self, msg: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Error, msg, fields);
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_time_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One record in the [`FlightRecorder`] ring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlightRecord {
    /// Global sequence number (monotone across the recorder).
    pub seq: u64,
    /// Unix milliseconds when the record was written.
    pub ts_ms: u64,
    /// The source (or subsystem) the operation belongs to.
    pub source: String,
    /// The operation kind (`feed`, `seal`, `busy`, `failed`, …).
    pub op: &'static str,
    /// Free-form detail (offsets, error text).
    pub detail: String,
}

/// A fixed-capacity ring of the most recent operations, kept cheap
/// enough to run always-on in the daemon and dumped to
/// `<dir>/flightrec-<ts>.json` when a source fails or the process
/// aborts — the post-mortem of a kill-point crash carries the last N
/// operations that led up to it.
///
/// Writers never block: the sequence number is one atomic add and each
/// slot is guarded by a `try_lock` — a writer that loses a slot race
/// simply drops that record (the competing record is an equally-recent
/// neighbour). Readers ([`FlightRecorder::dump_json`]) snapshot the
/// slots and sort by sequence.
#[derive(Debug)]
pub struct FlightRecorder {
    seq: AtomicU64,
    slots: Vec<Mutex<Option<FlightRecord>>>,
}

impl FlightRecorder {
    /// A recorder holding the `capacity` most recent records (clamped
    /// to at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            seq: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Appends one record, overwriting the oldest once the ring is
    /// full. Never blocks; under slot contention the record is
    /// dropped.
    pub fn record(&self, source: &str, op: &'static str, detail: String) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = (seq as usize) % self.slots.len();
        if let Ok(mut guard) = self.slots[slot].try_lock() {
            *guard = Some(FlightRecord {
                seq,
                ts_ms: unix_time_ms(),
                source: source.to_owned(),
                op,
                detail,
            });
        }
    }

    /// Records written so far (including any dropped under contention
    /// or overwritten by ring wrap).
    pub fn records_written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The surviving records, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.try_lock().ok().and_then(|g| g.clone()))
            .collect();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// The dump document: `{"flightrec_version":1,"records":[...]}`,
    /// records oldest first.
    pub fn dump_json(&self) -> String {
        let records = self.snapshot();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("flightrec_version");
        w.uint(1);
        w.key("records_written");
        w.uint(self.records_written());
        w.key("records");
        w.begin_array();
        for r in &records {
            w.begin_object();
            w.key("seq");
            w.uint(r.seq);
            w.key("ts_ms");
            w.uint(r.ts_ms);
            w.key("source");
            w.string(&r.source);
            w.key("op");
            w.string(r.op);
            w.key("detail");
            w.string(&r.detail);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Writes the dump to `dir/flightrec-<unix millis>.json` and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Creating `dir` or writing the file failed.
    pub fn dump_to_dir(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flightrec-{}.json", unix_time_ms()));
        std::fs::write(&path, self.dump_json())?;
        Ok(path)
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON writer (stable key order is the caller's responsibility)
// ---------------------------------------------------------------------------

/// A tiny streaming JSON writer with explicit structure calls. Emits
/// compact JSON; key order is exactly call order, which is what makes
/// the exports golden-testable.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
    }

    /// Closes an object (`}`).
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.buf.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
    }

    /// Closes an array (`]`).
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.buf.push(']');
    }

    /// Writes an object key. Must be followed by exactly one value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.push_escaped(k);
        self.buf.push(':');
        // The following value must not add its own comma.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.push_escaped(s);
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Writes a signed integer value.
    pub fn int(&mut self, v: i64) {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.pre_value();
        self.buf.push_str("null");
    }

    /// Writes a finite float with up to 6 decimals (trailing zeros kept
    /// for stability). Non-finite values serialize as `null` (JSON has
    /// no `Inf`/`NaN`).
    pub fn float(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.6}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Writes a pre-rendered JSON number token verbatim.
    pub fn raw(&mut self, token: &str) {
        self.pre_value();
        self.buf.push_str(token);
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// The rendered JSON text.
    pub fn finish(self) -> String {
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (for report validation and golden tests)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects use a [`BTreeMap`] so iteration is
/// deterministic; numbers are `f64` (every value the exports emit is
/// exactly representable or only used for presence checks).
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `k` of an object, if this is an object containing it.
    pub fn get(&self, k: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(k),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a JSON document. Strict enough for the formats this crate
/// emits: full escape handling, exponents, nested containers; rejects
/// trailing garbage.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the first error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".to_owned());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key is not a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'"' => parse_string(b, pos).map(Json::Str),
        b't' => expect_word(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect_word(b, pos, "false").map(|()| Json::Bool(false)),
        b'n' => expect_word(b, pos, "null").map(|()| Json::Null),
        _ => parse_number(b, pos),
    }
}

fn expect_word(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err("unterminated escape".to_owned());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "bad \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control character at byte {pos}")),
            c => {
                // Re-decode UTF-8 multi-byte sequences.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let mut end = *pos;
                    while end < b.len() && (b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&b[start..end])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    out.push_str(s);
                    *pos = end;
                }
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_owned())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

/// How a reported run ended.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum RunOutcome {
    /// The command completed fully.
    Complete,
    /// The command produced a valid but partial/degraded result
    /// (exit code 3 in the CLI).
    Degraded,
    /// A resource budget stopped the run before completion; nothing
    /// partial was written.
    Stopped,
    /// The input was damaged (fsck found unsalvageable regions).
    Damaged,
    /// A long-lived daemon is still serving; periodic in-flight
    /// report, not a final one.
    Running,
}

impl RunOutcome {
    /// Stable string form used in the JSON schema.
    pub fn as_str(self) -> &'static str {
        match self {
            RunOutcome::Complete => "complete",
            RunOutcome::Degraded => "degraded",
            RunOutcome::Stopped => "stopped",
            RunOutcome::Damaged => "damaged",
            RunOutcome::Running => "running",
        }
    }
}

/// The pipeline section of a [`RunReport`]: sizes, factors, stage
/// timings, worker utilisation and degraded functions, rebased from
/// [`PipelineStats`](crate::pipeline::PipelineStats).
#[derive(Clone, PartialEq, Debug)]
pub struct PipelineSection {
    /// Raw WPP total bytes.
    pub raw_total_bytes: u64,
    /// Raw DCG (enter/exit) bytes.
    pub raw_dcg_bytes: u64,
    /// Raw trace (block event) bytes.
    pub raw_trace_bytes: u64,
    /// Trace bytes after redundant-trace elimination.
    pub after_dedup_bytes: u64,
    /// Trace bytes after DBB dictionary creation.
    pub after_dict_bytes: u64,
    /// Compacted TWPP trace bytes.
    pub ctwpp_trace_bytes: u64,
    /// Serialized dictionary bytes.
    pub dict_bytes: u64,
    /// LZW-compressed DCG bytes.
    pub dcg_compressed_bytes: u64,
    /// Total compacted bytes (DCG + traces + dictionaries).
    pub total_compacted_bytes: u64,
    /// Overall compaction factor (`null` in JSON when infinite).
    pub overall_factor: f64,
    /// Stage wall times in nanoseconds, keyed as in
    /// [`StageTimings`](crate::pipeline::StageTimings) plus the total.
    pub timings: Vec<(&'static str, u64)>,
    /// Worker-pool threads used by the per-function stage.
    pub worker_threads: u64,
    /// Items processed per worker.
    pub items_per_worker: Vec<u64>,
    /// Degraded (failed) functions: `(func id, call count, stage, reason)`.
    pub degraded: Vec<(u32, u64, String, String)>,
}

/// The fsck section of a [`RunReport`], rebased from
/// [`RecoveryReport`](crate::recovery::RecoveryReport).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FsckSection {
    /// Container version of the verified archive (2 or 3).
    pub version: u32,
    /// Input size in bytes.
    pub total_bytes: u64,
    /// Whether the header verified.
    pub header_ok: bool,
    /// Whether the compressed DCG verified.
    pub dcg_ok: bool,
    /// Whether the name table verified.
    pub names_ok: bool,
    /// Whether the commit footer verified.
    pub committed: bool,
    /// Payload bytes recovered.
    pub salvaged_bytes: u64,
    /// Which salvage strategy ran (stable string form of
    /// [`SalvageStrategy`](crate::recovery::SalvageStrategy)).
    pub salvage_strategy: String,
    /// Total function regions found.
    pub functions_total: u64,
    /// Regions whose checksum verified and payload decoded.
    pub functions_salvaged: u64,
    /// Regions lost to damage.
    pub functions_lost: u64,
    /// Functions recorded as failed-at-compaction (degraded runs).
    pub functions_degraded: u64,
}

/// Budget usage of a governed run.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct BudgetSection {
    /// Whether any limit was configured.
    pub limited: bool,
    /// Steps charged.
    pub steps_used: u64,
    /// Bytes charged.
    pub bytes_used: u64,
}

/// One machine-readable record of a whole run: what command ran, how it
/// ended, what the pipeline did, what fsck saw, what the budget spent
/// and every metric the observer collected. Serialized by
/// [`RunReport::to_json`] under the schema documented in DESIGN.md §13
/// and validated by [`validate_report_json`].
#[derive(Clone, PartialEq, Debug)]
pub struct RunReport {
    /// The command that produced the report (`compact`, `query`,
    /// `fsck`, `bench`, …).
    pub command: String,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The stop reason for [`RunOutcome::Stopped`] / truncated runs.
    pub stop_reason: Option<String>,
    /// Resolved worker-pool size.
    pub threads: u64,
    /// Pipeline statistics (compact runs).
    pub pipeline: Option<PipelineSection>,
    /// Verification results (fsck runs).
    pub fsck: Option<FsckSection>,
    /// Budget usage.
    pub budget: BudgetSection,
    /// Snapshot of every metric the observer collected.
    pub metrics: MetricsSnapshot,
    /// Number of spans recorded (the spans themselves go to
    /// `--trace-out`).
    pub span_count: u64,
}

impl RunReport {
    /// A minimal report for `command` with the given outcome.
    pub fn new(command: &str, outcome: RunOutcome) -> RunReport {
        RunReport {
            command: command.to_owned(),
            outcome,
            stop_reason: None,
            threads: 1,
            pipeline: None,
            fsck: None,
            budget: BudgetSection::default(),
            metrics: MetricsSnapshot::default(),
            span_count: 0,
        }
    }

    /// Serializes the report as compact JSON with a fixed key order —
    /// the stable schema consumed by `twpp report-check` and CI.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema_version");
        w.uint(REPORT_SCHEMA_VERSION);
        w.key("command");
        w.string(&self.command);
        w.key("outcome");
        w.string(self.outcome.as_str());
        w.key("stop_reason");
        match &self.stop_reason {
            Some(r) => w.string(r),
            None => w.null(),
        }
        w.key("threads");
        w.uint(self.threads);
        w.key("budget");
        w.begin_object();
        w.key("limited");
        w.boolean(self.budget.limited);
        w.key("steps_used");
        w.uint(self.budget.steps_used);
        w.key("bytes_used");
        w.uint(self.budget.bytes_used);
        w.end_object();
        w.key("pipeline");
        match &self.pipeline {
            None => w.null(),
            Some(p) => {
                w.begin_object();
                w.key("raw_total_bytes");
                w.uint(p.raw_total_bytes);
                w.key("raw_dcg_bytes");
                w.uint(p.raw_dcg_bytes);
                w.key("raw_trace_bytes");
                w.uint(p.raw_trace_bytes);
                w.key("after_dedup_bytes");
                w.uint(p.after_dedup_bytes);
                w.key("after_dict_bytes");
                w.uint(p.after_dict_bytes);
                w.key("ctwpp_trace_bytes");
                w.uint(p.ctwpp_trace_bytes);
                w.key("dict_bytes");
                w.uint(p.dict_bytes);
                w.key("dcg_compressed_bytes");
                w.uint(p.dcg_compressed_bytes);
                w.key("total_compacted_bytes");
                w.uint(p.total_compacted_bytes);
                w.key("overall_factor");
                w.float(p.overall_factor);
                w.key("timings_nanos");
                w.begin_object();
                for (name, nanos) in &p.timings {
                    w.key(name);
                    w.uint(*nanos);
                }
                w.end_object();
                w.key("workers");
                w.begin_object();
                w.key("threads");
                w.uint(p.worker_threads);
                w.key("items_per_worker");
                w.begin_array();
                for n in &p.items_per_worker {
                    w.uint(*n);
                }
                w.end_array();
                w.end_object();
                w.key("degraded");
                w.begin_array();
                for (func, calls, stage, reason) in &p.degraded {
                    w.begin_object();
                    w.key("func");
                    w.uint(u64::from(*func));
                    w.key("call_count");
                    w.uint(*calls);
                    w.key("stage");
                    w.string(stage);
                    w.key("reason");
                    w.string(reason);
                    w.end_object();
                }
                w.end_array();
                w.end_object();
            }
        }
        w.key("fsck");
        match &self.fsck {
            None => w.null(),
            Some(f) => {
                w.begin_object();
                w.key("version");
                w.uint(u64::from(f.version));
                w.key("total_bytes");
                w.uint(f.total_bytes);
                w.key("header_ok");
                w.boolean(f.header_ok);
                w.key("dcg_ok");
                w.boolean(f.dcg_ok);
                w.key("names_ok");
                w.boolean(f.names_ok);
                w.key("committed");
                w.boolean(f.committed);
                w.key("salvaged_bytes");
                w.uint(f.salvaged_bytes);
                w.key("salvage_strategy");
                w.string(&f.salvage_strategy);
                w.key("functions_total");
                w.uint(f.functions_total);
                w.key("functions_salvaged");
                w.uint(f.functions_salvaged);
                w.key("functions_lost");
                w.uint(f.functions_lost);
                w.key("functions_degraded");
                w.uint(f.functions_degraded);
                w.end_object();
            }
        }
        w.key("span_count");
        w.uint(self.span_count);
        w.key("metrics");
        self.metrics.write_json(&mut w);
        w.end_object();
        w.finish()
    }
}

/// Validates `text` against the RunReport JSON schema (DESIGN.md §13):
/// schema version, required keys, types, outcome vocabulary, and the
/// shape of the optional `pipeline` and `fsck` sections.
///
/// # Errors
///
/// The first violated constraint, as a human-readable message.
pub fn validate_report_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let obj = doc.as_obj().ok_or("report is not a JSON object")?;
    let version = obj
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing numeric schema_version")?;
    if version != REPORT_SCHEMA_VERSION as f64 {
        return Err(format!(
            "unsupported schema_version {version} (expected {REPORT_SCHEMA_VERSION})"
        ));
    }
    obj.get("command")
        .and_then(Json::as_str)
        .ok_or("missing string command")?;
    let outcome = obj
        .get("outcome")
        .and_then(Json::as_str)
        .ok_or("missing string outcome")?;
    if !matches!(
        outcome,
        "complete" | "degraded" | "stopped" | "damaged" | "running"
    ) {
        return Err(format!("invalid outcome {outcome:?}"));
    }
    match obj.get("stop_reason") {
        Some(Json::Null) | Some(Json::Str(_)) => {}
        _ => return Err("stop_reason must be a string or null".to_owned()),
    }
    obj.get("threads")
        .and_then(Json::as_num)
        .ok_or("missing numeric threads")?;
    let budget = obj
        .get("budget")
        .and_then(Json::as_obj)
        .ok_or("missing budget object")?;
    for key in ["steps_used", "bytes_used"] {
        budget
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("budget.{key} must be a number"))?;
    }
    budget
        .get("limited")
        .and_then(Json::as_bool)
        .ok_or("budget.limited must be a boolean")?;
    match obj.get("pipeline") {
        Some(Json::Null) | None => {}
        Some(p) => validate_pipeline_section(p)?,
    }
    match obj.get("fsck") {
        Some(Json::Null) | None => {}
        Some(f) => validate_fsck_section(f)?,
    }
    obj.get("span_count")
        .and_then(Json::as_num)
        .ok_or("missing numeric span_count")?;
    let metrics = obj
        .get("metrics")
        .and_then(Json::as_obj)
        .ok_or("missing metrics object")?;
    for (name, m) in metrics {
        let m = m
            .as_obj()
            .ok_or_else(|| format!("metric {name} is not an object"))?;
        let kind = m
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("metric {name} has no type"))?;
        match kind {
            "counter" | "gauge" => {
                m.get("value")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("metric {name} has no numeric value"))?;
            }
            "histogram" => {
                for key in ["bounds", "counts"] {
                    m.get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("metric {name}.{key} must be an array"))?;
                }
                for key in ["sum", "count"] {
                    m.get(key)
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("metric {name}.{key} must be a number"))?;
                }
            }
            other => return Err(format!("metric {name} has unknown type {other:?}")),
        }
    }
    Ok(())
}

fn validate_pipeline_section(p: &Json) -> Result<(), String> {
    let obj = p.as_obj().ok_or("pipeline must be an object or null")?;
    for key in [
        "raw_total_bytes",
        "raw_dcg_bytes",
        "raw_trace_bytes",
        "after_dedup_bytes",
        "after_dict_bytes",
        "ctwpp_trace_bytes",
        "dict_bytes",
        "dcg_compressed_bytes",
        "total_compacted_bytes",
    ] {
        obj.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("pipeline.{key} must be a number"))?;
    }
    match obj.get("overall_factor") {
        Some(Json::Num(_)) | Some(Json::Null) => {}
        _ => return Err("pipeline.overall_factor must be a number or null".to_owned()),
    }
    let timings = obj
        .get("timings_nanos")
        .and_then(Json::as_obj)
        .ok_or("pipeline.timings_nanos must be an object")?;
    for key in [
        "partition",
        "dedup",
        "function_stage",
        "dcg_compress",
        "archive_encode",
        "total",
    ] {
        timings
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("pipeline.timings_nanos.{key} must be a number"))?;
    }
    let workers = obj
        .get("workers")
        .and_then(Json::as_obj)
        .ok_or("pipeline.workers must be an object")?;
    workers
        .get("threads")
        .and_then(Json::as_num)
        .ok_or("pipeline.workers.threads must be a number")?;
    workers
        .get("items_per_worker")
        .and_then(Json::as_arr)
        .ok_or("pipeline.workers.items_per_worker must be an array")?;
    let degraded = obj
        .get("degraded")
        .and_then(Json::as_arr)
        .ok_or("pipeline.degraded must be an array")?;
    for d in degraded {
        let d = d.as_obj().ok_or("pipeline.degraded entries must be objects")?;
        d.get("func")
            .and_then(Json::as_num)
            .ok_or("degraded.func must be a number")?;
        d.get("call_count")
            .and_then(Json::as_num)
            .ok_or("degraded.call_count must be a number")?;
        d.get("stage")
            .and_then(Json::as_str)
            .ok_or("degraded.stage must be a string")?;
        d.get("reason")
            .and_then(Json::as_str)
            .ok_or("degraded.reason must be a string")?;
    }
    Ok(())
}

fn validate_fsck_section(f: &Json) -> Result<(), String> {
    let obj = f.as_obj().ok_or("fsck must be an object or null")?;
    for key in [
        "version",
        "total_bytes",
        "salvaged_bytes",
        "functions_total",
        "functions_salvaged",
        "functions_lost",
        "functions_degraded",
    ] {
        obj.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("fsck.{key} must be a number"))?;
    }
    for key in ["header_ok", "dcg_ok", "names_ok", "committed"] {
        obj.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("fsck.{key} must be a boolean"))?;
    }
    obj.get("salvage_strategy")
        .and_then(Json::as_str)
        .ok_or("fsck.salvage_strategy must be a string")?;
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_allocates_nothing_and_records_nothing() {
        let obs = Obs::noop();
        assert!(!obs.is_enabled());
        {
            let _g = obs.span("stage");
        }
        let c = obs.counter("twpp_core_x_total", "x");
        c.add(10);
        assert_eq!(c.get(), 0);
        obs.gauge("twpp_core_g", "g").set(7);
        obs.histogram("twpp_core_h", "h", &[1, 2]).observe(5);
        assert_eq!(obs.span_count(), 0);
        assert!(obs.snapshot().samples.is_empty());
        assert_eq!(obs.now_ns(), 0);
    }

    #[test]
    fn spans_record_and_sort_deterministically() {
        let obs = Obs::collecting();
        obs.record_span("b", 1, 100, 50);
        obs.record_span("a", 0, 100, 10);
        obs.record_span("c", 0, 20, 5);
        {
            let _g = obs.span("live");
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "c");
        assert_eq!(spans[1].name, "a"); // start 100, tid 0 before tid 1
        assert_eq!(spans[2].name, "b");
        assert_eq!(spans[3].name, "live");
    }

    #[test]
    fn counters_gauges_histograms_snapshot_in_name_order() {
        let obs = Obs::collecting();
        let c = obs.counter("twpp_core_events_total", "events");
        c.add(3);
        c.inc();
        let g = obs.gauge("twpp_core_bytes", "bytes");
        g.set(100);
        g.add(-30);
        let h = obs.histogram("twpp_core_traces", "traces", &[1, 5, 10]);
        for v in [0, 1, 2, 7, 100] {
            h.observe(v);
        }
        let snap = obs.snapshot();
        let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["twpp_core_bytes", "twpp_core_events_total", "twpp_core_traces"]
        );
        assert_eq!(
            snap.get("twpp_core_events_total").unwrap().value,
            SampleValue::Counter(4)
        );
        assert_eq!(
            snap.get("twpp_core_bytes").unwrap().value,
            SampleValue::Gauge(70)
        );
        match &snap.get("twpp_core_traces").unwrap().value {
            SampleValue::Histogram {
                bounds,
                counts,
                sum,
                count,
            } => {
                assert_eq!(bounds, &vec![1, 5, 10]);
                assert_eq!(counts, &vec![2, 1, 1, 1]);
                assert_eq!(*sum, 110);
                assert_eq!(*count, 5);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // Re-registration returns the same cell.
        let c2 = obs.counter("twpp_core_events_total", "events");
        c2.inc();
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn json_writer_and_parser_round_trip() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("s");
        w.string("a\"b\\c\n");
        w.key("n");
        w.int(-42);
        w.key("arr");
        w.begin_array();
        w.uint(1);
        w.boolean(true);
        w.null();
        w.end_array();
        w.end_object();
        let text = w.finish();
        assert_eq!(text, "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":-42,\"arr\":[1,true,null]}");
        let parsed = parse_json(&text).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str().unwrap(), "a\"b\\c\n");
        assert_eq!(parsed.get("n").unwrap().as_num().unwrap(), -42.0);
        assert_eq!(parsed.get("arr").unwrap().as_arr().unwrap().len(), 3);
        assert!(parse_json("{\"x\": }").is_err());
        assert!(parse_json("[1,2] trailing").is_err());
    }

    #[test]
    fn chrome_trace_is_loadable_json_with_fixed_fields() {
        let obs = Obs::collecting();
        obs.record_span("partition", 0, 1_500, 2_500);
        let text = obs.chrome_trace_json();
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("name").unwrap().as_str().unwrap(), "partition");
        assert_eq!(e.get("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(e.get("ts").unwrap().as_num().unwrap(), 1.5);
        assert_eq!(e.get("dur").unwrap().as_num().unwrap(), 2.5);
    }

    #[test]
    fn report_serializes_and_validates() {
        let mut report = RunReport::new("compact", RunOutcome::Complete);
        report.threads = 4;
        report.budget = BudgetSection {
            limited: true,
            steps_used: 10,
            bytes_used: 20,
        };
        let text = report.to_json();
        validate_report_json(&text).unwrap();
        // Tampering fails validation.
        let broken = text.replace("\"outcome\":\"complete\"", "\"outcome\":\"sideways\"");
        assert!(validate_report_json(&broken).is_err());
        let broken = text.replace("\"schema_version\":1", "\"schema_version\":99");
        assert!(validate_report_json(&broken).is_err());
        let missing = text.replace("\"budget\"", "\"budgetx\"");
        assert!(validate_report_json(&missing).is_err());
    }

    #[test]
    fn running_outcome_is_valid_for_daemon_reports() {
        let report = RunReport::new("serve-ingest", RunOutcome::Running);
        let text = report.to_json();
        assert!(text.contains("\"outcome\":\"running\""));
        validate_report_json(&text).unwrap();
    }

    #[test]
    fn prometheus_text_escapes_help_and_passes_strict_parser() {
        let obs = Obs::collecting();
        obs.counter("twpp_core_a_total", "line one\nline \\ two").add(3);
        obs.gauge("twpp_core_b", "a gauge").set(-7);
        let h = obs.histogram("twpp_core_c", "a histogram", &[1, 5]);
        for v in [0, 3, 9] {
            h.observe(v);
        }
        let text = obs.prometheus_text();
        assert!(text.contains("line one\\nline \\\\ two"));
        let families = parse_prometheus_text(&text).unwrap();
        assert_eq!(families.len(), 3);
        assert_eq!(families[0].name, "twpp_core_a_total");
        assert_eq!(families[0].kind, "counter");
        assert_eq!(families[0].samples[0].2, 3.0);
        assert_eq!(families[1].samples[0].2, -7.0);
        let hist = &families[2];
        assert_eq!(hist.kind, "histogram");
        // buckets le=1, le=5, le=+Inf, then _sum and _count.
        assert_eq!(hist.samples.len(), 5);
        assert_eq!(hist.samples[2].1, "le=\"+Inf\"");
        assert_eq!(hist.samples[2].2, 3.0);
    }

    #[test]
    fn strict_prometheus_parser_rejects_malformed_exposition() {
        // TYPE before HELP.
        assert!(parse_prometheus_text("# TYPE x counter\n# HELP x h\nx 1\n").is_err());
        // Unknown type.
        assert!(parse_prometheus_text("# HELP x h\n# TYPE x summary\nx 1\n").is_err());
        // Sample outside its family.
        assert!(parse_prometheus_text("# HELP x h\n# TYPE x counter\ny 1\n").is_err());
        // Families out of name order.
        assert!(parse_prometheus_text(
            "# HELP b h\n# TYPE b counter\nb 1\n# HELP a h\n# TYPE a counter\na 1\n"
        )
        .is_err());
        // Histogram without a +Inf bucket.
        assert!(parse_prometheus_text(
            "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"
        )
        .is_err());
        // Histogram with non-cumulative buckets.
        assert!(parse_prometheus_text(
            "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"
        )
        .is_err());
        // _count disagreeing with the +Inf bucket.
        assert!(parse_prometheus_text(
            "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"
        )
        .is_err());
        // A well-formed minimal document parses.
        let ok = parse_prometheus_text(
            "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 12\nh_count 3\n"
        )
        .unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn label_value_escaping_covers_quote_backslash_newline() {
        assert_eq!(
            escape_prometheus_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd"
        );
    }

    #[test]
    fn rate_estimator_windows_and_expires_old_buckets() {
        let r = RateEstimator::new(10, 1000);
        // 100 events spread over the first 4 seconds.
        for s in 0..4u64 {
            r.record_at_ms(s * 1000 + 500, 25);
        }
        // At t=4s only 4s have elapsed: 100 events / 4 s.
        assert!((r.rate_at_ms(4_000) - 25.0).abs() < 1e-9);
        // Once warmed past the window the same events dilute to ~/10 s.
        assert!((r.rate_at_ms(9_999) - 10.0).abs() < 0.01);
        // 20 s later the old buckets have expired.
        assert!(r.rate_at_ms(24_000) < 1e-9);
        // A fresh burst shows up immediately.
        r.record_at_ms(24_100, 50);
        assert!(r.rate_at_ms(24_200) > 0.0);
    }

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "twpp-obs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn logger_writes_jsonl_filters_levels_and_rotates() {
        let dir = test_dir("log");
        let path = dir.join("daemon.log");
        let log = Logger::to_file(&path, 160, LogLevel::Info).unwrap();
        assert!(log.is_enabled());
        log.debug("dropped", &[]);
        log.info("hello", &[("source", "s1"), ("events", "12")]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "debug line must be filtered: {text}");
        let doc = parse_json(lines[0]).unwrap();
        assert_eq!(doc.get("level").unwrap().as_str().unwrap(), "info");
        assert_eq!(doc.get("msg").unwrap().as_str().unwrap(), "hello");
        assert_eq!(doc.get("source").unwrap().as_str().unwrap(), "s1");
        assert!(doc.get("ts_ms").unwrap().as_num().unwrap() > 0.0);
        // Push past the byte cap to force a rotation to the .1 sibling.
        for i in 0..8 {
            log.warn("filler", &[("i", &i.to_string())]);
        }
        let rotated = dir.join("daemon.log.1");
        assert!(rotated.exists(), "rotation must produce a .1 sibling");
        // Every line in both files is standalone valid JSON.
        for p in [&path, &rotated] {
            for line in std::fs::read_to_string(p).unwrap().lines() {
                parse_json(line).unwrap();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        // The noop logger accepts records and stays disabled.
        let noop = Logger::noop();
        assert!(!noop.is_enabled());
        noop.error("ignored", &[]);
    }

    #[test]
    fn flight_recorder_keeps_most_recent_and_dumps_valid_json() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record("s1", "feed", format!("offset {i}"));
        }
        assert_eq!(rec.records_written(), 10);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        // Ring keeps the newest four, oldest first.
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(snap[3].detail, "offset 9");
        let doc = parse_json(&rec.dump_json()).unwrap();
        assert_eq!(doc.get("flightrec_version").unwrap().as_num().unwrap(), 1.0);
        assert_eq!(doc.get("records").unwrap().as_arr().unwrap().len(), 4);
        let dir = test_dir("flightrec");
        let path = rec.dump_to_dir(&dir).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("flightrec-"));
        parse_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
