//! Byte-capped shared LRU caches for the read path.
//!
//! A fleet server holds many archives open and answers queries out of
//! decoded function frames; before this module each [`LazyArchive`]
//! cached every frame it ever decoded, forever, so a long-lived process
//! scanning a large archive eventually held the whole data section live.
//! [`ByteLruCache`] bounds that: entries carry an explicit byte weight,
//! the cache never holds more than its cap, and eviction is
//! least-recently-used. [`FrameCache`] specialises it for decoded
//! function frames keyed by `(archive uid, func)` so one cache can be
//! shared across a whole fleet of lazily-opened archives.
//!
//! [`LazyArchive`]: crate::lazy::LazyArchive

#![deny(clippy::unwrap_used)]

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use twpp_ir::FuncId;

use crate::archive::FunctionRecord;
use crate::obs::Obs;

/// Default byte cap threaded through [`TwppArchive::open_lazy`]: large
/// enough that interactive queries never notice, small enough that a
/// scan over a huge archive cannot hold every frame live.
///
/// [`TwppArchive::open_lazy`]: crate::archive::TwppArchive::open_lazy
pub const DEFAULT_FRAME_CACHE_BYTES: u64 = 64 << 20;

/// See [`lock_unpoisoned`](crate::lazy) — worst case after a poisoning
/// panic is a redundant decode, never a torn entry.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A point-in-time view of a cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay under the byte cap.
    pub evictions: u64,
    /// Total bytes released by evictions.
    pub evicted_bytes: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    bytes: u64,
    stamp: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Entry<V>>,
    used: u64,
    clock: u64,
}

/// A byte-capped LRU map. `get` refreshes recency; `insert_or_get`
/// evicts least-recently-used entries until the new one fits. An entry
/// larger than the whole cap is never stored (the value is still
/// returned to the caller — the cache degrades to pass-through, it
/// never refuses work). All methods take `&self`; the cache is shared
/// behind an `Arc` across threads.
pub struct ByteLruCache<K, V> {
    cap: u64,
    inner: Mutex<Inner<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> ByteLruCache<K, V> {
    /// Creates a cache holding at most `cap_bytes` of entry weight.
    pub fn new(cap_bytes: u64) -> ByteLruCache<K, V> {
        ByteLruCache {
            cap: cap_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                used: 0,
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// The byte cap this cache was built with.
    pub fn cap_bytes(&self) -> u64 {
        self.cap
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.stamp = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` weighing `bytes` under `key`, evicting LRU
    /// entries first so the cap holds. If the key is already resident
    /// the *existing* value is returned untouched (first insert wins —
    /// concurrent decoders converge on one canonical `Arc`). A value
    /// heavier than the whole cap is returned without being stored.
    pub fn insert_or_get(&self, key: K, value: V, bytes: u64) -> V {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.map.get_mut(&key) {
            e.stamp = clock;
            return e.value.clone();
        }
        if bytes > self.cap {
            return value;
        }
        while inner.used + bytes > self.cap {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = inner.map.remove(&victim) {
                inner.used -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(e.bytes, Ordering::Relaxed);
            }
        }
        inner.used += bytes;
        inner.map.insert(
            key,
            Entry {
                value: value.clone(),
                bytes,
                stamp: clock,
            },
        );
        value
    }

    /// Drops every entry whose key fails `keep`, returning the number
    /// removed. Used to invalidate one archive's frames on rescan.
    pub fn retain(&self, mut keep: impl FnMut(&K) -> bool) -> usize {
        let mut inner = lock_unpoisoned(&self.inner);
        let before = inner.map.len();
        let mut freed = 0u64;
        inner.map.retain(|k, e| {
            if keep(k) {
                true
            } else {
                freed += e.bytes;
                false
            }
        });
        inner.used -= freed;
        before - inner.map.len()
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.retain(|_| false);
    }

    /// Bytes currently resident (always `<= cap_bytes`).
    pub fn resident_bytes(&self) -> u64 {
        lock_unpoisoned(&self.inner).used
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        let (used, entries) = {
            let inner = lock_unpoisoned(&self.inner);
            (inner.used, inner.map.len() as u64)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            resident_bytes: used,
            entries,
        }
    }
}

impl<K, V> std::fmt::Debug for ByteLruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_unpoisoned(&self.inner);
        f.debug_struct("ByteLruCache")
            .field("cap", &self.cap)
            .field("used", &inner.used)
            .field("entries", &inner.map.len())
            .finish_non_exhaustive()
    }
}

/// Process-unique archive uid source; every lazy open gets a fresh one,
/// so a re-opened (replaced) archive never aliases stale cache entries.
static NEXT_ARCHIVE_UID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique archive uid.
pub fn next_archive_uid() -> u64 {
    NEXT_ARCHIVE_UID.fetch_add(1, Ordering::Relaxed)
}

/// A decoded-frame cache shared across archives: keyed by
/// `(archive uid, func)`, weighted by the on-disk frame length, and
/// exported to `obs` under the `twpp_serve_frame_cache_*` counters.
pub struct FrameCache {
    lru: ByteLruCache<(u64, FuncId), Arc<FunctionRecord>>,
    obs: Obs,
}

impl FrameCache {
    /// Creates a frame cache with the given byte cap and a no-op obs.
    pub fn new(cap_bytes: u64) -> FrameCache {
        FrameCache::observed(cap_bytes, Obs::noop())
    }

    /// Like [`FrameCache::new`], additionally recording
    /// `twpp_serve_frame_cache_{hits,misses,evicted_bytes}_total` into
    /// `obs` as lookups happen.
    pub fn observed(cap_bytes: u64, obs: Obs) -> FrameCache {
        FrameCache {
            lru: ByteLruCache::new(cap_bytes),
            obs,
        }
    }

    /// Looks up one decoded frame.
    pub fn get(&self, archive_uid: u64, func: FuncId) -> Option<Arc<FunctionRecord>> {
        let hit = self.lru.get(&(archive_uid, func));
        if self.obs.is_enabled() {
            if hit.is_some() {
                self.obs
                    .counter(
                        "twpp_serve_frame_cache_hits_total",
                        "Frame-cache lookups served from a resident decoded frame",
                    )
                    .inc();
            } else {
                self.obs
                    .counter(
                        "twpp_serve_frame_cache_misses_total",
                        "Frame-cache lookups that had to decode from disk",
                    )
                    .inc();
            }
        }
        hit
    }

    /// Inserts a decoded frame weighing `bytes` (its on-disk frame
    /// length), returning the canonical resident `Arc` (the existing one
    /// if another thread decoded the same frame first).
    pub fn insert_or_get(
        &self,
        archive_uid: u64,
        func: FuncId,
        rec: Arc<FunctionRecord>,
        bytes: u64,
    ) -> Arc<FunctionRecord> {
        let before = self.lru.stats().evicted_bytes;
        let out = self.lru.insert_or_get((archive_uid, func), rec, bytes);
        if self.obs.is_enabled() {
            let freed = self.lru.stats().evicted_bytes - before;
            if freed > 0 {
                self.obs
                    .counter(
                        "twpp_serve_frame_cache_evicted_bytes_total",
                        "Bytes of decoded frames evicted to stay under the cache cap",
                    )
                    .add(freed);
            }
        }
        out
    }

    /// Drops every frame belonging to `archive_uid` (rescan removed or
    /// replaced the archive), returning the number evicted.
    pub fn invalidate_archive(&self, archive_uid: u64) -> usize {
        self.lru.retain(|(uid, _)| *uid != archive_uid)
    }

    /// The byte cap.
    pub fn cap_bytes(&self) -> u64 {
        self.lru.cap_bytes()
    }

    /// Bytes currently resident (always `<= cap_bytes`).
    pub fn resident_bytes(&self) -> u64 {
        self.lru.resident_bytes()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }
}

impl std::fmt::Debug for FrameCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameCache").field("lru", &self.lru).finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn cap_holds_and_eviction_is_lru() {
        let c: ByteLruCache<u32, u32> = ByteLruCache::new(10);
        c.insert_or_get(1, 10, 4);
        c.insert_or_get(2, 20, 4);
        assert_eq!(c.resident_bytes(), 8);
        // Touch 1 so 2 is the LRU victim.
        assert_eq!(c.get(&1), Some(10));
        c.insert_or_get(3, 30, 4);
        assert!(c.resident_bytes() <= 10);
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 4);
    }

    #[test]
    fn oversize_entries_pass_through_unstored() {
        let c: ByteLruCache<u32, u32> = ByteLruCache::new(4);
        assert_eq!(c.insert_or_get(1, 99, 100), 99);
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn first_insert_wins() {
        let c: ByteLruCache<u32, u32> = ByteLruCache::new(100);
        assert_eq!(c.insert_or_get(1, 10, 4), 10);
        assert_eq!(c.insert_or_get(1, 20, 4), 10, "existing value is canonical");
        assert_eq!(c.resident_bytes(), 4, "duplicate insert charges nothing");
    }

    #[test]
    fn retain_invalidates_and_frees_bytes() {
        let c: ByteLruCache<(u64, u32), u32> = ByteLruCache::new(100);
        c.insert_or_get((1, 0), 1, 10);
        c.insert_or_get((2, 0), 2, 10);
        assert_eq!(c.retain(|(uid, _)| *uid != 1), 1);
        assert_eq!(c.resident_bytes(), 10);
        assert_eq!(c.get(&(1, 0)), None);
        assert_eq!(c.get(&(2, 0)), Some(2));
    }

    #[test]
    fn archive_uids_are_unique() {
        let a = next_archive_uid();
        let b = next_archive_uid();
        assert_ne!(a, b);
    }

    #[test]
    fn frame_cache_counters_reach_obs() {
        let obs = Obs::collecting();
        let cache = FrameCache::observed(1 << 20, obs.clone());
        let func = FuncId::from_index(0);
        assert!(cache.get(1, func).is_none());
        let snap = obs.snapshot();
        let miss = snap.get("twpp_serve_frame_cache_misses_total").unwrap();
        assert_eq!(miss.value, crate::obs::SampleValue::Counter(1));
    }
}
