//! Dynamic basic block (DBB) dictionaries — the third transformation of the
//! paper (Figure 3 → Figure 5).
//!
//! A *dynamic basic block* of a path trace is a chain of static blocks that
//! is always entered at its first block and left at its last block within
//! that trace. Such chains often sit inside loops and repeat many times, so
//! replacing each occurrence by the chain's head id (plus a per-trace
//! dictionary for expansion) shrank WPP traces by x1.35–x4.24 in the paper.

use std::collections::{BTreeMap, HashMap, HashSet};

use twpp_ir::BlockId;

use crate::trace::PathTrace;

/// A dictionary mapping each DBB head to the full chain of static blocks it
/// stands for. Chains have length ≥ 2 and start with their head.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DbbDictionary {
    chains: BTreeMap<BlockId, Vec<BlockId>>,
}

impl DbbDictionary {
    /// Creates an empty dictionary (no block is compacted).
    pub fn new() -> DbbDictionary {
        DbbDictionary::default()
    }

    /// Builds a dictionary from explicit chains (used when decoding
    /// archives).
    ///
    /// # Panics
    ///
    /// Panics if a chain is shorter than 2 blocks or two chains share a
    /// head.
    pub fn from_chains(chains: Vec<Vec<BlockId>>) -> DbbDictionary {
        let mut dict = DbbDictionary::new();
        for chain in chains {
            assert!(chain.len() >= 2, "DBB chains have at least 2 blocks");
            let head = chain[0];
            let prev = dict.chains.insert(head, chain);
            assert!(prev.is_none(), "duplicate chain head");
        }
        dict
    }

    /// The chain headed by `head`, if any.
    pub fn chain(&self, head: BlockId) -> Option<&[BlockId]> {
        self.chains.get(&head).map(Vec::as_slice)
    }

    /// Iterates over `(head, chain)` pairs in head order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[BlockId])> {
        self.chains.iter().map(|(h, c)| (*h, c.as_slice()))
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Returns `true` if the dictionary holds no chains.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Serialized size in bytes: per chain, the head id, a length word and
    /// the chain's block ids (4 bytes each).
    pub fn byte_size(&self) -> usize {
        self.chains.values().map(|c| (c.len() + 2) * 4).sum()
    }

    /// Expands a compacted trace back to its original block sequence.
    pub fn expand(&self, compacted: &PathTrace) -> PathTrace {
        let mut out = Vec::with_capacity(compacted.len());
        for b in compacted.iter() {
            match self.chains.get(&b) {
                Some(chain) => out.extend_from_slice(chain),
                None => out.push(b),
            }
        }
        out.into()
    }
}

/// The result of compacting one path trace with a DBB dictionary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompactedTrace {
    /// The trace with each DBB occurrence replaced by its head id.
    pub trace: PathTrace,
    /// The dictionary needed to expand the trace.
    pub dictionary: DbbDictionary,
}

/// Builds the DBB dictionary of `trace` and rewrites the trace, replacing
/// every chain occurrence by its head id (the paper's "creating dictionaries
/// of dynamic basic blocks" step).
///
/// The dynamic control flow graph of the trace is constructed; a chain edge
/// `a -> b` exists when `b` is the only successor of `a` and `a` the only
/// predecessor of `b` *in this trace*, counting the trace start and end as
/// virtual neighbours so that a trace never begins or ends mid-chain.
pub fn compact_trace(trace: &PathTrace) -> CompactedTrace {
    let blocks = trace.blocks();
    if blocks.len() < 2 {
        return CompactedTrace {
            trace: trace.clone(),
            dictionary: DbbDictionary::new(),
        };
    }

    // Distinct successor/predecessor sets of the dynamic CFG. `None` in a
    // slot models the virtual entry/exit neighbour.
    let mut succs: HashMap<BlockId, HashSet<Option<BlockId>>> = HashMap::new();
    let mut preds: HashMap<BlockId, HashSet<Option<BlockId>>> = HashMap::new();
    preds.entry(blocks[0]).or_default().insert(None);
    succs.entry(*blocks.last().expect("len >= 2")).or_default().insert(None);
    for pair in blocks.windows(2) {
        succs.entry(pair[0]).or_default().insert(Some(pair[1]));
        preds.entry(pair[1]).or_default().insert(Some(pair[0]));
    }

    // Chain edge a -> b: unique successor / unique predecessor.
    let mut chain_next: HashMap<BlockId, BlockId> = HashMap::new();
    let mut has_chain_pred: HashSet<BlockId> = HashSet::new();
    for (&a, ss) in &succs {
        if ss.len() != 1 {
            continue;
        }
        let Some(&Some(b)) = ss.iter().next() else {
            continue;
        };
        if a == b {
            continue; // self-loop is not a chain
        }
        let ps = &preds[&b];
        if ps.len() == 1 && ps.contains(&Some(a)) {
            chain_next.insert(a, b);
            has_chain_pred.insert(b);
        }
    }

    // Compose maximal chains from heads (blocks with a chain successor but
    // no chain predecessor).
    let mut dictionary = DbbDictionary::new();
    let mut member_of: HashMap<BlockId, BlockId> = HashMap::new();
    let mut heads: Vec<BlockId> = chain_next
        .keys()
        .filter(|b| !has_chain_pred.contains(b))
        .copied()
        .collect();
    heads.sort_unstable();
    for head in heads {
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(&next) = chain_next.get(&cur) {
            chain.push(next);
            cur = next;
        }
        debug_assert!(chain.len() >= 2);
        for &b in &chain {
            member_of.insert(b, head);
        }
        dictionary.chains.insert(head, chain);
    }

    // Rewrite the trace: each chain occurrence collapses to its head.
    let mut out = Vec::with_capacity(blocks.len());
    let mut i = 0;
    while i < blocks.len() {
        let b = blocks[i];
        match dictionary.chains.get(&b) {
            Some(chain) => {
                debug_assert!(
                    blocks[i..].starts_with(chain),
                    "chain property violated: every occurrence of a head is \
                     followed by its full chain"
                );
                out.push(b);
                i += chain.len();
            }
            None => {
                debug_assert!(
                    !member_of.contains_key(&b),
                    "non-head chain member encountered outside its chain"
                );
                out.push(b);
                i += 1;
            }
        }
    }
    CompactedTrace {
        trace: out.into(),
        dictionary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_of;

    #[test]
    fn loop_body_collapses_to_head() {
        // Figure 4/5 of the paper: 1.(2.3.4.5).(2.3.4.5).(2.3.4.5 ... 6) —
        // use the paper's f trace 1.2.3.4.5.6.2.3.4.5.6.2.3.4.5.6.10.
        let t = trace_of(&[1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10]);
        let c = compact_trace(&t);
        // 2.3.4.5.6 always runs as a unit, so it forms one DBB headed by 2.
        assert_eq!(
            c.dictionary.chain(twpp_ir::BlockId::new(2)).unwrap().len(),
            5
        );
        assert_eq!(c.trace.to_string(), "1.2.2.2.10");
        assert_eq!(c.dictionary.expand(&c.trace), t);
    }

    #[test]
    fn alternating_blocks_do_not_chain() {
        // 1.2.1.2.1: 1 -> {2, exit-ish}, 2 -> {1}; trace starts at 1 so 1
        // has a virtual predecessor — no chain can include 1.
        let t = trace_of(&[1, 2, 1, 2, 1]);
        let c = compact_trace(&t);
        assert_eq!(c.trace, t);
        assert!(c.dictionary.is_empty());
    }

    #[test]
    fn self_loop_is_not_a_chain() {
        let t = trace_of(&[1, 2, 2, 2, 3]);
        let c = compact_trace(&t);
        assert_eq!(c.trace, t);
        assert!(c.dictionary.is_empty());
    }

    #[test]
    fn trace_ending_mid_pattern_breaks_the_chain() {
        // 5 is followed by 6 the first time but ends the trace the second
        // time, so 5 -> 6 must not be a chain edge.
        let t = trace_of(&[5, 6, 5]);
        let c = compact_trace(&t);
        assert_eq!(c.trace, t);
        assert!(c.dictionary.is_empty());
    }

    #[test]
    fn short_and_empty_traces_pass_through() {
        for ids in [&[][..], &[1][..]] {
            let t = trace_of(ids);
            let c = compact_trace(&t);
            assert_eq!(c.trace, t);
            assert!(c.dictionary.is_empty());
        }
    }

    #[test]
    fn whole_trace_can_be_one_chain() {
        let t = trace_of(&[1, 2, 3, 4]);
        let c = compact_trace(&t);
        assert_eq!(c.trace.to_string(), "1");
        assert_eq!(c.dictionary.expand(&c.trace), t);
    }

    #[test]
    fn multiple_disjoint_chains() {
        // Two alternatives inside a loop: 1.(2.3).7.(4.5).7.(2.3).7 — 2.3
        // and 4.5 chain; 7 does not (multiple predecessors).
        let t = trace_of(&[1, 2, 3, 7, 4, 5, 7, 2, 3, 7]);
        let c = compact_trace(&t);
        assert_eq!(c.trace.to_string(), "1.2.7.4.7.2.7");
        assert_eq!(c.dictionary.len(), 2);
        assert_eq!(c.dictionary.expand(&c.trace), t);
    }

    #[test]
    fn dictionary_byte_size() {
        let t = trace_of(&[1, 2, 3, 4]);
        let c = compact_trace(&t);
        // One chain of 4 blocks: (4 + 2) * 4 bytes.
        assert_eq!(c.dictionary.byte_size(), 24);
    }
}
