//! The full compaction pipeline: raw WPP → compacted TWPP, with per-stage
//! size accounting (the data behind Tables 2 and 3 of the paper).

#![deny(clippy::unwrap_used)]

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use twpp_ir::FuncId;
use twpp_tracer::raw::RawSizes;
use twpp_tracer::RawWpp;

use crate::dbb::{compact_trace, DbbDictionary};
use crate::dcg::Dcg;
use crate::dedup::{eliminate_redundancy_threads, RedundancyStats};
use crate::gov::{Budget, FaultPlan, StopReason};
use crate::lzw;
use crate::obs::Obs;
use crate::par::{self, WorkerReport};
use crate::partition::{partition, PartitionError, PartitionedWpp};
use crate::timestamped::TimestampedTrace;
use crate::trace::PathTrace;

/// The per-function block of a compacted TWPP: every unique path trace of
/// the function in timestamped form, plus the DBB dictionaries they
/// reference. All the information about one function sits together, which
/// is what makes per-function queries fast.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionBlock {
    /// The function.
    pub func: FuncId,
    /// How many times it was called (used to order the archive layout).
    pub call_count: u64,
    /// Deduplicated DBB dictionaries.
    pub dicts: Vec<DbbDictionary>,
    /// Unique traces in timestamped form, each with the index of its
    /// dictionary in `dicts`. Order matches the DCG's `trace_idx`.
    pub traces: Vec<(u32, TimestampedTrace)>,
}

impl FunctionBlock {
    /// Serialized size in bytes of the timestamped traces (including each
    /// trace's dictionary-index word).
    pub fn trace_bytes(&self) -> usize {
        self.traces
            .iter()
            .map(|(_, tt)| 4 + tt.byte_size())
            .sum()
    }

    /// Serialized size in bytes of the dictionaries.
    pub fn dict_bytes(&self) -> usize {
        self.dicts.iter().map(|d| 4 + d.byte_size()).sum()
    }

    /// Expands every trace back to its original (pre-DBB) block sequence.
    pub fn expanded_traces(&self) -> Vec<PathTrace> {
        self.traces
            .iter()
            .map(|(dict_idx, tt)| {
                let compacted = tt.to_path_trace();
                self.dicts[*dict_idx as usize].expand(&compacted)
            })
            .collect()
    }
}

/// A fully compacted TWPP: the dynamic call graph plus one
/// [`FunctionBlock`] per function, ordered most-frequently-called first
/// (the archive layout order of the paper's access-time study).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompactedTwpp {
    /// The dynamic call graph (trace indices refer into the function
    /// blocks' trace lists).
    pub dcg: Dcg,
    /// Per-function blocks, most-called first.
    pub functions: Vec<FunctionBlock>,
}

impl CompactedTwpp {
    /// The block of `func`, if the function was ever called.
    pub fn function(&self, func: FuncId) -> Option<&FunctionBlock> {
        self.functions.iter().find(|fb| fb.func == func)
    }

    /// How often each unique trace of `func` was executed: the *hot path*
    /// frequencies of the paper's profile-guided-optimization use case.
    /// Index `i` counts the activations whose `trace_idx` is `i`; the DCG
    /// provides the counts.
    pub fn trace_frequencies(&self, func: FuncId) -> Vec<u64> {
        let n = self
            .function(func)
            .map(|fb| fb.traces.len())
            .unwrap_or(0);
        let mut freqs = vec![0u64; n];
        for (_, node) in self.dcg.iter() {
            if node.func == func {
                freqs[node.trace_idx as usize] += 1;
            }
        }
        freqs
    }

    /// The hottest unique traces of `func`: `(trace index, frequency)`
    /// pairs sorted most-frequent first.
    pub fn hot_paths(&self, func: FuncId) -> Vec<(u32, u64)> {
        let mut pairs: Vec<(u32, u64)> = self
            .trace_frequencies(func)
            .into_iter()
            .enumerate()
            .map(|(i, c)| (i as u32, c))
            .collect();
        pairs.sort_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        pairs
    }

    /// Reconstructs the original raw WPP event stream — the proof that the
    /// whole pipeline is lossless.
    pub fn reconstruct(&self) -> RawWpp {
        let traces: BTreeMap<FuncId, Vec<PathTrace>> = self
            .functions
            .iter()
            .map(|fb| (fb.func, fb.expanded_traces()))
            .collect();
        let part = PartitionedWpp {
            dcg: self.dcg.clone(),
            traces,
        };
        part.reconstruct()
    }

    /// Total serialized trace bytes across all functions.
    pub fn trace_bytes(&self) -> usize {
        self.functions.iter().map(FunctionBlock::trace_bytes).sum()
    }

    /// Total serialized dictionary bytes across all functions.
    pub fn dict_bytes(&self) -> usize {
        self.functions.iter().map(FunctionBlock::dict_bytes).sum()
    }
}

/// Options controlling how the compaction pipeline executes. The options
/// affect only scheduling, never the bytes produced.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CompactOptions {
    /// Worker count for the per-function stages. `None` resolves through
    /// [`crate::par::resolve_threads`]: the `TWPP_THREADS` environment
    /// variable if set, otherwise the hardware's parallelism.
    pub threads: Option<usize>,
}

impl CompactOptions {
    /// Options pinning an explicit worker count.
    pub fn with_threads(threads: usize) -> CompactOptions {
        CompactOptions {
            threads: Some(threads),
        }
    }
}

/// Options for the governed pipeline entry point
/// [`compact_governed`]: scheduling plus a resource envelope, a
/// degradation policy, and an optional fault-injection plan.
#[derive(Clone, Debug)]
pub struct GovOptions {
    /// Worker count, resolved like [`CompactOptions::threads`].
    pub threads: Option<usize>,
    /// Resource envelope checked at stage boundaries and per function.
    /// Exhaustion is a **hard stop** ([`PipelineError::Budget`]) — a
    /// deadlined run never yields a partially-built archive.
    pub budget: Budget,
    /// `true` (the default, matching the pre-governance pipeline):
    /// a panicking per-function stage propagates on the calling thread.
    /// `false`: each per-function stage runs panic-isolated; a failure
    /// becomes a [`FunctionOutcome::Failed`] entry in
    /// [`PipelineStats::degraded`] while every other function completes.
    pub fail_fast: bool,
    /// Deterministic fault injection (tests and the CLI harness).
    pub faults: FaultPlan,
    /// Observability sink. [`Obs::noop`] (the default) records nothing
    /// and costs one branch per instrumentation point; an enabled
    /// observer collects stage spans, per-worker spans and the
    /// `twpp_core_*` metrics. Never influences output bytes.
    pub obs: Obs,
}

impl Default for GovOptions {
    fn default() -> Self {
        GovOptions {
            threads: None,
            budget: Budget::unlimited(),
            fail_fast: true,
            faults: FaultPlan::none(),
            obs: Obs::noop(),
        }
    }
}

impl GovOptions {
    /// Governed options with the degrade policy enabled.
    pub fn degrade() -> GovOptions {
        GovOptions {
            fail_fast: false,
            ..GovOptions::default()
        }
    }
}

/// Errors from the governed pipeline.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The event stream was malformed.
    Partition(PartitionError),
    /// The resource envelope was exhausted (deadline, step cap, byte
    /// cap, or cancellation). Nothing partial is returned: archives are
    /// either complete-modulo-degraded-functions or not written at all.
    Budget(StopReason),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Partition(e) => write!(f, "{e}"),
            PipelineError::Budget(r) => write!(f, "budget exhausted: {r}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<PartitionError> for PipelineError {
    fn from(e: PartitionError) -> Self {
        PipelineError::Partition(e)
    }
}

impl From<StopReason> for PipelineError {
    fn from(r: StopReason) -> Self {
        PipelineError::Budget(r)
    }
}

/// A function whose per-function compaction stage failed under the
/// degrade policy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FailedFunction {
    /// The function whose stage failed.
    pub func: FuncId,
    /// Its call count (preserved so the archive footer can record the
    /// failure with its original frequency rank).
    pub call_count: u64,
    /// Which stage failed (currently always the fused per-function
    /// DBB/TWPP/TsSet stage, `"compact"`).
    pub stage: &'static str,
    /// The panic message or error that killed the stage.
    pub reason: String,
}

/// The outcome of one function's per-function stage under the degrade
/// policy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FunctionOutcome {
    /// The stage completed; the block is part of the output.
    Built(FunctionBlock),
    /// The stage panicked or errored; the function is excluded from the
    /// output and recorded in [`PipelineStats::degraded`].
    Failed(FailedFunction),
}

/// The set of functions that failed during a degraded run. Empty on a
/// clean run — and a clean degraded run is byte-identical to the
/// fail-fast pipeline.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DegradedReport {
    /// Failed functions, in deterministic function-id order.
    pub failed: Vec<FailedFunction>,
}

impl DegradedReport {
    /// Whether every function completed.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Number of failed functions.
    pub fn len(&self) -> usize {
        self.failed.len()
    }
}

impl std::fmt::Display for DegradedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.failed.is_empty() {
            return write!(f, "degraded: none");
        }
        writeln!(f, "degraded: {} function(s) failed", self.failed.len())?;
        for fail in &self.failed {
            writeln!(
                f,
                "  {} (calls {}): {} stage: {}",
                fail.func, fail.call_count, fail.stage, fail.reason
            )?;
        }
        Ok(())
    }
}

/// Wall-clock nanoseconds spent in each pipeline stage, surfaced by the
/// CLI's `--stats` output and the bench crate's scaling experiment.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct StageTimings {
    /// Stage 1: partitioning the WPP into per-call traces + DCG.
    pub partition_nanos: u64,
    /// Stage 2: redundant path trace elimination.
    pub dedup_nanos: u64,
    /// Stages 3+4: DBB dictionaries and TWPP inversion (the parallel
    /// per-function stage).
    pub function_stage_nanos: u64,
    /// Stage 5: LZW compression of the serialized DCG.
    pub dcg_compress_nanos: u64,
    /// Archive frame encoding ([`ArchiveWriter`](crate::archive::ArchiveWriter)
    /// commit). The pipeline itself leaves this 0; callers that encode an
    /// archive (the CLI, the bench harness) fill it in so
    /// [`StageTimings::total_nanos`] stops undercounting governed runs.
    pub archive_encode_nanos: u64,
}

impl StageTimings {
    /// Sum of all recorded stage times (including archive encoding when
    /// the caller recorded it).
    pub fn total_nanos(&self) -> u64 {
        self.partition_nanos
            .saturating_add(self.dedup_nanos)
            .saturating_add(self.function_stage_nanos)
            .saturating_add(self.dcg_compress_nanos)
            .saturating_add(self.archive_encode_nanos)
    }

    /// Stage timings as stable `(name, nanos)` rows — the order used by
    /// the `--stats` table and the RunReport `timings_nanos` object.
    pub fn named_rows(&self) -> [(&'static str, u64); 5] {
        [
            ("partition", self.partition_nanos),
            ("dedup", self.dedup_nanos),
            ("function_stage", self.function_stage_nanos),
            ("dcg_compress", self.dcg_compress_nanos),
            ("archive_encode", self.archive_encode_nanos),
        ]
    }
}

/// Per-stage size accounting for one WPP, in bytes. Produces the rows of
/// Tables 1–3.
#[derive(Clone, PartialEq, Debug)]
pub struct PipelineStats {
    /// Raw WPP sizes (Table 1): DCG = enter/exit events, traces = block
    /// events.
    pub raw: RawSizes,
    /// Uncompacted per-call path trace bytes (equals `raw.trace_bytes`).
    pub owpp_trace_bytes: usize,
    /// Trace bytes after redundant path trace elimination (Table 2 col 1).
    pub after_dedup_bytes: usize,
    /// Trace bytes after DBB dictionary creation (Table 2 col 2),
    /// excluding the dictionaries themselves.
    pub after_dict_bytes: usize,
    /// Serialized compacted TWPP trace bytes (Table 2 col 3).
    pub ctwpp_trace_bytes: usize,
    /// Serialized DBB dictionary bytes (Table 3).
    pub dict_bytes: usize,
    /// Raw serialized DCG bytes.
    pub dcg_raw_bytes: usize,
    /// LZW-compressed DCG bytes (Table 3).
    pub dcg_compressed_bytes: usize,
    /// Per-function call/unique-trace counts (Figure 8).
    pub redundancy: RedundancyStats,
    /// Wall-clock time spent in each stage.
    pub timings: StageTimings,
    /// How the parallel per-function stage spread over workers.
    pub workers: WorkerReport,
    /// Functions whose per-function stage failed under the degrade
    /// policy. Always empty for the fail-fast entry points.
    pub degraded: DegradedReport,
}

impl PipelineStats {
    /// Compaction factor of redundant path trace elimination.
    pub fn dedup_factor(&self) -> f64 {
        ratio(self.owpp_trace_bytes, self.after_dedup_bytes)
    }

    /// Compaction factor of DBB dictionary creation.
    pub fn dict_factor(&self) -> f64 {
        ratio(self.after_dedup_bytes, self.after_dict_bytes)
    }

    /// Compaction factor of the TWPP transformation (can be below 1, as for
    /// `099.go` in the paper).
    pub fn twpp_factor(&self) -> f64 {
        ratio(self.after_dict_bytes, self.ctwpp_trace_bytes)
    }

    /// OWPP/CTWPP trace-only compression factor (Table 2's last column).
    pub fn trace_factor(&self) -> f64 {
        ratio(self.owpp_trace_bytes, self.ctwpp_trace_bytes)
    }

    /// Total compacted size: DCG + traces + dictionaries (Table 3).
    pub fn total_compacted_bytes(&self) -> usize {
        self.dcg_compressed_bytes + self.ctwpp_trace_bytes + self.dict_bytes
    }

    /// Overall compaction factor (Table 3's last column; 7–64 in the
    /// paper).
    pub fn overall_factor(&self) -> f64 {
        ratio(self.raw.total(), self.total_compacted_bytes())
    }

    /// Rebases these stats into the [`RunReport`](crate::obs::RunReport)
    /// pipeline section (stable field naming, DESIGN.md §13).
    pub fn to_section(&self) -> crate::obs::PipelineSection {
        let t = &self.timings;
        let mut timings: Vec<(&'static str, u64)> = t.named_rows().to_vec();
        timings.push(("total", t.total_nanos()));
        crate::obs::PipelineSection {
            raw_total_bytes: self.raw.total() as u64,
            raw_dcg_bytes: self.raw.dcg_bytes as u64,
            raw_trace_bytes: self.raw.trace_bytes as u64,
            after_dedup_bytes: self.after_dedup_bytes as u64,
            after_dict_bytes: self.after_dict_bytes as u64,
            ctwpp_trace_bytes: self.ctwpp_trace_bytes as u64,
            dict_bytes: self.dict_bytes as u64,
            dcg_compressed_bytes: self.dcg_compressed_bytes as u64,
            total_compacted_bytes: self.total_compacted_bytes() as u64,
            overall_factor: self.overall_factor(),
            timings,
            worker_threads: self.workers.threads as u64,
            items_per_worker: self.workers.items_per_worker.clone(),
            degraded: self
                .degraded
                .failed
                .iter()
                .map(|f| {
                    (
                        f.func.as_u32(),
                        f.call_count,
                        f.stage.to_string(),
                        f.reason.clone(),
                    )
                })
                .collect(),
        }
    }
}

/// Size ratio `a / b` with the divide-by-zero convention used by every
/// compaction factor: an empty denominator yields `+∞` (compaction of
/// something into nothing), and `0 / 0` is also `+∞` by that rule.
pub fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        f64::INFINITY
    } else {
        a as f64 / b as f64
    }
}

/// Runs the full compaction pipeline on the default worker count
/// (`TWPP_THREADS` if set, otherwise the hardware's parallelism).
///
/// # Errors
///
/// Returns a [`PartitionError`] if the event stream is malformed.
pub fn compact(wpp: &RawWpp) -> Result<CompactedTwpp, PartitionError> {
    compact_with_stats(wpp).map(|(c, _)| c)
}

/// Runs the full compaction pipeline, also returning per-stage statistics,
/// on the default worker count.
///
/// # Errors
///
/// Returns a [`PartitionError`] if the event stream is malformed.
pub fn compact_with_stats(wpp: &RawWpp) -> Result<(CompactedTwpp, PipelineStats), PartitionError> {
    compact_with_stats_threads(wpp, CompactOptions::default())
}

/// Runs the full compaction pipeline with explicit [`CompactOptions`].
///
/// The per-function stages — redundancy elimination, DBB dictionary
/// building, TWPP inversion and timestamp-series compaction — never cross
/// function boundaries, so they fan across the worker pool; results are
/// folded in function order, making the output **byte-identical for every
/// thread count** (property-tested in `tests/parallel.rs`).
///
/// # Errors
///
/// Returns a [`PartitionError`] if the event stream is malformed.
pub fn compact_with_stats_threads(
    wpp: &RawWpp,
    options: CompactOptions,
) -> Result<(CompactedTwpp, PipelineStats), PartitionError> {
    let gov = GovOptions {
        threads: options.threads,
        ..GovOptions::default()
    };
    compact_governed(wpp, &gov).map_err(|e| match e {
        PipelineError::Partition(p) => p,
        // Unreachable: the unlimited budget's private cancel token is
        // never cancelled and no other limit is configured.
        PipelineError::Budget(_) => PartitionError::LimitExceeded("unlimited budget exhausted"),
    })
}

/// Runs the full compaction pipeline under a [`Budget`], with optional
/// panic-isolated graceful degradation and fault injection.
///
/// Semantics:
///
/// * **Budget exhaustion is a hard stop** — the pipeline returns
///   [`PipelineError::Budget`] and produces *no* output, so a deadlined
///   or cancelled run can never commit a partially-built archive. The
///   budget is checked at every stage boundary and charged per event
///   after partitioning and per unique trace inside the per-function
///   stage.
/// * **Panics degrade (when `fail_fast` is `false`)** — each
///   per-function stage runs under `catch_unwind`; a panicking or
///   erroring function becomes a [`FailedFunction`] in
///   [`PipelineStats::degraded`] (deterministic function-id order) while
///   every other function completes normally. With `fail_fast: true`
///   (the default, and the path the legacy entry points take) a panic
///   propagates on the calling thread exactly as before.
/// * **No fault ⇒ byte identity** — with an unlimited budget and no
///   injected fault, the output is byte-identical to
///   [`compact_with_stats_threads`] for every thread count and policy
///   (property-tested in `tests/governance.rs`).
///
/// # Errors
///
/// [`PipelineError::Partition`] for malformed event streams (or, in
/// fail-fast mode, a malformed single function);
/// [`PipelineError::Budget`] when the envelope is exhausted.
pub fn compact_governed(
    wpp: &RawWpp,
    options: &GovOptions,
) -> Result<(CompactedTwpp, PipelineStats), PipelineError> {
    let obs = &options.obs;
    let result = {
        let _run = obs.span("compact");
        compact_governed_inner(wpp, options)
    };
    if obs.is_enabled() {
        match &result {
            Ok((compacted, stats)) => {
                record_pipeline_metrics(obs, wpp, compacted, stats, &options.budget)
            }
            Err(PipelineError::Budget(reason)) => {
                obs.counter(
                    "twpp_core_budget_stops_total",
                    "Pipeline runs hard-stopped by budget exhaustion",
                )
                .inc();
                if *reason == StopReason::Cancelled {
                    obs.counter(
                        "twpp_core_cancellations_total",
                        "Pipeline runs stopped by cooperative cancellation",
                    )
                    .inc();
                }
            }
            Err(PipelineError::Partition(_)) => {}
        }
    }
    result
}

/// Records the `twpp_core_*` metrics of one successful pipeline run.
/// Only called with an enabled observer, so handle registration cost is
/// off the noop path entirely.
fn record_pipeline_metrics(
    obs: &Obs,
    wpp: &RawWpp,
    compacted: &CompactedTwpp,
    stats: &PipelineStats,
    budget: &Budget,
) {
    obs.counter(
        "twpp_core_events_processed_total",
        "Raw WPP events consumed by the compaction pipeline",
    )
    .add(wpp.event_count() as u64);
    obs.counter(
        "twpp_core_functions_total",
        "Functions carried through the per-function stage",
    )
    .add(compacted.functions.len() as u64);
    let unique: u64 = compacted
        .functions
        .iter()
        .map(|fb| fb.traces.len() as u64)
        .sum();
    obs.counter(
        "twpp_core_unique_traces_total",
        "Unique path traces surviving redundancy elimination",
    )
    .add(unique);
    obs.counter(
        "twpp_core_panics_isolated_total",
        "Per-function stages that panicked and were isolated (degrade mode)",
    )
    .add(stats.degraded.len() as u64);
    obs.gauge("twpp_core_raw_bytes", "Raw WPP input bytes")
        .set(clamp_i64(stats.raw.total()));
    obs.gauge(
        "twpp_core_after_dedup_bytes",
        "Trace bytes after redundant-trace elimination",
    )
    .set(clamp_i64(stats.after_dedup_bytes));
    obs.gauge(
        "twpp_core_after_dict_bytes",
        "Trace bytes after DBB dictionary creation",
    )
    .set(clamp_i64(stats.after_dict_bytes));
    obs.gauge(
        "twpp_core_ctwpp_trace_bytes",
        "Compacted TWPP trace bytes",
    )
    .set(clamp_i64(stats.ctwpp_trace_bytes));
    obs.gauge("twpp_core_dict_bytes", "Serialized DBB dictionary bytes")
        .set(clamp_i64(stats.dict_bytes));
    obs.gauge(
        "twpp_core_dcg_compressed_bytes",
        "LZW-compressed dynamic call graph bytes",
    )
    .set(clamp_i64(stats.dcg_compressed_bytes));
    let per_func = obs.histogram(
        "twpp_core_traces_per_function",
        "Unique traces per function",
        &[1, 2, 4, 8, 16, 32, 64, 128],
    );
    for fb in &compacted.functions {
        per_func.observe(fb.traces.len() as u64);
    }
    record_budget_metrics(obs, &stats.workers, budget);
}

/// Budget counters shared by compact and (via re-use) query paths.
fn record_budget_metrics(obs: &Obs, workers: &WorkerReport, budget: &Budget) {
    obs.gauge(
        "twpp_core_worker_threads",
        "Worker-pool threads used by the per-function stage",
    )
    .set(clamp_i64(workers.threads));
    if !budget.is_unlimited() {
        obs.counter(
            "twpp_core_budget_steps_total",
            "Budget steps consumed by governed stages",
        )
        .add(budget.steps_used());
        obs.counter(
            "twpp_core_budget_bytes_total",
            "Budget bytes consumed by governed stages",
        )
        .add(budget.bytes_used());
    }
}

/// Clamps a `usize` into the `i64` range a gauge stores.
fn clamp_i64(v: usize) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

fn compact_governed_inner(
    wpp: &RawWpp,
    options: &GovOptions,
) -> Result<(CompactedTwpp, PipelineStats), PipelineError> {
    let budget = &options.budget;
    let obs = &options.obs;
    budget.check()?;
    let raw = wpp.size_breakdown();

    // Stage 1: partition into path traces + DCG. The event count is the
    // natural unit for `--max-events`.
    let started = Instant::now();
    let part = {
        let _s = obs.span("partition");
        partition(wpp)?
    };
    let partition_nanos = elapsed_nanos(started);
    budget.charge_steps(wpp.event_count() as u64)?;
    budget.charge_bytes(wpp.byte_len() as u64)?;
    compact_partitioned_inner(part, raw, partition_nanos, options)
}

/// Runs stages 2–5 of the pipeline (dedup, per-function DBB/TWPP/TsSet,
/// sort, DCG compression) over an already-partitioned WPP.
///
/// This is the seam the streaming [`Compactor`](crate::ingest::Compactor)
/// shares with the batch entry points: batch compaction partitions a
/// whole event stream and calls this; the ingest layer partitions each
/// sealed window (with its open-activation context re-entered) and calls
/// this, so segments and whole-trace archives are built by the exact
/// same code and stay byte-compatible. `raw` is the size breakdown of
/// the events `part` was built from (for the stats' compression
/// factors).
///
/// # Errors
///
/// [`PipelineError::Budget`] on envelope exhaustion,
/// [`PipelineError::Partition`] if a per-function stage rejects its
/// input under the fail-fast policy.
pub fn compact_partitioned_governed(
    part: PartitionedWpp,
    raw: RawSizes,
    options: &GovOptions,
) -> Result<(CompactedTwpp, PipelineStats), PipelineError> {
    compact_partitioned_inner(part, raw, 0, options)
}

fn compact_partitioned_inner(
    mut part: PartitionedWpp,
    raw: RawSizes,
    partition_nanos: u64,
    options: &GovOptions,
) -> Result<(CompactedTwpp, PipelineStats), PipelineError> {
    let threads = par::resolve_threads(options.threads);
    let budget = &options.budget;
    let obs = &options.obs;
    let owpp_trace_bytes = part.trace_bytes();

    // Stage 2: redundant path trace elimination (per-function, parallel).
    let started = Instant::now();
    let redundancy = {
        let _s = obs.span("dedup");
        eliminate_redundancy_threads(&mut part, threads)
    };
    let dedup_nanos = elapsed_nanos(started);
    budget.check()?;
    let after_dedup_bytes = part.trace_bytes();

    // Stage 3 + 4: DBB dictionaries, then the TWPP inversion, per
    // function. Each function's work is independent: fan it across the
    // pool and fold the results in function order.
    let started = Instant::now();
    let call_counts: HashMap<FuncId, u64> = part.dcg.call_counts().into_iter().collect();
    let entries: Vec<(&FuncId, &Vec<PathTrace>)> = part.traces.iter().collect();
    let faults = &options.faults;
    let build = |_: usize, entry: &(&FuncId, &Vec<PathTrace>)| -> BuildResult {
        let (&func, traces) = *entry;
        if let Err(reason) = budget.charge_steps(traces.len() as u64) {
            return BuildResult::Stopped(reason);
        }
        faults.apply_delay();
        faults.maybe_panic(func);
        match build_function_block(func, traces, &call_counts) {
            Ok((fb, bytes)) => BuildResult::Built(Box::new(fb), bytes),
            Err(e) => BuildResult::Errored(e),
        }
    };

    let mut after_dict_bytes = 0usize;
    let mut functions: Vec<FunctionBlock> = Vec::with_capacity(entries.len());
    let mut failed: Vec<FailedFunction> = Vec::new();
    let workers;
    if options.fail_fast {
        // Pre-governance semantics: a panicking worker propagates via
        // `resume_unwind` on the calling thread; an errored function
        // fails the whole run.
        let (built, report) =
            par::map_indexed_observed(&entries, threads, obs, "function_stage", build);
        workers = report;
        for r in built {
            match r {
                BuildResult::Built(fb, bytes) => {
                    after_dict_bytes += bytes;
                    functions.push(*fb);
                }
                BuildResult::Errored(e) => return Err(PipelineError::Partition(e)),
                BuildResult::Stopped(reason) => return Err(PipelineError::Budget(reason)),
            }
        }
    } else {
        // Degrade mode: every per-function stage is panic-isolated; one
        // poisoned function becomes a FailedFunction entry instead of
        // aborting the run. Budget exhaustion still hard-stops.
        let (built, report) =
            par::map_indexed_isolated_observed(&entries, threads, obs, "function_stage", build);
        workers = report;
        for (i, r) in built.into_iter().enumerate() {
            let (&func, _) = entries[i];
            let call_count = call_counts.get(&func).copied().unwrap_or(0);
            let outcome = match r {
                Ok(BuildResult::Built(fb, bytes)) => FunctionOutcome::Built({
                    after_dict_bytes += bytes;
                    *fb
                }),
                Ok(BuildResult::Errored(e)) => FunctionOutcome::Failed(FailedFunction {
                    func,
                    call_count,
                    stage: "compact",
                    reason: e.to_string(),
                }),
                Ok(BuildResult::Stopped(reason)) => return Err(PipelineError::Budget(reason)),
                Err(panic_msg) => FunctionOutcome::Failed(FailedFunction {
                    func,
                    call_count,
                    stage: "compact",
                    reason: panic_msg,
                }),
            };
            match outcome {
                FunctionOutcome::Built(fb) => functions.push(fb),
                FunctionOutcome::Failed(ff) => failed.push(ff),
            }
        }
    }
    // Most frequently called functions first (ties broken by id for
    // determinism).
    functions.sort_by(|a, b| {
        b.call_count
            .cmp(&a.call_count)
            .then(a.func.cmp(&b.func))
    });
    failed.sort_by_key(|f| f.func);
    let function_stage_nanos = elapsed_nanos(started);
    budget.check()?;

    // Stage 5: DCG compression.
    let started = Instant::now();
    let (dcg_bytes, dcg_compressed_bytes) = {
        let _s = obs.span("dcg_compress");
        let dcg_words = part.dcg.to_words();
        let dcg_bytes: Vec<u8> = dcg_words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let compressed = lzw::compressed_size(&dcg_bytes);
        (dcg_bytes, compressed)
    };
    let dcg_compress_nanos = elapsed_nanos(started);
    budget.charge_bytes(dcg_bytes.len() as u64)?;

    let compacted = CompactedTwpp {
        dcg: part.dcg,
        functions,
    };
    let stats = PipelineStats {
        raw,
        owpp_trace_bytes,
        after_dedup_bytes,
        after_dict_bytes,
        ctwpp_trace_bytes: compacted.trace_bytes(),
        dict_bytes: compacted.dict_bytes(),
        dcg_raw_bytes: dcg_bytes.len(),
        dcg_compressed_bytes,
        redundancy,
        timings: StageTimings {
            partition_nanos,
            dedup_nanos,
            function_stage_nanos,
            dcg_compress_nanos,
            // Archive encoding happens outside the pipeline; callers
            // that encode (the CLI, the bench harness) fill this in.
            archive_encode_nanos: 0,
        },
        workers,
        degraded: DegradedReport { failed },
    };
    Ok((compacted, stats))
}

/// The per-function stage's tri-state result, carried through the worker
/// pool so budget stops and partition errors survive the fan-out.
enum BuildResult {
    Built(Box<FunctionBlock>, usize),
    Errored(PartitionError),
    Stopped(StopReason),
}

/// Builds one function's [`FunctionBlock`] — DBB dictionary creation, the
/// TWPP inversion and timestamp-series compaction. Pure per function,
/// hence safe to run on worker threads. Also returns the function's
/// post-dictionary trace bytes (the Table 2 column 2 contribution).
fn build_function_block(
    func: FuncId,
    traces: &[PathTrace],
    call_counts: &HashMap<FuncId, u64>,
) -> Result<(FunctionBlock, usize), PartitionError> {
    let mut after_dict_bytes = 0usize;
    let mut dicts: Vec<DbbDictionary> = Vec::new();
    let mut dict_index: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut tts: Vec<(u32, TimestampedTrace)> = Vec::with_capacity(traces.len());
    for trace in traces {
        let compacted = compact_trace(trace);
        after_dict_bytes += compacted.trace.byte_size();
        // Deduplicate identical dictionaries via their debug-stable key.
        let key = dict_key(&compacted.dictionary);
        let next = u32::try_from(dicts.len())
            .map_err(|_| PartitionError::LimitExceeded("dictionary count exceeds u32"))?;
        let idx = *dict_index.entry(key).or_insert(next);
        if idx == next {
            dicts.push(compacted.dictionary);
        }
        tts.push((idx, TimestampedTrace::from_path_trace(&compacted.trace)));
    }
    Ok((
        FunctionBlock {
            func,
            call_count: call_counts.get(&func).copied().unwrap_or(0),
            dicts,
            traces: tts,
        },
        after_dict_bytes,
    ))
}

/// Elapsed nanoseconds since `started`, saturating at `u64::MAX`.
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A canonical byte key for dictionary deduplication.
fn dict_key(dict: &DbbDictionary) -> Vec<u8> {
    let mut key = Vec::new();
    for (head, chain) in dict.iter() {
        key.extend_from_slice(&head.as_u32().to_le_bytes());
        key.extend_from_slice(&(chain.len() as u32).to_le_bytes());
        for b in chain {
            key.extend_from_slice(&b.as_u32().to_le_bytes());
        }
    }
    key
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use twpp_ir::BlockId;
    use twpp_tracer::WppEvent;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    /// The paper's running example (Figures 1-7): main's loop calls f five
    /// times; f loops three times per call over one of two paths.
    fn figure1() -> RawWpp {
        let t1: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10];
        let t2: Vec<u32> = vec![1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10];
        let calls = [&t2, &t2, &t1, &t2, &t1];
        let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(BlockId::new(1))];
        for t in calls {
            events.push(WppEvent::Block(BlockId::new(2)));
            events.push(WppEvent::Block(BlockId::new(3)));
            events.push(WppEvent::Enter(f(1)));
            for &x in t.iter() {
                events.push(WppEvent::Block(BlockId::new(x)));
            }
            events.push(WppEvent::Exit);
            events.push(WppEvent::Block(BlockId::new(4)));
        }
        events.push(WppEvent::Block(BlockId::new(6)));
        events.push(WppEvent::Exit);
        RawWpp::from_events(&events)
    }

    #[test]
    fn figures_1_through_7_pipeline() {
        let wpp = figure1();
        let (c, stats) = compact_with_stats(&wpp).unwrap();

        // Figure 3: redundancy removal leaves 2 unique traces for f.
        assert_eq!(stats.redundancy.per_func[&f(1)], (5, 2));
        assert!(stats.dedup_factor() > 1.0);

        // Figure 5: each of f's traces compacts against a DBB dictionary.
        let fb = c.function(f(1)).unwrap();
        assert_eq!(fb.traces.len(), 2);
        // Each unique trace 1.(2..6)^3.10 becomes 1.2.2.2.10 -> 5 positions.
        for (_, tt) in &fb.traces {
            assert_eq!(tt.len(), 5);
        }

        // Figure 7: timestamps of the repeated DBB form one series.
        let (_, tt) = &fb.traces[0];
        let ts = tt.ts_of(BlockId::new(2)).unwrap();
        assert_eq!(ts.to_string(), "{2:4}");
        assert_eq!(ts.to_wire().unwrap(), vec![2, -4]);

        // The pipeline is lossless end to end.
        assert_eq!(c.reconstruct(), wpp);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (c, stats) = compact_with_stats(&figure1()).unwrap();
        assert_eq!(stats.owpp_trace_bytes, stats.raw.trace_bytes);
        assert!(stats.after_dedup_bytes <= stats.owpp_trace_bytes);
        assert!(stats.after_dict_bytes <= stats.after_dedup_bytes);
        assert_eq!(stats.ctwpp_trace_bytes, c.trace_bytes());
        assert_eq!(stats.dict_bytes, c.dict_bytes());
        assert!(stats.total_compacted_bytes() > 0);
        assert!(stats.overall_factor() > 0.0);
    }

    #[test]
    fn hot_paths_rank_unique_traces_by_frequency() {
        let (c, _) = compact_with_stats(&figure1()).unwrap();
        // f's calls follow trace pattern B,B,A,B,A: the B-trace (stored
        // first) is hotter.
        let freqs = c.trace_frequencies(f(1));
        assert_eq!(freqs.iter().sum::<u64>(), 5);
        let hot = c.hot_paths(f(1));
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].1, 3);
        assert_eq!(hot[1].1, 2);
        assert!(hot[0].1 >= hot[1].1);
        // Unknown functions have no paths.
        assert!(c.hot_paths(FuncId::from_index(9)).is_empty());
    }

    #[test]
    fn functions_ordered_by_call_count() {
        let (c, _) = compact_with_stats(&figure1()).unwrap();
        assert_eq!(c.functions[0].func, f(1)); // 5 calls
        assert_eq!(c.functions[1].func, f(0)); // 1 call
        assert!(c.functions[0].call_count >= c.functions[1].call_count);
    }

    #[test]
    fn identical_dictionaries_are_shared() {
        let (c, _) = compact_with_stats(&figure1()).unwrap();
        let fb = c.function(f(1)).unwrap();
        // Two traces, two distinct loop bodies -> two dictionaries; but
        // main has one trace and at most one dictionary.
        assert!(fb.dicts.len() <= 2);
        let mb = c.function(f(0)).unwrap();
        assert!(mb.dicts.len() <= 1);
    }

    #[test]
    fn empty_stream_errors() {
        assert!(compact(&RawWpp::new()).is_err());
    }

    #[test]
    fn ratio_divide_by_zero_semantics() {
        // Every compaction factor treats an empty denominator as infinite
        // compaction — including the degenerate 0/0.
        assert_eq!(ratio(10, 0), f64::INFINITY);
        assert_eq!(ratio(0, 0), f64::INFINITY);
        assert_eq!(ratio(0, 4), 0.0);
        assert_eq!(ratio(6, 3), 2.0);
        assert!(ratio(1, 3) > 0.0 && ratio(1, 3) < 1.0);
    }

    #[test]
    fn output_is_identical_for_every_thread_count() {
        let wpp = figure1();
        let (seq, _) = compact_with_stats_threads(&wpp, CompactOptions::with_threads(1)).unwrap();
        for threads in 2..=8 {
            let (par, stats) =
                compact_with_stats_threads(&wpp, CompactOptions::with_threads(threads)).unwrap();
            assert_eq!(par, seq, "compact diverged at {threads} threads");
            assert_eq!(stats.workers.total_items(), 2, "two functions processed");
        }
    }

    #[test]
    fn governed_matches_legacy_when_no_fault_fires() {
        let wpp = figure1();
        let (legacy, legacy_stats) = compact_with_stats(&wpp).unwrap();
        for fail_fast in [true, false] {
            let gov = GovOptions {
                fail_fast,
                ..GovOptions::default()
            };
            let (c, stats) = compact_governed(&wpp, &gov).unwrap();
            assert_eq!(c, legacy);
            assert_eq!(stats.ctwpp_trace_bytes, legacy_stats.ctwpp_trace_bytes);
            assert_eq!(stats.after_dict_bytes, legacy_stats.after_dict_bytes);
            assert!(stats.degraded.is_empty());
        }
    }

    #[test]
    fn governed_degrade_isolates_injected_panic() {
        let wpp = figure1();
        let gov = GovOptions {
            faults: crate::gov::FaultPlan::panic_on(f(1)),
            ..GovOptions::degrade()
        };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (c, stats) = compact_governed(&wpp, &gov).unwrap();
        std::panic::set_hook(prev);
        // f(1) failed; f(0) (main) survived.
        assert_eq!(c.functions.len(), 1);
        assert_eq!(c.functions[0].func, f(0));
        assert_eq!(stats.degraded.len(), 1);
        let fail = &stats.degraded.failed[0];
        assert_eq!(fail.func, f(1));
        assert_eq!(fail.call_count, 5);
        assert_eq!(fail.stage, "compact");
        assert!(fail.reason.contains("injected fault"), "got: {}", fail.reason);
    }

    #[test]
    fn governed_fail_fast_propagates_injected_panic() {
        let wpp = figure1();
        let gov = GovOptions {
            faults: crate::gov::FaultPlan::panic_on(f(1)),
            ..GovOptions::default()
        };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(|| compact_governed(&wpp, &gov));
        std::panic::set_hook(prev);
        assert!(result.is_err(), "fail-fast must propagate the panic");
    }

    #[test]
    fn governed_budget_exhaustion_is_a_hard_stop() {
        let wpp = figure1();
        // The stream has far more events than one step.
        let gov = GovOptions {
            budget: crate::gov::Limits::new().max_steps(1).start(),
            ..GovOptions::default()
        };
        match compact_governed(&wpp, &gov) {
            Err(PipelineError::Budget(reason)) => {
                assert_eq!(reason, crate::gov::StopReason::StepLimit)
            }
            other => panic!("expected budget stop, got {other:?}"),
        }
        // Cancellation also hard-stops, before any work happens.
        let gov = GovOptions::default();
        gov.budget.cancel_token().cancel();
        match compact_governed(&wpp, &gov) {
            Err(PipelineError::Budget(reason)) => {
                assert_eq!(reason, crate::gov::StopReason::Cancelled)
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn observed_run_records_spans_and_metrics_without_changing_output() {
        let wpp = figure1();
        let (plain, _) = compact_with_stats(&wpp).unwrap();
        let obs = crate::obs::Obs::collecting();
        let gov = GovOptions {
            obs: obs.clone(),
            ..GovOptions::default()
        };
        let (c, _) = compact_governed(&wpp, &gov).unwrap();
        // Observation never changes the produced bytes.
        assert_eq!(c, plain);
        let names: Vec<&str> = obs.spans().iter().map(|s| s.name).collect();
        for expected in ["compact", "partition", "dedup", "function_stage", "dcg_compress"] {
            assert!(names.contains(&expected), "missing span {expected}: {names:?}");
        }
        let snap = obs.snapshot();
        match snap.get("twpp_core_events_processed_total").map(|s| &s.value) {
            Some(crate::obs::SampleValue::Counter(n)) => {
                assert_eq!(*n, wpp.event_count() as u64)
            }
            other => panic!("missing events counter: {other:?}"),
        }
        match snap.get("twpp_core_unique_traces_total").map(|s| &s.value) {
            Some(crate::obs::SampleValue::Counter(n)) => assert_eq!(*n, 3), // f has 2, main 1
            other => panic!("missing unique traces counter: {other:?}"),
        }
        // A budget stop shows up as a stop counter.
        let obs2 = crate::obs::Obs::collecting();
        let gov = GovOptions {
            budget: crate::gov::Limits::new().max_steps(1).start(),
            obs: obs2.clone(),
            ..GovOptions::default()
        };
        assert!(compact_governed(&wpp, &gov).is_err());
        match obs2
            .snapshot()
            .get("twpp_core_budget_stops_total")
            .map(|s| &s.value)
        {
            Some(crate::obs::SampleValue::Counter(1)) => {}
            other => panic!("missing budget stop counter: {other:?}"),
        }
    }

    #[test]
    fn stats_carry_stage_timings_and_worker_report() {
        let (_, stats) =
            compact_with_stats_threads(&figure1(), CompactOptions::with_threads(2)).unwrap();
        // Wall clocks are monotone; every stage ran, so the total is the
        // sum of its parts (all finite).
        assert_eq!(
            stats.timings.total_nanos(),
            stats.timings.partition_nanos
                + stats.timings.dedup_nanos
                + stats.timings.function_stage_nanos
                + stats.timings.dcg_compress_nanos
                + stats.timings.archive_encode_nanos
        );
        // The pipeline itself never encodes an archive: the encode slot
        // is 0 until a caller (CLI / bench) fills it in, and the named
        // rows expose all five stages for the --stats table.
        assert_eq!(stats.timings.archive_encode_nanos, 0);
        let rows = stats.timings.named_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4].0, "archive_encode");
        let mut with_encode = stats.timings;
        with_encode.archive_encode_nanos = 17;
        assert_eq!(with_encode.total_nanos(), stats.timings.total_nanos() + 17);
        assert!(stats.workers.threads >= 1);
        assert_eq!(stats.workers.total_items(), 2);
        assert!(stats.workers.busy_workers() >= 1);
    }
}
