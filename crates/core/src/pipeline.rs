//! The full compaction pipeline: raw WPP → compacted TWPP, with per-stage
//! size accounting (the data behind Tables 2 and 3 of the paper).

#![deny(clippy::unwrap_used)]

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use twpp_ir::FuncId;
use twpp_tracer::raw::RawSizes;
use twpp_tracer::RawWpp;

use crate::dbb::{compact_trace, DbbDictionary};
use crate::dcg::Dcg;
use crate::dedup::{eliminate_redundancy_threads, RedundancyStats};
use crate::lzw;
use crate::par::{self, WorkerReport};
use crate::partition::{partition, PartitionError, PartitionedWpp};
use crate::timestamped::TimestampedTrace;
use crate::trace::PathTrace;

/// The per-function block of a compacted TWPP: every unique path trace of
/// the function in timestamped form, plus the DBB dictionaries they
/// reference. All the information about one function sits together, which
/// is what makes per-function queries fast.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionBlock {
    /// The function.
    pub func: FuncId,
    /// How many times it was called (used to order the archive layout).
    pub call_count: u64,
    /// Deduplicated DBB dictionaries.
    pub dicts: Vec<DbbDictionary>,
    /// Unique traces in timestamped form, each with the index of its
    /// dictionary in `dicts`. Order matches the DCG's `trace_idx`.
    pub traces: Vec<(u32, TimestampedTrace)>,
}

impl FunctionBlock {
    /// Serialized size in bytes of the timestamped traces (including each
    /// trace's dictionary-index word).
    pub fn trace_bytes(&self) -> usize {
        self.traces
            .iter()
            .map(|(_, tt)| 4 + tt.byte_size())
            .sum()
    }

    /// Serialized size in bytes of the dictionaries.
    pub fn dict_bytes(&self) -> usize {
        self.dicts.iter().map(|d| 4 + d.byte_size()).sum()
    }

    /// Expands every trace back to its original (pre-DBB) block sequence.
    pub fn expanded_traces(&self) -> Vec<PathTrace> {
        self.traces
            .iter()
            .map(|(dict_idx, tt)| {
                let compacted = tt.to_path_trace();
                self.dicts[*dict_idx as usize].expand(&compacted)
            })
            .collect()
    }
}

/// A fully compacted TWPP: the dynamic call graph plus one
/// [`FunctionBlock`] per function, ordered most-frequently-called first
/// (the archive layout order of the paper's access-time study).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompactedTwpp {
    /// The dynamic call graph (trace indices refer into the function
    /// blocks' trace lists).
    pub dcg: Dcg,
    /// Per-function blocks, most-called first.
    pub functions: Vec<FunctionBlock>,
}

impl CompactedTwpp {
    /// The block of `func`, if the function was ever called.
    pub fn function(&self, func: FuncId) -> Option<&FunctionBlock> {
        self.functions.iter().find(|fb| fb.func == func)
    }

    /// How often each unique trace of `func` was executed: the *hot path*
    /// frequencies of the paper's profile-guided-optimization use case.
    /// Index `i` counts the activations whose `trace_idx` is `i`; the DCG
    /// provides the counts.
    pub fn trace_frequencies(&self, func: FuncId) -> Vec<u64> {
        let n = self
            .function(func)
            .map(|fb| fb.traces.len())
            .unwrap_or(0);
        let mut freqs = vec![0u64; n];
        for (_, node) in self.dcg.iter() {
            if node.func == func {
                freqs[node.trace_idx as usize] += 1;
            }
        }
        freqs
    }

    /// The hottest unique traces of `func`: `(trace index, frequency)`
    /// pairs sorted most-frequent first.
    pub fn hot_paths(&self, func: FuncId) -> Vec<(u32, u64)> {
        let mut pairs: Vec<(u32, u64)> = self
            .trace_frequencies(func)
            .into_iter()
            .enumerate()
            .map(|(i, c)| (i as u32, c))
            .collect();
        pairs.sort_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        pairs
    }

    /// Reconstructs the original raw WPP event stream — the proof that the
    /// whole pipeline is lossless.
    pub fn reconstruct(&self) -> RawWpp {
        let traces: BTreeMap<FuncId, Vec<PathTrace>> = self
            .functions
            .iter()
            .map(|fb| (fb.func, fb.expanded_traces()))
            .collect();
        let part = PartitionedWpp {
            dcg: self.dcg.clone(),
            traces,
        };
        part.reconstruct()
    }

    /// Total serialized trace bytes across all functions.
    pub fn trace_bytes(&self) -> usize {
        self.functions.iter().map(FunctionBlock::trace_bytes).sum()
    }

    /// Total serialized dictionary bytes across all functions.
    pub fn dict_bytes(&self) -> usize {
        self.functions.iter().map(FunctionBlock::dict_bytes).sum()
    }
}

/// Options controlling how the compaction pipeline executes. The options
/// affect only scheduling, never the bytes produced.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CompactOptions {
    /// Worker count for the per-function stages. `None` resolves through
    /// [`crate::par::resolve_threads`]: the `TWPP_THREADS` environment
    /// variable if set, otherwise the hardware's parallelism.
    pub threads: Option<usize>,
}

impl CompactOptions {
    /// Options pinning an explicit worker count.
    pub fn with_threads(threads: usize) -> CompactOptions {
        CompactOptions {
            threads: Some(threads),
        }
    }
}

/// Wall-clock nanoseconds spent in each pipeline stage, surfaced by the
/// CLI's `--stats` output and the bench crate's scaling experiment.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct StageTimings {
    /// Stage 1: partitioning the WPP into per-call traces + DCG.
    pub partition_nanos: u64,
    /// Stage 2: redundant path trace elimination.
    pub dedup_nanos: u64,
    /// Stages 3+4: DBB dictionaries and TWPP inversion (the parallel
    /// per-function stage).
    pub function_stage_nanos: u64,
    /// Stage 5: LZW compression of the serialized DCG.
    pub dcg_compress_nanos: u64,
}

impl StageTimings {
    /// Sum of all recorded stage times.
    pub fn total_nanos(&self) -> u64 {
        self.partition_nanos
            .saturating_add(self.dedup_nanos)
            .saturating_add(self.function_stage_nanos)
            .saturating_add(self.dcg_compress_nanos)
    }
}

/// Per-stage size accounting for one WPP, in bytes. Produces the rows of
/// Tables 1–3.
#[derive(Clone, PartialEq, Debug)]
pub struct PipelineStats {
    /// Raw WPP sizes (Table 1): DCG = enter/exit events, traces = block
    /// events.
    pub raw: RawSizes,
    /// Uncompacted per-call path trace bytes (equals `raw.trace_bytes`).
    pub owpp_trace_bytes: usize,
    /// Trace bytes after redundant path trace elimination (Table 2 col 1).
    pub after_dedup_bytes: usize,
    /// Trace bytes after DBB dictionary creation (Table 2 col 2),
    /// excluding the dictionaries themselves.
    pub after_dict_bytes: usize,
    /// Serialized compacted TWPP trace bytes (Table 2 col 3).
    pub ctwpp_trace_bytes: usize,
    /// Serialized DBB dictionary bytes (Table 3).
    pub dict_bytes: usize,
    /// Raw serialized DCG bytes.
    pub dcg_raw_bytes: usize,
    /// LZW-compressed DCG bytes (Table 3).
    pub dcg_compressed_bytes: usize,
    /// Per-function call/unique-trace counts (Figure 8).
    pub redundancy: RedundancyStats,
    /// Wall-clock time spent in each stage.
    pub timings: StageTimings,
    /// How the parallel per-function stage spread over workers.
    pub workers: WorkerReport,
}

impl PipelineStats {
    /// Compaction factor of redundant path trace elimination.
    pub fn dedup_factor(&self) -> f64 {
        ratio(self.owpp_trace_bytes, self.after_dedup_bytes)
    }

    /// Compaction factor of DBB dictionary creation.
    pub fn dict_factor(&self) -> f64 {
        ratio(self.after_dedup_bytes, self.after_dict_bytes)
    }

    /// Compaction factor of the TWPP transformation (can be below 1, as for
    /// `099.go` in the paper).
    pub fn twpp_factor(&self) -> f64 {
        ratio(self.after_dict_bytes, self.ctwpp_trace_bytes)
    }

    /// OWPP/CTWPP trace-only compression factor (Table 2's last column).
    pub fn trace_factor(&self) -> f64 {
        ratio(self.owpp_trace_bytes, self.ctwpp_trace_bytes)
    }

    /// Total compacted size: DCG + traces + dictionaries (Table 3).
    pub fn total_compacted_bytes(&self) -> usize {
        self.dcg_compressed_bytes + self.ctwpp_trace_bytes + self.dict_bytes
    }

    /// Overall compaction factor (Table 3's last column; 7–64 in the
    /// paper).
    pub fn overall_factor(&self) -> f64 {
        ratio(self.raw.total(), self.total_compacted_bytes())
    }
}

/// Size ratio `a / b` with the divide-by-zero convention used by every
/// compaction factor: an empty denominator yields `+∞` (compaction of
/// something into nothing), and `0 / 0` is also `+∞` by that rule.
pub fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        f64::INFINITY
    } else {
        a as f64 / b as f64
    }
}

/// Runs the full compaction pipeline on the default worker count
/// (`TWPP_THREADS` if set, otherwise the hardware's parallelism).
///
/// # Errors
///
/// Returns a [`PartitionError`] if the event stream is malformed.
pub fn compact(wpp: &RawWpp) -> Result<CompactedTwpp, PartitionError> {
    compact_with_stats(wpp).map(|(c, _)| c)
}

/// Runs the full compaction pipeline, also returning per-stage statistics,
/// on the default worker count.
///
/// # Errors
///
/// Returns a [`PartitionError`] if the event stream is malformed.
pub fn compact_with_stats(wpp: &RawWpp) -> Result<(CompactedTwpp, PipelineStats), PartitionError> {
    compact_with_stats_threads(wpp, CompactOptions::default())
}

/// Runs the full compaction pipeline with explicit [`CompactOptions`].
///
/// The per-function stages — redundancy elimination, DBB dictionary
/// building, TWPP inversion and timestamp-series compaction — never cross
/// function boundaries, so they fan across the worker pool; results are
/// folded in function order, making the output **byte-identical for every
/// thread count** (property-tested in `tests/parallel.rs`).
///
/// # Errors
///
/// Returns a [`PartitionError`] if the event stream is malformed.
pub fn compact_with_stats_threads(
    wpp: &RawWpp,
    options: CompactOptions,
) -> Result<(CompactedTwpp, PipelineStats), PartitionError> {
    let threads = par::resolve_threads(options.threads);
    let raw = wpp.size_breakdown();

    // Stage 1: partition into path traces + DCG.
    let started = Instant::now();
    let mut part = partition(wpp)?;
    let partition_nanos = elapsed_nanos(started);
    let owpp_trace_bytes = part.trace_bytes();

    // Stage 2: redundant path trace elimination (per-function, parallel).
    let started = Instant::now();
    let redundancy = eliminate_redundancy_threads(&mut part, threads);
    let dedup_nanos = elapsed_nanos(started);
    let after_dedup_bytes = part.trace_bytes();

    // Stage 3 + 4: DBB dictionaries, then the TWPP inversion, per
    // function. Each function's work is independent: fan it across the
    // pool and fold the results in function order.
    let started = Instant::now();
    let call_counts: HashMap<FuncId, u64> = part.dcg.call_counts().into_iter().collect();
    let entries: Vec<(&FuncId, &Vec<PathTrace>)> = part.traces.iter().collect();
    let (built, workers) = par::map_indexed_report(&entries, threads, |_, &(&func, traces)| {
        build_function_block(func, traces, &call_counts)
    });
    let mut after_dict_bytes = 0usize;
    let mut functions: Vec<FunctionBlock> = Vec::with_capacity(built.len());
    for r in built {
        let (fb, dict_trace_bytes) = r?;
        after_dict_bytes += dict_trace_bytes;
        functions.push(fb);
    }
    // Most frequently called functions first (ties broken by id for
    // determinism).
    functions.sort_by(|a, b| {
        b.call_count
            .cmp(&a.call_count)
            .then(a.func.cmp(&b.func))
    });
    let function_stage_nanos = elapsed_nanos(started);

    // Stage 5: DCG compression.
    let started = Instant::now();
    let dcg_words = part.dcg.to_words();
    let dcg_bytes: Vec<u8> = dcg_words.iter().flat_map(|w| w.to_le_bytes()).collect();
    let dcg_compressed_bytes = lzw::compressed_size(&dcg_bytes);
    let dcg_compress_nanos = elapsed_nanos(started);

    let compacted = CompactedTwpp {
        dcg: part.dcg,
        functions,
    };
    let stats = PipelineStats {
        raw,
        owpp_trace_bytes,
        after_dedup_bytes,
        after_dict_bytes,
        ctwpp_trace_bytes: compacted.trace_bytes(),
        dict_bytes: compacted.dict_bytes(),
        dcg_raw_bytes: dcg_bytes.len(),
        dcg_compressed_bytes,
        redundancy,
        timings: StageTimings {
            partition_nanos,
            dedup_nanos,
            function_stage_nanos,
            dcg_compress_nanos,
        },
        workers,
    };
    Ok((compacted, stats))
}

/// Builds one function's [`FunctionBlock`] — DBB dictionary creation, the
/// TWPP inversion and timestamp-series compaction. Pure per function,
/// hence safe to run on worker threads. Also returns the function's
/// post-dictionary trace bytes (the Table 2 column 2 contribution).
fn build_function_block(
    func: FuncId,
    traces: &[PathTrace],
    call_counts: &HashMap<FuncId, u64>,
) -> Result<(FunctionBlock, usize), PartitionError> {
    let mut after_dict_bytes = 0usize;
    let mut dicts: Vec<DbbDictionary> = Vec::new();
    let mut dict_index: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut tts: Vec<(u32, TimestampedTrace)> = Vec::with_capacity(traces.len());
    for trace in traces {
        let compacted = compact_trace(trace);
        after_dict_bytes += compacted.trace.byte_size();
        // Deduplicate identical dictionaries via their debug-stable key.
        let key = dict_key(&compacted.dictionary);
        let next = u32::try_from(dicts.len())
            .map_err(|_| PartitionError::LimitExceeded("dictionary count exceeds u32"))?;
        let idx = *dict_index.entry(key).or_insert(next);
        if idx == next {
            dicts.push(compacted.dictionary);
        }
        tts.push((idx, TimestampedTrace::from_path_trace(&compacted.trace)));
    }
    Ok((
        FunctionBlock {
            func,
            call_count: call_counts.get(&func).copied().unwrap_or(0),
            dicts,
            traces: tts,
        },
        after_dict_bytes,
    ))
}

/// Elapsed nanoseconds since `started`, saturating at `u64::MAX`.
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A canonical byte key for dictionary deduplication.
fn dict_key(dict: &DbbDictionary) -> Vec<u8> {
    let mut key = Vec::new();
    for (head, chain) in dict.iter() {
        key.extend_from_slice(&head.as_u32().to_le_bytes());
        key.extend_from_slice(&(chain.len() as u32).to_le_bytes());
        for b in chain {
            key.extend_from_slice(&b.as_u32().to_le_bytes());
        }
    }
    key
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use twpp_ir::BlockId;
    use twpp_tracer::WppEvent;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    /// The paper's running example (Figures 1-7): main's loop calls f five
    /// times; f loops three times per call over one of two paths.
    fn figure1() -> RawWpp {
        let t1: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10];
        let t2: Vec<u32> = vec![1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10];
        let calls = [&t2, &t2, &t1, &t2, &t1];
        let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(BlockId::new(1))];
        for t in calls {
            events.push(WppEvent::Block(BlockId::new(2)));
            events.push(WppEvent::Block(BlockId::new(3)));
            events.push(WppEvent::Enter(f(1)));
            for &x in t.iter() {
                events.push(WppEvent::Block(BlockId::new(x)));
            }
            events.push(WppEvent::Exit);
            events.push(WppEvent::Block(BlockId::new(4)));
        }
        events.push(WppEvent::Block(BlockId::new(6)));
        events.push(WppEvent::Exit);
        RawWpp::from_events(&events)
    }

    #[test]
    fn figures_1_through_7_pipeline() {
        let wpp = figure1();
        let (c, stats) = compact_with_stats(&wpp).unwrap();

        // Figure 3: redundancy removal leaves 2 unique traces for f.
        assert_eq!(stats.redundancy.per_func[&f(1)], (5, 2));
        assert!(stats.dedup_factor() > 1.0);

        // Figure 5: each of f's traces compacts against a DBB dictionary.
        let fb = c.function(f(1)).unwrap();
        assert_eq!(fb.traces.len(), 2);
        // Each unique trace 1.(2..6)^3.10 becomes 1.2.2.2.10 -> 5 positions.
        for (_, tt) in &fb.traces {
            assert_eq!(tt.len(), 5);
        }

        // Figure 7: timestamps of the repeated DBB form one series.
        let (_, tt) = &fb.traces[0];
        let ts = tt.ts_of(BlockId::new(2)).unwrap();
        assert_eq!(ts.to_string(), "{2:4}");
        assert_eq!(ts.to_wire().unwrap(), vec![2, -4]);

        // The pipeline is lossless end to end.
        assert_eq!(c.reconstruct(), wpp);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (c, stats) = compact_with_stats(&figure1()).unwrap();
        assert_eq!(stats.owpp_trace_bytes, stats.raw.trace_bytes);
        assert!(stats.after_dedup_bytes <= stats.owpp_trace_bytes);
        assert!(stats.after_dict_bytes <= stats.after_dedup_bytes);
        assert_eq!(stats.ctwpp_trace_bytes, c.trace_bytes());
        assert_eq!(stats.dict_bytes, c.dict_bytes());
        assert!(stats.total_compacted_bytes() > 0);
        assert!(stats.overall_factor() > 0.0);
    }

    #[test]
    fn hot_paths_rank_unique_traces_by_frequency() {
        let (c, _) = compact_with_stats(&figure1()).unwrap();
        // f's calls follow trace pattern B,B,A,B,A: the B-trace (stored
        // first) is hotter.
        let freqs = c.trace_frequencies(f(1));
        assert_eq!(freqs.iter().sum::<u64>(), 5);
        let hot = c.hot_paths(f(1));
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].1, 3);
        assert_eq!(hot[1].1, 2);
        assert!(hot[0].1 >= hot[1].1);
        // Unknown functions have no paths.
        assert!(c.hot_paths(FuncId::from_index(9)).is_empty());
    }

    #[test]
    fn functions_ordered_by_call_count() {
        let (c, _) = compact_with_stats(&figure1()).unwrap();
        assert_eq!(c.functions[0].func, f(1)); // 5 calls
        assert_eq!(c.functions[1].func, f(0)); // 1 call
        assert!(c.functions[0].call_count >= c.functions[1].call_count);
    }

    #[test]
    fn identical_dictionaries_are_shared() {
        let (c, _) = compact_with_stats(&figure1()).unwrap();
        let fb = c.function(f(1)).unwrap();
        // Two traces, two distinct loop bodies -> two dictionaries; but
        // main has one trace and at most one dictionary.
        assert!(fb.dicts.len() <= 2);
        let mb = c.function(f(0)).unwrap();
        assert!(mb.dicts.len() <= 1);
    }

    #[test]
    fn empty_stream_errors() {
        assert!(compact(&RawWpp::new()).is_err());
    }

    #[test]
    fn ratio_divide_by_zero_semantics() {
        // Every compaction factor treats an empty denominator as infinite
        // compaction — including the degenerate 0/0.
        assert_eq!(ratio(10, 0), f64::INFINITY);
        assert_eq!(ratio(0, 0), f64::INFINITY);
        assert_eq!(ratio(0, 4), 0.0);
        assert_eq!(ratio(6, 3), 2.0);
        assert!(ratio(1, 3) > 0.0 && ratio(1, 3) < 1.0);
    }

    #[test]
    fn output_is_identical_for_every_thread_count() {
        let wpp = figure1();
        let (seq, _) = compact_with_stats_threads(&wpp, CompactOptions::with_threads(1)).unwrap();
        for threads in 2..=8 {
            let (par, stats) =
                compact_with_stats_threads(&wpp, CompactOptions::with_threads(threads)).unwrap();
            assert_eq!(par, seq, "compact diverged at {threads} threads");
            assert_eq!(stats.workers.total_items(), 2, "two functions processed");
        }
    }

    #[test]
    fn stats_carry_stage_timings_and_worker_report() {
        let (_, stats) =
            compact_with_stats_threads(&figure1(), CompactOptions::with_threads(2)).unwrap();
        // Wall clocks are monotone; every stage ran, so the total is the
        // sum of its parts (all finite).
        assert_eq!(
            stats.timings.total_nanos(),
            stats.timings.partition_nanos
                + stats.timings.dedup_nanos
                + stats.timings.function_stage_nanos
                + stats.timings.dcg_compress_nanos
        );
        assert!(stats.workers.threads >= 1);
        assert_eq!(stats.workers.total_items(), 2);
        assert!(stats.workers.busy_workers() >= 1);
    }
}
