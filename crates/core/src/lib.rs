//! **twpp** — Timestamped Whole Program Path representation.
//!
//! Reproduction of Zhang & Gupta, *"Timestamped Whole Program Path
//! Representation and its Applications"* (PLDI 2001): compaction of whole
//! program paths into per-function path-trace blocks linked by a dynamic
//! call graph, the timestamped (TWPP) form, and an archive format giving
//! millisecond access to the traces of any single function.
//!
//! The pipeline (one module per paper transformation):
//!
//! 1. [`partition`](partition::partition) — WPP → per-call path traces +
//!    dynamic call graph ([`Dcg`]).
//! 2. [`eliminate_redundancy`] — drop duplicate path traces of each
//!    function.
//! 3. [`compact_trace`] — dynamic-basic-block dictionaries.
//! 4. [`TimestampedTrace`] — invert `timestamp -> block` into
//!    `block -> timestamp set`.
//! 5. [`TsSet`] — arithmetic-series compaction of the timestamp sets with
//!    the sign-delimited wire format.
//! 6. [`lzw`] — LZW compression of the serialized DCG.
//! 7. [`TwppArchive`] — the on-disk container with a frequency-ordered
//!    function index (Table 4's fast per-function access).
//!
//! Use [`pipeline::compact`] for the whole thing at once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod bitcodec;
pub mod cache;
pub mod dbb;
pub mod dcg;
pub mod dedup;
pub mod gov;
pub mod ingest;
pub mod lazy;
pub mod lzw;
pub mod net;
pub mod obs;
pub mod par;
pub mod partition;
pub mod pipeline;
pub mod recovery;
pub mod timestamped;
pub mod trace;
pub mod tsset;

pub use archive::{ArchiveError, ArchiveWriter, Durability, FunctionRecord, TwppArchive};
pub use bitcodec::{BitCodecError, BitReader, BitWriter};
pub use cache::{ByteLruCache, CacheStats, FrameCache, DEFAULT_FRAME_CACHE_BYTES};
pub use dbb::{compact_trace, CompactedTrace, DbbDictionary};
pub use dcg::{Dcg, DcgNode, DcgNodeId};
pub use dedup::{eliminate_redundancy, eliminate_redundancy_threads, RedundancyStats};
pub use gov::{Budget, CancelToken, FaultPlan, Limits, Retry, RetryExhausted, StopReason};
pub use obs::{
    parse_prometheus_text, validate_report_json, FlightRecorder, LogLevel, Logger,
    MetricsSnapshot, Obs, PromFamily, RateEstimator, RunOutcome, RunReport,
    REPORT_SCHEMA_VERSION,
};
pub use par::{default_threads, map_indexed_isolated, resolve_threads, WorkerReport};
pub use ingest::{Compactor, FinishReport, IngestError, IngestOptions, ResumeReport, WalError};
pub use lazy::LazyArchive;
pub use partition::{partition, PartitionError, PartitionedWpp};
pub use pipeline::{
    compact, compact_governed, compact_partitioned_governed, compact_with_stats,
    compact_with_stats_threads, CompactOptions, CompactedTwpp, DegradedReport, FailedFunction,
    FunctionOutcome, GovOptions, PipelineError, PipelineStats, StageTimings,
};
pub use recovery::{FunctionVerdict, RecoveryReport, RegionStatus, SalvageStrategy};
pub use timestamped::{Codec, TimestampedTrace};
pub use trace::PathTrace;
pub use tsset::{SeriesEntry, TsSet, TsSetError};
