//! The resumable compactor state machine.
//!
//! ```text
//!             feed()                 feed()  [window full / budget]
//!   ┌──────┐ ───────► ┌───────────┐ ───────► ┌─────────┐
//!   │ Open │          │ Accepting │          │ Sealing │──┐
//!   └──────┘ ◄─────── └───────────┘ ◄─────── └─────────┘  │ archive
//!    create/            WAL append             WAL rotate  │ manifest
//!    resume                                        ▲───────┘
//!                          finish() ──► seal ──► merge ──► merged.twpa
//! ```
//!
//! Every transition that makes bytes durable is a **durability point**
//! ([`FaultPlan::durability_point`]): the WAL append in `feed`, the
//! archive rename / manifest rename / WAL rotation in `seal`, and the
//! merged-archive rename in `finish`. The kill-point harness aborts the
//! process at each point in turn and proves that
//! [`Compactor::resume`] + `finish` produces a `merged.twpa`
//! byte-identical to an uninterrupted run.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use twpp_ir::FuncId;
use twpp_tracer::WppEvent;
use twpp_tracer::raw::RawWpp;

use crate::archive::{Durability, TwppArchive};
use crate::timestamped::Codec;
use crate::gov::{Budget, FaultPlan, Retry, StopReason};
use crate::obs::{Counter, Histogram, Obs};
use crate::partition::{partition, PartitionError};
use crate::pipeline::{
    compact_partitioned_governed, GovOptions, PipelineError, PipelineStats,
};
use crate::recovery::SalvageStrategy;

use super::segment::{self, SegmentMeta};
use super::wal::{self, WalWriter};
use super::{io_err, merge, write_file_durable, IngestError};

/// Options for an incremental ingestion run.
#[derive(Clone, Debug)]
pub struct IngestOptions {
    /// Seal the open window once it holds this many bytes of encoded
    /// events (4 per event). Default 1 MiB.
    pub seal_bytes: u64,
    /// Additionally seal whenever the window has been open this long.
    /// Checked on `feed`; an idle compactor does not wake itself up.
    pub seal_ms: Option<u64>,
    /// Durability of WAL appends and segment/manifest/merge commits.
    /// Default [`Durability::Sync`]: acknowledged means on disk.
    pub durability: Durability,
    /// Worker count for segment and merge compaction, resolved like
    /// [`crate::CompactOptions::threads`]. The output is identical for
    /// every thread count.
    pub threads: Option<usize>,
    /// Resource envelope for the *ingest* layer. Exhaustion is
    /// backpressure, not death: the compactor seals the window early and
    /// keeps going (the sealed segments stay valid). Only cancellation
    /// stops ingestion, and even then every acknowledged event is
    /// already durable. Segment and merge compaction run unbudgeted —
    /// a seal that started is never abandoned halfway.
    pub budget: Budget,
    /// Degrade policy forwarded to segment and merge compaction.
    pub fail_fast: bool,
    /// Fault-injection plan; [`FaultPlan::durability_point`] is invoked
    /// at every durable transition (the kill-point harness).
    pub faults: FaultPlan,
    /// Observability sink (`twpp_core_ingest_*` metrics, `ingest_*`
    /// spans). Never influences output bytes.
    pub obs: Obs,
    /// Timestamp-set codec for sealed segments and the merged archive.
    /// Default [`Codec::Legacy`] keeps output byte-identical to older
    /// runs; [`Codec::Adaptive`] writes archives that are never larger
    /// and that every reader still decodes.
    pub codec: Codec,
    /// Retry policy wrapping transient durable I/O (WAL appends, segment
    /// and manifest commits, WAL rotation, the merge write). Default
    /// [`Retry::none`]: fail on the first error, exactly the old
    /// behaviour. Attempts and exhaustions surface as
    /// `twpp_ingest_retry_*` metrics.
    pub retry: Retry,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            seal_bytes: 1 << 20,
            seal_ms: None,
            durability: Durability::Sync,
            threads: None,
            budget: Budget::unlimited(),
            fail_fast: true,
            faults: FaultPlan::none(),
            obs: Obs::noop(),
            codec: Codec::Legacy,
            retry: Retry::none(),
        }
    }
}

/// Cached metric handles (registration takes a lock; `feed` should not).
#[derive(Debug)]
struct IngestCounters {
    events: Counter,
    wal_records: Counter,
    wal_bytes: Counter,
    seals: Counter,
    early_seals: Counter,
    sealed_events: Counter,
    segment_bytes: Counter,
    retry_attempts: Counter,
    retry_exhausted: Counter,
    wal_append_us: Histogram,
    seal_us: Histogram,
}

/// Shared microsecond bucket ladder for the ingest latency histograms:
/// 100 µs to 10 s, roughly 1-2.5-5 per decade.
const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 10_000_000,
];

impl IngestCounters {
    fn new(obs: &Obs) -> IngestCounters {
        IngestCounters {
            events: obs.counter(
                "twpp_core_ingest_events_total",
                "events accepted (made durable) by the compactor",
            ),
            wal_records: obs.counter(
                "twpp_core_ingest_wal_records_total",
                "records appended to the write-ahead log",
            ),
            wal_bytes: obs.counter(
                "twpp_core_ingest_wal_bytes_total",
                "bytes appended to the write-ahead log",
            ),
            seals: obs.counter(
                "twpp_core_ingest_seals_total",
                "windows sealed into segment archives",
            ),
            early_seals: obs.counter(
                "twpp_core_ingest_early_seals_total",
                "seals forced by budget backpressure",
            ),
            sealed_events: obs.counter(
                "twpp_core_ingest_sealed_events_total",
                "events sealed into segment archives",
            ),
            segment_bytes: obs.counter(
                "twpp_core_ingest_segment_bytes_total",
                "bytes of sealed segment archives",
            ),
            retry_attempts: obs.counter(
                "twpp_ingest_retry_attempts_total",
                "transient I/O failures that were retried",
            ),
            retry_exhausted: obs.counter(
                "twpp_ingest_retry_exhausted_total",
                "operations that failed after exhausting their retry budget",
            ),
            wal_append_us: obs.histogram(
                "twpp_core_ingest_wal_append_us",
                "microseconds per durable WAL append (including fsync)",
                LATENCY_BOUNDS_US,
            ),
            seal_us: obs.histogram(
                "twpp_core_ingest_seal_us",
                "microseconds per window seal (compact + archive + manifest + WAL rotation)",
                LATENCY_BOUNDS_US,
            ),
        }
    }
}

/// Runs `op` under the retry policy, injecting transient I/O faults from
/// the fault plan (`TWPP_INJECT_IO_FAULTS`) ahead of each real attempt
/// and accounting every retried failure and exhaustion in the
/// `twpp_ingest_retry_*` counters. A free function so callers can borrow
/// disjoint `Compactor` fields (the op typically needs `&mut self.wal`).
fn run_retry<T>(
    retry: Retry,
    faults: &FaultPlan,
    counters: &IngestCounters,
    what: &str,
    mut op: impl FnMut() -> Result<T, IngestError>,
) -> Result<T, IngestError> {
    let outcome = retry.run(|_attempt| {
        if faults.take_io_fault() {
            return Err(IngestError::Io(format!(
                "injected transient I/O fault ({what})"
            )));
        }
        op()
    });
    match outcome {
        Ok((value, attempts)) => {
            counters.retry_attempts.add(u64::from(attempts.saturating_sub(1)));
            Ok(value)
        }
        Err(exhausted) => {
            counters
                .retry_attempts
                .add(u64::from(exhausted.attempts.saturating_sub(1)));
            counters.retry_exhausted.inc();
            Err(exhausted.last)
        }
    }
}

/// What [`Compactor::resume`] found on disk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResumeReport {
    /// Sealed segments in the validated chain.
    pub segments: u64,
    /// Events those segments cover.
    pub sealed_events: u64,
    /// Events replayed from the WAL tail into the open window.
    pub wal_events: u64,
    /// WAL records skipped because a crash landed between the manifest
    /// rename and the WAL rotation — their events were already sealed.
    pub wal_records_skipped: u64,
    /// Whether the WAL ended in a torn record (dropped; its events were
    /// never acknowledged).
    pub wal_torn: bool,
    /// Bytes dropped with that torn tail (zero when `wal_torn` is
    /// false). Also published as `twpp_ingest_torn_tail_bytes_total`.
    pub wal_torn_bytes: u64,
    /// Orphan files removed: `.tmp` staging leftovers and a newest
    /// segment archive whose manifest never landed (its events are still
    /// in the WAL).
    pub orphans_removed: u64,
}

/// What [`Compactor::finish`] produced.
#[derive(Clone, PartialEq, Debug)]
pub struct FinishReport {
    /// Path of the merged whole-trace archive.
    pub path: PathBuf,
    /// Total events across the run (every one of them in the merge).
    pub events: u64,
    /// Sealed segments that were merged.
    pub segments: u64,
    /// Batch-pipeline statistics of the merge compaction.
    pub stats: PipelineStats,
}

/// A resumable incremental compactor over one directory.
///
/// See the module docs for the state machine and the crash-safety
/// argument. The struct itself is the machine's in-memory half; the
/// durable half is the directory (`wal.log` + sealed segments), and
/// [`Compactor::resume`] rebuilds the former from the latter.
#[derive(Debug)]
pub struct Compactor {
    dir: PathBuf,
    opts: IngestOptions,
    wal: WalWriter,
    /// Activations currently open, outermost first.
    stack: Vec<FuncId>,
    /// Whether a root `Enter` has ever been accepted (the
    /// `MultipleRoots` guard, mirroring [`partition`]).
    root_seen: bool,
    /// The open stack at the start of the current window — the synthetic
    /// `Enter` prefix a seal will wrap the window with.
    window_stack: Vec<FuncId>,
    /// Events accepted since the last seal (mirrors the WAL).
    window: Vec<WppEvent>,
    window_started: Instant,
    /// Events sealed into segments.
    sealed: u64,
    segments: Vec<SegmentMeta>,
    counters: IngestCounters,
}

impl Compactor {
    /// Starts a fresh compactor in `dir` (created if missing). Fails if
    /// the directory already holds compactor state — use
    /// [`Compactor::resume`] or [`Compactor::open`] for that.
    pub fn create(dir: &Path, opts: IngestOptions) -> Result<Compactor, IngestError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        if dir_has_state(dir)? {
            return Err(IngestError::Segment(format!(
                "{}: directory already holds compactor state; resume it instead",
                dir.display()
            )));
        }
        let wal = WalWriter::create(&wal::wal_path(dir), opts.durability)?;
        opts.faults.durability_point();
        let counters = IngestCounters::new(&opts.obs);
        Ok(Compactor {
            dir: dir.to_path_buf(),
            wal,
            stack: Vec::new(),
            root_seen: false,
            window_stack: Vec::new(),
            window: Vec::new(),
            window_started: Instant::now(),
            sealed: 0,
            segments: Vec::new(),
            counters,
            opts,
        })
    }

    /// Rebuilds a compactor from a directory a previous process left
    /// behind (crashed or cleanly stopped) and continues exactly where
    /// it stopped.
    ///
    /// Validation is strict where it must be and tolerant where a crash
    /// can legitimately leave debris: every sealed segment must be a
    /// fully committed archive (salvage strategy [`SalvageStrategy::Footer`],
    /// all regions clean) with a chain-consistent manifest; the WAL's
    /// torn tail (if any) is dropped — those bytes were never
    /// acknowledged; WAL records whose events a sealed segment already
    /// covers are skipped (crash between manifest rename and WAL
    /// rotation), making replay exactly-once; `.tmp` leftovers and a
    /// manifest-less newest archive are deleted.
    pub fn resume(dir: &Path, opts: IngestOptions) -> Result<(Compactor, ResumeReport), IngestError> {
        let span_obs = opts.obs.clone();
        let _s = span_obs.span("ingest_resume");
        let (metas, orphans) = segment::load_sealed_chain(dir)?;
        for meta in &metas {
            let path = segment::archive_path(dir, meta.seq);
            let bytes = fs::read(&path).map_err(|e| io_err(&path, &e))?;
            let (_, report) = TwppArchive::recover(&bytes)?;
            if report.strategy != SalvageStrategy::Footer || !report.is_clean() {
                return Err(IngestError::Segment(format!(
                    "{}: sealed segment failed verification (salvage: {}); \
                     refusing to resume on damaged state",
                    path.display(),
                    report.strategy
                )));
            }
        }
        for p in &orphans {
            fs::remove_file(p).map_err(|e| io_err(p, &e))?;
        }

        let wpath = wal::wal_path(dir);
        let wal_bytes = match fs::read(&wpath) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(&wpath, &e)),
        };
        let replay = wal::replay_bytes(&wal_bytes)?;
        let sealed = metas.last().map_or(0, SegmentMeta::accepted_after);
        let mut tail: Vec<WppEvent> = Vec::new();
        let mut skipped = 0u64;
        for (off, batch) in &replay.batches {
            if off + batch.len() as u64 <= sealed {
                skipped += 1;
                continue;
            }
            let expect = sealed + tail.len() as u64;
            if *off != expect {
                return Err(IngestError::Segment(format!(
                    "WAL record at event offset {off} does not follow the \
                     durable position {expect}"
                )));
            }
            tail.extend_from_slice(batch);
        }
        let wal = WalWriter::open_resume(&wpath, opts.durability, replay.clean_bytes)?;

        let window_stack: Vec<FuncId> =
            metas.last().map_or_else(Vec::new, |m| m.end_stack.clone());
        let mut stack = window_stack.clone();
        let mut root_seen = sealed > 0;
        for ev in &tail {
            apply_event(&mut stack, &mut root_seen, *ev).map_err(IngestError::Stream)?;
        }

        let report = ResumeReport {
            segments: metas.len() as u64,
            sealed_events: sealed,
            wal_events: tail.len() as u64,
            wal_records_skipped: skipped,
            wal_torn: replay.torn_at.is_some(),
            wal_torn_bytes: replay.torn_bytes,
            orphans_removed: orphans.len() as u64,
        };
        let obs = &opts.obs;
        obs.counter("twpp_core_ingest_resumes_total", "compactor resumes").inc();
        obs.counter(
            "twpp_core_ingest_wal_replayed_events_total",
            "events replayed from the WAL on resume",
        )
        .add(report.wal_events);
        if report.wal_torn {
            obs.counter(
                "twpp_core_ingest_wal_torn_tails_total",
                "torn WAL tails dropped on resume",
            )
            .inc();
            obs.counter(
                "twpp_ingest_torn_tail_records_total",
                "torn WAL tails dropped on resume (never-acknowledged appends)",
            )
            .inc();
            obs.counter(
                "twpp_ingest_torn_tail_bytes_total",
                "bytes dropped with torn WAL tails on resume",
            )
            .add(report.wal_torn_bytes);
        }
        let counters = IngestCounters::new(obs);
        Ok((
            Compactor {
                dir: dir.to_path_buf(),
                wal,
                stack,
                root_seen,
                window_stack,
                window: tail,
                window_started: Instant::now(),
                sealed,
                segments: metas,
                counters,
                opts,
            },
            report,
        ))
    }

    /// Creates or resumes, depending on whether `dir` already holds
    /// compactor state. The report is `Some` iff this was a resume.
    pub fn open(
        dir: &Path,
        opts: IngestOptions,
    ) -> Result<(Compactor, Option<ResumeReport>), IngestError> {
        if dir.exists() && dir_has_state(dir)? {
            let (c, r) = Compactor::resume(dir, opts)?;
            Ok((c, Some(r)))
        } else {
            Ok((Compactor::create(dir, opts)?, None))
        }
    }

    /// Accepts a batch of events. On `Ok`, every event in the batch is
    /// durable (WAL or sealed segment) at the configured durability.
    ///
    /// The batch is validated first and rejected atomically: an event
    /// that [`partition`] would reject at its position in the stream
    /// (`MultipleRoots`, `EventOutsideActivation`) fails the whole call
    /// with [`IngestError::Stream`] and acknowledges nothing. This eager
    /// mirror of the batch pipeline's error contract is what keeps every
    /// sealed window a well-formed WPP.
    pub fn feed(&mut self, events: &[WppEvent]) -> Result<(), IngestError> {
        if events.is_empty() {
            return Ok(());
        }
        if let Err(StopReason::Cancelled) = self.opts.budget.check() {
            return Err(IngestError::Stopped(StopReason::Cancelled));
        }
        let mut stack = self.stack.clone();
        let mut root_seen = self.root_seen;
        for &ev in events {
            apply_event(&mut stack, &mut root_seen, ev).map_err(IngestError::Stream)?;
        }

        let offset = self.accepted_events();
        let wal = &mut self.wal;
        let append_started = Instant::now();
        let bytes = run_retry(
            self.opts.retry,
            &self.opts.faults,
            &self.counters,
            "wal append",
            || wal.append(offset, events).map_err(IngestError::from),
        )?;
        self.counters
            .wal_append_us
            .observe(append_started.elapsed().as_micros() as u64);
        self.opts.faults.durability_point();
        self.counters.events.add(events.len() as u64);
        self.counters.wal_records.inc();
        self.counters.wal_bytes.add(bytes);

        self.stack = stack;
        self.root_seen = root_seen;
        if self.window.is_empty() {
            self.window_started = Instant::now();
        }
        self.window.extend_from_slice(events);

        // Budget is backpressure here, not death: charge the work, and
        // if the envelope is exhausted seal early so memory and WAL stay
        // bounded. Only cancellation (checked above) stops ingestion.
        let _ = self.opts.budget.charge_steps(events.len() as u64);
        let _ = self.opts.budget.charge_bytes(4 * events.len() as u64);
        let exhausted = matches!(
            self.opts.budget.check(),
            Err(StopReason::Deadline | StopReason::StepLimit | StopReason::ByteLimit)
        );
        let full = 4 * self.window.len() as u64 >= self.opts.seal_bytes;
        let stale = self
            .opts
            .seal_ms
            .is_some_and(|ms| self.window_started.elapsed().as_millis() as u64 >= ms);
        if full || stale || exhausted {
            if exhausted {
                self.counters.early_seals.inc();
            }
            self.seal()?;
        }
        Ok(())
    }

    /// Seals the open window into a segment archive. No-op on an empty
    /// window. Returns the new segment's sequence number.
    ///
    /// Durable commit order — archive, then manifest, then WAL rotation,
    /// each its own durability point — is what makes every crash state
    /// recoverable: an archive without a manifest is an ignorable
    /// orphan (events still in the WAL), and a manifest without the WAL
    /// rotation just makes resume skip the WAL's now-sealed records.
    pub fn seal(&mut self) -> Result<Option<u64>, IngestError> {
        if self.window.is_empty() {
            return Ok(None);
        }
        let _s = self.opts.obs.span("ingest_seal");
        let seal_started = Instant::now();
        // Injection point for the serve watchdog tests: a configured
        // delay makes this seal look wedged without real slow I/O.
        self.opts.faults.apply_delay();
        let seq = self.segments.len() as u64 + 1;

        let mut wrapped: Vec<WppEvent> =
            Vec::with_capacity(self.window_stack.len() + self.window.len());
        wrapped.extend(self.window_stack.iter().map(|&f| WppEvent::Enter(f)));
        wrapped.extend_from_slice(&self.window);
        let wpp = RawWpp::from_events(&wrapped);
        let raw = wpp.size_breakdown();
        let part = partition(&wpp).map_err(PipelineError::from)?;
        let gov = GovOptions {
            threads: self.opts.threads,
            budget: Budget::unlimited(),
            fail_fast: self.opts.fail_fast,
            faults: FaultPlan::none(),
            obs: self.opts.obs.clone(),
        };
        let (compacted, stats) = compact_partitioned_governed(part, raw, &gov)?;
        let archive = TwppArchive::from_compacted_codec(
            &compacted,
            &HashMap::new(),
            crate::par::resolve_threads(self.opts.threads),
            &stats.degraded.failed,
            &self.opts.obs,
            self.opts.codec,
        );

        run_retry(
            self.opts.retry,
            &self.opts.faults,
            &self.counters,
            "segment archive commit",
            || {
                write_file_durable(
                    &segment::archive_path(&self.dir, seq),
                    archive.as_bytes(),
                    self.opts.durability,
                )
            },
        )?;
        self.opts.faults.durability_point();

        let meta = SegmentMeta {
            seq,
            events: self.window.len() as u64,
            accepted_before: self.sealed,
            depth_start: self.window_stack.len() as u32,
            end_stack: self.stack.clone(),
        };
        run_retry(
            self.opts.retry,
            &self.opts.faults,
            &self.counters,
            "segment manifest commit",
            || {
                write_file_durable(
                    &segment::manifest_path(&self.dir, seq),
                    &meta.encode(),
                    self.opts.durability,
                )
            },
        )?;
        self.opts.faults.durability_point();

        let wal = &mut self.wal;
        run_retry(
            self.opts.retry,
            &self.opts.faults,
            &self.counters,
            "wal rotation",
            || wal.reset().map_err(IngestError::from),
        )?;
        self.opts.faults.durability_point();

        self.counters.seals.inc();
        self.counters.sealed_events.add(meta.events);
        self.counters.segment_bytes.add(archive.byte_len() as u64);
        self.sealed += meta.events;
        self.window.clear();
        self.window_stack = self.stack.clone();
        self.window_started = Instant::now();
        self.segments.push(meta);
        self.counters
            .seal_us
            .observe(seal_started.elapsed().as_micros() as u64);
        Ok(Some(seq))
    }

    /// Seals whatever is open, merges every segment back into the
    /// original event stream, batch-compacts it and durably writes
    /// `merged.twpa`. The merged archive is byte-identical to what
    /// [`crate::compact_governed`] would have produced on the whole
    /// stream in one process — regardless of how the stream was chunked
    /// across `feed` calls, seals, crashes and resumes.
    ///
    /// The segment files and the (now empty) WAL are left in place: the
    /// directory stays inspectable by `twpp fsck` and idempotently
    /// re-finishable.
    pub fn finish(mut self) -> Result<FinishReport, IngestError> {
        self.seal()?;
        if self.sealed == 0 {
            return Err(IngestError::Pipeline(PipelineError::Partition(
                PartitionError::Empty,
            )));
        }
        let (archive, stats) = merge::merge_segments(&self.dir, &self.segments, &self.opts)?;
        let path = merge::merged_path(&self.dir);
        run_retry(
            self.opts.retry,
            &self.opts.faults,
            &self.counters,
            "merged archive commit",
            || write_file_durable(&path, archive.as_bytes(), self.opts.durability),
        )?;
        self.opts.faults.durability_point();
        self.opts
            .obs
            .counter("twpp_core_ingest_merged_events_total", "events in the merged archive")
            .add(self.sealed);
        Ok(FinishReport {
            path,
            events: self.sealed,
            segments: self.segments.len() as u64,
            stats,
        })
    }

    /// The compactor directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total events accepted (durable) so far: sealed plus open window.
    pub fn accepted_events(&self) -> u64 {
        self.sealed + self.window.len() as u64
    }

    /// Events sealed into segment archives.
    pub fn sealed_events(&self) -> u64 {
        self.sealed
    }

    /// Sealed segments so far.
    pub fn segment_count(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Events currently in the open window (bounded by `seal_bytes`).
    pub fn window_events(&self) -> u64 {
        self.window.len() as u64
    }

    /// Current activation depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Whether the resource envelope is exhausted. Exhaustion is
    /// backpressure — every further `feed` seals early — not death, so
    /// callers (the serve telemetry plane) may only want to report it.
    /// Cancellation is not exhaustion.
    pub fn budget_exhausted(&self) -> bool {
        matches!(
            self.opts.budget.check(),
            Err(StopReason::Deadline | StopReason::StepLimit | StopReason::ByteLimit)
        )
    }
}

/// Applies one event to the simulated activation stack, enforcing the
/// same eager error contract as [`partition`]: a `Block` or `Exit`
/// outside any activation and a second root are rejected; a stream that
/// simply stops with activations open is fine (they close implicitly).
fn apply_event(
    stack: &mut Vec<FuncId>,
    root_seen: &mut bool,
    ev: WppEvent,
) -> Result<(), PartitionError> {
    match ev {
        WppEvent::Enter(f) => {
            if stack.is_empty() && *root_seen {
                return Err(PartitionError::MultipleRoots);
            }
            stack.push(f);
            *root_seen = true;
        }
        WppEvent::Block(_) => {
            if stack.is_empty() {
                return Err(PartitionError::EventOutsideActivation);
            }
        }
        WppEvent::Exit => {
            if stack.pop().is_none() {
                return Err(PartitionError::EventOutsideActivation);
            }
        }
    }
    Ok(())
}

/// Whether `dir` contains compactor state (a WAL or any segment file).
fn dir_has_state(dir: &Path) -> Result<bool, IngestError> {
    if wal::wal_path(dir).exists() {
        return Ok(true);
    }
    let (files, _) = segment::list_segment_files(dir)?;
    Ok(!files.is_empty())
}
