//! Merging sealed segments back into one whole-trace archive, and the
//! offline directory checker behind `twpp fsck <dir>`.
//!
//! The merge is deliberately minimal (concatenate-and-rewrite): each
//! segment archive is decoded, its reconstruction is unwrapped back to
//! the window's original events, the windows are concatenated — which
//! by the manifest chain invariants *is* the original event stream —
//! and the ordinary batch pipeline compacts the whole thing. Anything
//! cleverer (LSM-style partial merges, dictionary reuse across
//! segments) is deferred until a workload shows the rewrite cost
//! matters; correctness first.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use twpp_tracer::WppEvent;
use twpp_tracer::raw::RawWpp;

use crate::archive::TwppArchive;
use crate::gov::{Budget, FaultPlan};
use crate::obs::Obs;
use crate::pipeline::{compact_governed, GovOptions, PipelineStats};
use crate::recovery::{RecoveryReport, SalvageStrategy};

use super::compactor::IngestOptions;
use super::segment::{self, SegmentMeta};
use super::wal::{self, WalError, WalReplay};
use super::{io_err, IngestError};

/// Path of the merged whole-trace archive inside a compactor directory.
pub fn merged_path(dir: &Path) -> PathBuf {
    dir.join("merged.twpa")
}

/// Unwraps one sealed segment back to the window's original events.
///
/// A segment archive holds `[Enter; depth_start] ++ window`, and its
/// reconstruction appends `[Exit; end_stack.len()]` for the activations
/// still open at the window's end — so the original window is the slice
/// between the two.
pub fn segment_events(
    archive: &TwppArchive,
    meta: &SegmentMeta,
) -> Result<Vec<WppEvent>, IngestError> {
    let compacted = archive.to_compacted()?;
    let events = compacted.reconstruct().events();
    let d0 = meta.depth_start as usize;
    let d1 = meta.end_stack.len();
    let want = d0 + meta.events as usize + d1;
    if events.len() != want {
        return Err(IngestError::Segment(format!(
            "segment {} reconstructs to {} events, manifest implies {want}",
            meta.seq,
            events.len()
        )));
    }
    Ok(events[d0..d0 + meta.events as usize].to_vec())
}

/// Concatenates every sealed window and batch-compacts the result.
/// Returns the archive (not yet written) and the pipeline stats.
pub(super) fn merge_segments(
    dir: &Path,
    metas: &[SegmentMeta],
    opts: &IngestOptions,
) -> Result<(TwppArchive, PipelineStats), IngestError> {
    let _s = opts.obs.span("ingest_merge");
    let mut events: Vec<WppEvent> = Vec::new();
    for meta in metas {
        let path = segment::archive_path(dir, meta.seq);
        let archive = TwppArchive::load(&path)?;
        if archive.is_degraded() {
            return Err(IngestError::Segment(format!(
                "{}: segment is degraded (functions failed at compaction); \
                 its window cannot be reconstructed for the merge",
                path.display()
            )));
        }
        events.extend(segment_events(&archive, meta)?);
    }
    let wpp = RawWpp::from_events(&events);
    let gov = GovOptions {
        threads: opts.threads,
        budget: Budget::unlimited(),
        fail_fast: opts.fail_fast,
        faults: FaultPlan::none(),
        obs: opts.obs.clone(),
    };
    let (compacted, mut stats) = compact_governed(&wpp, &gov)?;
    let t = Instant::now();
    let archive = TwppArchive::from_compacted_codec(
        &compacted,
        &HashMap::new(),
        crate::par::resolve_threads(opts.threads),
        &stats.degraded.failed,
        &opts.obs,
        opts.codec,
    );
    stats.timings.archive_encode_nanos = t.elapsed().as_nanos() as u64;
    Ok((archive, stats))
}

/// The full event stream a compactor directory durably holds: sealed
/// windows in order, then the WAL tail. This is exactly what a resumed
/// run would go on to merge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DirReplay {
    /// The reconstructed original event stream.
    pub events: Vec<WppEvent>,
    /// How many of those events came from sealed segments.
    pub sealed_events: u64,
    /// The validated segment chain.
    pub metas: Vec<SegmentMeta>,
    /// Whether the WAL ended in a torn (dropped) record.
    pub wal_torn: bool,
}

/// Reads a compactor directory offline (no writes, no lock) and
/// reconstructs the event stream it holds. Fails on the same
/// inconsistencies [`crate::ingest::Compactor::resume`] would reject.
pub fn replay_dir_events(dir: &Path) -> Result<DirReplay, IngestError> {
    let (metas, _orphans) = segment::load_sealed_chain(dir)?;
    let mut events: Vec<WppEvent> = Vec::new();
    for meta in &metas {
        let archive = TwppArchive::load(&segment::archive_path(dir, meta.seq))?;
        events.extend(segment_events(&archive, meta)?);
    }
    let sealed = metas.last().map_or(0, SegmentMeta::accepted_after);
    debug_assert_eq!(events.len() as u64, sealed);
    let replay = read_wal(dir)?;
    for (off, batch) in &replay.batches {
        if off + batch.len() as u64 <= sealed {
            continue;
        }
        let expect = events.len() as u64;
        if *off != expect {
            return Err(IngestError::Segment(format!(
                "WAL record at event offset {off} does not follow the durable position {expect}"
            )));
        }
        events.extend_from_slice(batch);
    }
    Ok(DirReplay {
        sealed_events: sealed,
        wal_torn: replay.torn_at.is_some(),
        metas,
        events,
    })
}

fn read_wal(dir: &Path) -> Result<WalReplay, IngestError> {
    let wpath = wal::wal_path(dir);
    let bytes = match fs::read(&wpath) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err(&wpath, &e)),
    };
    Ok(wal::replay_bytes(&bytes)?)
}

/// One sealed segment's verdict in a [`DirCheck`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegmentCheck {
    /// Its manifest.
    pub meta: SegmentMeta,
    /// The archive's salvage report (strategy `footer` + clean = good).
    pub report: RecoveryReport,
}

/// The verdict of `twpp fsck` over a compactor directory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DirCheck {
    /// Per-segment verdicts, in chain order.
    pub segments: Vec<SegmentCheck>,
    /// A manifest-chain or WAL-position inconsistency that makes the
    /// directory non-resumable, if one was found.
    pub chain_error: Option<String>,
    /// Orphan files (safe crash debris: `.tmp` leftovers, a newest
    /// archive whose manifest never landed).
    pub orphans: Vec<PathBuf>,
    /// Events covered by sealed segments.
    pub sealed_events: u64,
    /// Events waiting in the WAL tail.
    pub wal_events: u64,
    /// WAL records already covered by sealed segments (crash between
    /// manifest rename and WAL rotation; resume skips them).
    pub wal_skipped_records: u64,
    /// Whether the WAL ends in a torn record.
    pub wal_torn: bool,
    /// Bytes in that torn tail (what a resume would drop); zero when
    /// `wal_torn` is false.
    pub wal_torn_bytes: u64,
    /// The WAL is not ours or from a future version.
    pub wal_error: Option<WalError>,
}

impl DirCheck {
    /// No damage and no crash debris: every segment fully committed and
    /// clean, the chain consistent, the WAL tail whole.
    pub fn is_clean(&self) -> bool {
        self.is_resumable() && !self.wal_torn && self.orphans.is_empty()
    }

    /// Whether [`crate::ingest::Compactor::resume`] would accept this
    /// directory (crash debris is fine; damage and inconsistency are
    /// not).
    pub fn is_resumable(&self) -> bool {
        self.chain_error.is_none()
            && self.wal_error.is_none()
            && self
                .segments
                .iter()
                .all(|s| s.report.strategy == SalvageStrategy::Footer && s.report.is_clean())
    }

    /// Total events the directory durably holds.
    pub fn durable_events(&self) -> u64 {
        self.sealed_events + self.wal_events
    }
}

/// Checks a compactor directory offline: chain-validates the manifests,
/// salvage-verifies every segment archive, and replays the WAL. Never
/// writes. I/O failures are still hard errors; *inconsistencies* are
/// reported in the returned [`DirCheck`] instead.
pub fn fsck_dir(dir: &Path, obs: &Obs) -> Result<DirCheck, IngestError> {
    let _s = obs.span("ingest_fsck");
    let mut check = DirCheck {
        segments: Vec::new(),
        chain_error: None,
        orphans: Vec::new(),
        sealed_events: 0,
        wal_events: 0,
        wal_skipped_records: 0,
        wal_torn: false,
        wal_torn_bytes: 0,
        wal_error: None,
    };
    let metas = match segment::load_sealed_chain(dir) {
        Ok((metas, orphans)) => {
            check.orphans = orphans;
            metas
        }
        Err(IngestError::Segment(msg)) => {
            check.chain_error = Some(msg);
            Vec::new()
        }
        Err(e) => return Err(e),
    };
    for meta in metas {
        let path = segment::archive_path(dir, meta.seq);
        let bytes = fs::read(&path).map_err(|e| io_err(&path, &e))?;
        let report = match TwppArchive::recover(&bytes) {
            Ok((_, report)) => report,
            Err(e) => {
                // Nothing salvageable at all; keep checking the rest but
                // record the damage as a chain error.
                check.chain_error.get_or_insert(format!(
                    "{}: unsalvageable segment archive: {e}",
                    path.display()
                ));
                continue;
            }
        };
        check.sealed_events = meta.accepted_after();
        check.segments.push(SegmentCheck { meta, report });
    }
    match read_wal(dir) {
        Ok(replay) => {
            check.wal_torn = replay.torn_at.is_some();
            check.wal_torn_bytes = replay.torn_bytes;
            for (off, batch) in &replay.batches {
                if off + batch.len() as u64 <= check.sealed_events {
                    check.wal_skipped_records += 1;
                } else {
                    check.wal_events += batch.len() as u64;
                }
            }
        }
        Err(IngestError::Wal(e)) => check.wal_error = Some(e),
        Err(e) => return Err(e),
    }
    if check.wal_torn {
        obs.counter(
            "twpp_ingest_torn_tail_records_total",
            "torn WAL tails dropped on resume (never-acknowledged appends)",
        )
        .inc();
        obs.counter(
            "twpp_ingest_torn_tail_bytes_total",
            "bytes dropped with torn WAL tails on resume",
        )
        .add(check.wal_torn_bytes);
    }
    Ok(check)
}
