//! The compactor's write-ahead log.
//!
//! `wal.log` holds the events of the open window — everything accepted
//! since the last seal. Every `feed` batch becomes one self-checking
//! record; after a crash, replaying the log reconstructs the window
//! exactly, and a torn final record (the append that was racing the
//! crash) is detected and dropped rather than misread.
//!
//! # Format (all integers little-endian)
//!
//! ```text
//! header:  "TWPW" | version u32                               (8 bytes)
//! record:  len u32 | crc u32 | offset u64 | payload           (16 + len)
//! ```
//!
//! `len` is the payload length in bytes and is always a multiple of 4:
//! the payload is the batch's events in the standard 32-bit WPP word
//! encoding. `offset` is the global event index of the first event in
//! the batch (events accepted before it, across the whole run) — resume
//! uses it to skip records whose events were already sealed into a
//! segment when the crash landed between the manifest write and the WAL
//! rotation. `crc` is CRC32 over the offset field and the payload.
//!
//! Every way a record can be unreadable — truncated header, truncated
//! payload, checksum mismatch, an undecodable event word, an impossible
//! length — collapses into [`WalError::TornTail`]: replay keeps the
//! clean prefix and reports the byte offset where the log stopped making
//! sense. Replay never panics and never returns silently wrong data
//! (property-tested against truncation at every byte offset).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use twpp_tracer::WppEvent;

use crate::archive::Durability;
use twpp_ir::checksum::crc32;

/// File name of the write-ahead log inside a compactor directory.
pub const WAL_FILE: &str = "wal.log";
/// Magic bytes opening a WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"TWPW";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Size of the file header (magic + version).
pub const WAL_HEADER_LEN: usize = 8;
/// Size of a record header (len + crc + offset).
pub const WAL_RECORD_HEADER_LEN: usize = 16;
/// Upper bound on a single record's payload; anything larger is treated
/// as a torn length field rather than an allocation request.
const MAX_RECORD_BYTES: u32 = 1 << 28;

/// Path of the WAL inside a compactor directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Errors reading or writing the write-ahead log.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum WalError {
    /// An I/O failure (path context in the message).
    Io(String),
    /// The file does not start with `TWPW`.
    BadMagic,
    /// The file's version field is not one this build understands.
    BadVersion(u32),
    /// The log is unreadable from `offset` onward — a torn final append
    /// (or, equivalently, any corruption past the clean prefix). The
    /// records before `offset` replayed cleanly.
    TornTail {
        /// Byte offset where the clean prefix ends.
        offset: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "I/O error: {msg}"),
            WalError::BadMagic => f.write_str("not a TWPW write-ahead log"),
            WalError::BadVersion(v) => write!(f, "unsupported WAL version {v}"),
            WalError::TornTail { offset } => {
                write!(f, "torn tail: log unreadable past byte {offset}")
            }
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, e: &std::io::Error) -> WalError {
    WalError::Io(format!("{}: {e}", path.display()))
}

/// The outcome of tolerantly replaying a WAL.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalReplay {
    /// Each cleanly-read record: the global event offset it was appended
    /// at, and the decoded batch.
    pub batches: Vec<(u64, Vec<WppEvent>)>,
    /// Length in bytes of the clean prefix (header plus whole records).
    /// Resume truncates the file back to this before appending again.
    pub clean_bytes: u64,
    /// Where the unreadable tail starts, if the log did not end cleanly.
    /// Always equal to `clean_bytes` when present.
    pub torn_at: Option<u64>,
    /// Bytes in the unreadable tail (file length minus `clean_bytes`);
    /// zero when the log ended cleanly. These are the bytes resume drops,
    /// surfaced in `twpp_ingest_torn_tail_*` metrics and `fsck`.
    pub torn_bytes: u64,
}

impl WalReplay {
    /// All replayed events in append order, flattened across records.
    pub fn events(&self) -> Vec<WppEvent> {
        self.batches.iter().flat_map(|(_, b)| b.iter().copied()).collect()
    }

    /// Number of cleanly-read records.
    pub fn record_count(&self) -> usize {
        self.batches.len()
    }

    /// Total events across cleanly-read records.
    pub fn event_count(&self) -> u64 {
        self.batches.iter().map(|(_, b)| b.len() as u64).sum()
    }
}

/// The 8-byte WAL file header.
fn header_bytes() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..4].copy_from_slice(&WAL_MAGIC);
    h[4..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Encodes one record (header + payload) into `out`. `offset` is the
/// global index of the batch's first event.
pub fn encode_record(offset: u64, events: &[WppEvent], out: &mut Vec<u8>) {
    let len = (events.len() * 4) as u32;
    let mut body = Vec::with_capacity(8 + events.len() * 4);
    body.extend_from_slice(&offset.to_le_bytes());
    for e in events {
        body.extend_from_slice(&e.encode().to_le_bytes());
    }
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Tolerantly replays a WAL image: returns every record in the clean
/// prefix and records where (if anywhere) the log turned unreadable.
///
/// An empty image is a valid empty log (a crash can land before the
/// header write reaches disk). A short or corrupt *header* is reported
/// as a torn tail at offset 0 unless the magic bytes are present but
/// wrong, which is [`WalError::BadMagic`] — that file was never ours.
pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay, WalError> {
    if bytes.is_empty() {
        return Ok(WalReplay { batches: Vec::new(), clean_bytes: 0, torn_at: None, torn_bytes: 0 });
    }
    let magic_prefix = &WAL_MAGIC[..bytes.len().min(4)];
    if &bytes[..bytes.len().min(4)] != magic_prefix {
        return Err(WalError::BadMagic);
    }
    if bytes.len() < WAL_HEADER_LEN {
        return Ok(WalReplay {
            batches: Vec::new(),
            clean_bytes: 0,
            torn_at: Some(0),
            torn_bytes: bytes.len() as u64,
        });
    }
    let version = read_u32(bytes, 4);
    if version != WAL_VERSION {
        return Err(WalError::BadVersion(version));
    }

    let mut batches = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let torn_at = loop {
        if pos == bytes.len() {
            break None;
        }
        let rest = bytes.len() - pos;
        if rest < WAL_RECORD_HEADER_LEN {
            break Some(pos as u64);
        }
        let len = read_u32(bytes, pos);
        if len == 0 || !len.is_multiple_of(4) || len > MAX_RECORD_BYTES {
            break Some(pos as u64);
        }
        let len = len as usize;
        if rest < WAL_RECORD_HEADER_LEN + len {
            break Some(pos as u64);
        }
        let crc = read_u32(bytes, pos + 4);
        let body = &bytes[pos + 8..pos + WAL_RECORD_HEADER_LEN + len];
        if crc32(body) != crc {
            break Some(pos as u64);
        }
        let offset = read_u64(bytes, pos + 8);
        let mut events = Vec::with_capacity(len / 4);
        let mut ok = true;
        for i in 0..len / 4 {
            match WppEvent::decode(read_u32(bytes, pos + WAL_RECORD_HEADER_LEN + i * 4)) {
                Some(e) => events.push(e),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            break Some(pos as u64);
        }
        batches.push((offset, events));
        pos += WAL_RECORD_HEADER_LEN + len;
    };
    Ok(WalReplay {
        batches,
        clean_bytes: pos as u64,
        torn_at,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

/// Strict replay: like [`replay_bytes`] but a torn tail is an error
/// instead of a tolerated truncation point. Used by `fsck --strict`-like
/// callers and the property tests.
pub fn replay_strict(bytes: &[u8]) -> Result<Vec<(u64, Vec<WppEvent>)>, WalError> {
    let replay = replay_bytes(bytes)?;
    match replay.torn_at {
        Some(offset) => Err(WalError::TornTail { offset }),
        None => Ok(replay.batches),
    }
}

/// Append-side handle on the WAL. All writes honour the configured
/// [`Durability`]: with `Sync`, an acknowledged append survives a power
/// cut; with `Flush`, it survives a process kill; with `None`, it is
/// only as durable as the OS page cache.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    durability: Durability,
    len: u64,
}

impl WalWriter {
    /// Creates (or truncates) the WAL at `path` and writes the header.
    pub fn create(path: &Path, durability: Durability) -> Result<WalWriter, WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        file.write_all(&header_bytes()).map_err(|e| io_err(path, &e))?;
        durability.apply(&mut file).map_err(|e| io_err(path, &e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            durability,
            len: WAL_HEADER_LEN as u64,
        })
    }

    /// Reopens an existing WAL after replay, truncating away a torn tail:
    /// the file is cut back to `clean_bytes` (rewriting the header if even
    /// that was torn) and positioned for appending.
    pub fn open_resume(
        path: &Path,
        durability: Durability,
        clean_bytes: u64,
    ) -> Result<WalWriter, WalError> {
        if clean_bytes < WAL_HEADER_LEN as u64 {
            return WalWriter::create(path, durability);
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        file.set_len(clean_bytes).map_err(|e| io_err(path, &e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, &e))?;
        durability.apply(&mut file).map_err(|e| io_err(path, &e))?;
        Ok(WalWriter { file, path: path.to_path_buf(), durability, len: clean_bytes })
    }

    /// Appends one record and makes it durable. `offset` is the global
    /// index of the batch's first event. Returns the bytes written.
    ///
    /// On failure the file is truncated back to its pre-append length
    /// (best-effort), so a retried append starts from a clean boundary
    /// instead of stacking a fresh record behind a torn one. Replay
    /// would drop the torn tail anyway; the rollback just keeps retries
    /// from burying durable-looking bytes after garbage.
    pub fn append(&mut self, offset: u64, events: &[WppEvent]) -> Result<u64, WalError> {
        let mut buf = Vec::with_capacity(WAL_RECORD_HEADER_LEN + events.len() * 4);
        encode_record(offset, events, &mut buf);
        let write = self
            .file
            .write_all(&buf)
            .and_then(|()| self.durability.apply(&mut self.file));
        if let Err(e) = write {
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek(SeekFrom::End(0));
            return Err(io_err(&self.path, &e));
        }
        self.len += buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Rotates the log after a seal: truncates every record away, leaving
    /// just the header. The sealed segment now owns those events.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.file
            .set_len(WAL_HEADER_LEN as u64)
            .map_err(|e| io_err(&self.path, &e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&self.path, &e))?;
        self.durability.apply(&mut self.file).map_err(|e| io_err(&self.path, &e))?;
        self.len = WAL_HEADER_LEN as u64;
        Ok(())
    }

    /// Current file length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use twpp_ir::{BlockId, FuncId};

    fn batch(n: usize) -> Vec<WppEvent> {
        (0..n)
            .map(|i| match i % 3 {
                0 => WppEvent::Enter(FuncId::from_index(i)),
                1 => WppEvent::Block(BlockId::from_index(i)),
                _ => WppEvent::Exit,
            })
            .collect()
    }

    fn image(batches: &[(u64, Vec<WppEvent>)]) -> Vec<u8> {
        let mut out = header_bytes().to_vec();
        for (off, events) in batches {
            encode_record(*off, events, &mut out);
        }
        out
    }

    #[test]
    fn empty_and_header_only_replay_clean() {
        let r = replay_bytes(&[]).unwrap();
        assert_eq!(r.batches.len(), 0);
        assert_eq!(r.torn_at, None);
        let r = replay_bytes(&header_bytes()).unwrap();
        assert_eq!(r.batches.len(), 0);
        assert_eq!(r.clean_bytes, WAL_HEADER_LEN as u64);
        assert_eq!(r.torn_at, None);
    }

    #[test]
    fn round_trips_multiple_records() {
        let batches = vec![(0, batch(5)), (5, batch(1)), (6, batch(17))];
        let r = replay_bytes(&image(&batches)).unwrap();
        assert_eq!(r.batches, batches);
        assert_eq!(r.torn_at, None);
        assert_eq!(r.event_count(), 23);
    }

    #[test]
    fn truncation_keeps_clean_prefix() {
        let batches = vec![(0, batch(4)), (4, batch(4))];
        let full = image(&batches);
        let first_end = WAL_HEADER_LEN + WAL_RECORD_HEADER_LEN + 16;
        let cut = &full[..full.len() - 3];
        let r = replay_bytes(cut).unwrap();
        assert_eq!(r.batches, batches[..1]);
        assert_eq!(r.clean_bytes, first_end as u64);
        assert_eq!(r.torn_at, Some(first_end as u64));
        assert!(replay_strict(cut).is_err());
    }

    #[test]
    fn corrupt_crc_is_torn() {
        let mut full = image(&[(0, batch(4))]);
        let n = full.len();
        full[n - 1] ^= 0xff;
        let r = replay_bytes(&full).unwrap();
        assert_eq!(r.batches.len(), 0);
        assert_eq!(r.torn_at, Some(WAL_HEADER_LEN as u64));
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        assert_eq!(replay_bytes(b"TWPAxxxx"), Err(WalError::BadMagic));
        assert_eq!(replay_bytes(b"Z"), Err(WalError::BadMagic));
    }

    #[test]
    fn writer_append_reset_cycle() {
        let dir = std::env::temp_dir().join(format!("twpp-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path, Durability::Flush).unwrap();
        w.append(0, &batch(3)).unwrap();
        w.append(3, &batch(2)).unwrap();
        let r = replay_bytes(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(r.event_count(), 5);
        assert_eq!(r.batches[1].0, 3);
        w.reset().unwrap();
        let r = replay_bytes(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.torn_at, None);
        w.append(5, &batch(1)).unwrap();
        let r = replay_bytes(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(r.batches, vec![(5, batch(1))]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
