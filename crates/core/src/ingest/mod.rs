//! **twpp::ingest** — crash-safe incremental compaction.
//!
//! The batch pipeline ([`crate::pipeline::compact`]) needs the whole WPP
//! event stream in memory before it produces anything. This module turns
//! that into a production ingestion path: a resumable [`Compactor`] state
//! machine consumes WPP events incrementally, keeps the open window in
//! bounded memory, and makes every acknowledged event durable *before*
//! acknowledging it — in the spirit of Gorilla's seal-and-rotate
//! append-only blocks layered on the v3 commit-footer container.
//!
//! # On-disk layout of a compactor directory
//!
//! ```text
//! dir/
//!   wal.log          CRC-framed write-ahead log of the open window
//!   seg-000001.twpa  sealed segment: an ordinary committed v3 archive
//!   seg-000001.man   its manifest (event range + activation context)
//!   seg-000002.twpa
//!   seg-000002.man
//!   merged.twpa      written by `finish()`: the whole trace, one archive
//! ```
//!
//! # The two invariants
//!
//! * **No acknowledged event is ever lost.** `feed` appends the batch to
//!   the WAL (at the requested durability) before returning; `seal`
//!   commits the window as a segment archive, then its manifest, then
//!   rotates the WAL — in that order, so at every instant the union of
//!   sealed segments and the WAL covers every acknowledged event.
//! * **Recovery is byte-identical.** A segment stores the window's
//!   events with the open activation stack re-entered as synthetic
//!   `Enter`s, making it a well-formed single-root WPP; the manifest
//!   records how many prefix enters and implicit closing exits to strip.
//!   Merging therefore reconstructs the *exact* original event stream
//!   and runs the ordinary batch pipeline over it, so a run that was
//!   killed at any durability point and resumed produces a `merged.twpa`
//!   byte-identical to an uninterrupted run (proven by the kill-point
//!   harness, `TWPP_INJECT_KILL_AT`).
//!
//! See DESIGN.md §15 for the state machine diagram and the WAL record
//! format.

use std::error::Error;
use std::fmt;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use crate::archive::{ArchiveError, Durability};
use crate::gov::StopReason;
use crate::partition::PartitionError;
use crate::pipeline::PipelineError;

mod compactor;
mod merge;
mod segment;
mod server;
mod wal;

pub use compactor::{Compactor, FinishReport, IngestOptions, ResumeReport};
pub use server::{
    serve, serve_with_admin, tail_source_name, ConnStream, ServeListener, ServeOptions,
    ServeReport, SourceReport, STATUS_SCHEMA_VERSION,
};
pub use merge::{fsck_dir, merged_path, replay_dir_events, segment_events, DirCheck, DirReplay};
pub use segment::{
    archive_path, list_segment_files, manifest_path, SegmentMeta, MANIFEST_VERSION,
};
pub use wal::{
    encode_record, replay_bytes, replay_strict, wal_path, WalError, WalReplay, WalWriter,
    WAL_FILE, WAL_HEADER_LEN, WAL_RECORD_HEADER_LEN, WAL_VERSION,
};

/// Errors from the ingest layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum IngestError {
    /// An I/O failure (path context included in the message).
    Io(String),
    /// The write-ahead log failed to append or replay.
    Wal(WalError),
    /// A segment manifest or the directory layout is inconsistent; the
    /// string describes what was expected and what was found.
    Segment(String),
    /// A sealed segment archive failed to load or verify.
    Archive(ArchiveError),
    /// The compaction pipeline rejected a sealed window or the merge.
    Pipeline(PipelineError),
    /// An incoming event is structurally invalid at its position in the
    /// stream (same contract as [`crate::partition::partition`]); the
    /// whole `feed` batch is rejected and nothing is acknowledged.
    Stream(PartitionError),
    /// The compactor's budget was cancelled; ingestion stops cleanly
    /// with all acknowledged events durable.
    Stopped(StopReason),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(msg) => write!(f, "ingest I/O error: {msg}"),
            IngestError::Wal(e) => write!(f, "write-ahead log: {e}"),
            IngestError::Segment(msg) => write!(f, "segment: {msg}"),
            IngestError::Archive(e) => write!(f, "segment archive: {e}"),
            IngestError::Pipeline(e) => write!(f, "compaction: {e}"),
            IngestError::Stream(e) => write!(f, "malformed event stream: {e}"),
            IngestError::Stopped(r) => write!(f, "ingestion stopped: {r}"),
        }
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IngestError::Wal(e) => Some(e),
            IngestError::Archive(e) => Some(e),
            IngestError::Pipeline(e) => Some(e),
            IngestError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for IngestError {
    fn from(e: WalError) -> Self {
        IngestError::Wal(e)
    }
}

impl From<ArchiveError> for IngestError {
    fn from(e: ArchiveError) -> Self {
        IngestError::Archive(e)
    }
}

impl From<PipelineError> for IngestError {
    fn from(e: PipelineError) -> Self {
        IngestError::Pipeline(e)
    }
}

/// Formats an I/O error with its path for [`IngestError::Io`].
fn io_err(path: &Path, e: &std::io::Error) -> IngestError {
    IngestError::Io(format!("{}: {e}", path.display()))
}

/// Atomically publishes `bytes` at `path`: writes a `.tmp` sibling,
/// applies `durability`, renames into place, and (for
/// [`Durability::Sync`]) fsyncs the containing directory so the rename
/// itself survives a power cut. Readers therefore never observe a
/// half-written segment or manifest — the file either exists complete or
/// not at all.
fn write_file_durable(
    path: &Path,
    bytes: &[u8],
    durability: Durability,
) -> Result<(), IngestError> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
        durability.apply(&mut f).map_err(|e| io_err(&tmp, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    if durability == Durability::Sync {
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
    }
    Ok(())
}

/// The `.tmp` sibling a durable write stages into.
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// fsyncs a directory so a completed rename inside it is durable.
fn sync_dir(dir: &Path) -> Result<(), IngestError> {
    let f = File::open(dir).map_err(|e| io_err(dir, &e))?;
    f.sync_all().map_err(|e| io_err(dir, &e))
}
