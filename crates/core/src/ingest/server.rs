//! The streaming ingestion daemon behind `twpp serve-ingest`.
//!
//! A long-lived, threaded server that accepts WPP event streams over the
//! framed [`crate::net`] protocol (TCP or Unix socket) and from tailed
//! files, and feeds each *source* into its own resumable
//! [`Compactor`] under `dir/<source>/`. Every failure edge is hardened:
//!
//! * **Garbage in, connection out.** A frame that fails magic/CRC/kind
//!   validation quarantines that connection with a typed `Error` reply;
//!   the process and every other connection keep running.
//! * **Backpressure, not buffering.** When a source's open window would
//!   exceed its byte cap, or another connection holds the source busy,
//!   the daemon replies `Busy{retry_after_ms}` instead of queueing. The
//!   offset-based dedup in the feed path makes blind client replay after
//!   a `Busy` (or a reconnect) exactly-once: no acknowledged event is
//!   ever lost or doubled.
//! * **Transient I/O is retried.** WAL appends and segment commits run
//!   under the [`Retry`] policy (exponential backoff, deterministic
//!   jitter), surfaced as `twpp_ingest_retry_*` metrics.
//! * **Wedged seals fail in isolation.** A watchdog thread marks a
//!   source failed when one durable operation exceeds `wedge_ms`; other
//!   sources and the daemon itself are unaffected, and the failed
//!   source's directory remains resumable on disk.
//! * **Graceful drain.** On cancellation (SIGTERM in the CLI) or a
//!   client `Drain` frame the daemon stops accepting, joins every
//!   connection, then seals open windows and merges each source to
//!   `merged.twpa` — byte-identical to an uninterrupted batch run, by
//!   the PR 6 merge invariant.
//!
//! The drain state machine (DESIGN.md §17):
//!
//! ```text
//!   Accepting ──(Drain frame | cancel token)──► Draining
//!   Draining:  listener closed, connections unwound at next poll tick
//!   Finishing: per source (sorted): seal ► merge ► merged.twpa
//!   Done:      ServeReport (all_clean ⇒ exit 0)
//! ```

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use twpp_tracer::raw::WppStream;
use twpp_tracer::WppEvent;

use crate::archive::Durability;
use crate::gov::{CancelToken, FaultPlan, Limits, Retry};
use crate::net::{
    http_read_request_path, http_write_response, valid_source_name, Frame, FramedStream,
    NetError, ERR_DRAINING, ERR_NO_HELLO, ERR_PROTOCOL, ERR_SOURCE_FAILED, ERR_STREAM,
};
use crate::obs::{FlightRecorder, JsonWriter, Logger, Obs, RateEstimator};
use crate::timestamped::Codec;

use super::compactor::{Compactor, IngestOptions};
use super::{io_err, IngestError};

/// Options for a [`serve`] run.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Per-source seal threshold, as [`IngestOptions::seal_bytes`].
    pub seal_bytes: u64,
    /// Per-source time-based seal, as [`IngestOptions::seal_ms`].
    pub seal_ms: Option<u64>,
    /// Durability of every per-source commit.
    pub durability: Durability,
    /// Worker threads for seal/merge compaction.
    pub threads: Option<usize>,
    /// Per-source resource limits; each source starts its own budget
    /// from these. Exhaustion is backpressure (early seals), as in
    /// [`IngestOptions::budget`].
    pub limits: Limits,
    /// Degrade policy forwarded to compaction.
    pub fail_fast: bool,
    /// Retry policy for transient durable I/O *and* reply writes.
    pub retry: Retry,
    /// Open-window byte cap per source. A batch that would push the
    /// window past this is shed with `Busy` while the window seals.
    /// Default: 4 × `seal_bytes`.
    pub window_cap_bytes: u64,
    /// The retry-after hint attached to `Busy` replies, in ms.
    pub retry_after_ms: u64,
    /// Watchdog deadline: one durable operation (feed/seal) exceeding
    /// this many ms marks the source failed in isolation.
    pub wedge_ms: u64,
    /// Poll interval for the accept loop, connection reads, tails and
    /// the watchdog, in ms.
    pub poll_ms: u64,
    /// Fault-injection plan, shared by every source (the kill counter,
    /// transient-I/O counter and net-fault counter are global across
    /// the daemon, so sweeps see one deterministic sequence).
    pub faults: FaultPlan,
    /// Observability sink (`twpp_ingest_serve_*` metrics).
    pub obs: Obs,
    /// Timestamp-set codec for sealed segments and merges.
    pub codec: Codec,
    /// Files to tail as event sources (name derived from the file
    /// stem): read to EOF, then poll for appended bytes until drain.
    pub tails: Vec<PathBuf>,
    /// Structured JSONL logger for operational events. The default
    /// noop logger writes nothing and costs one branch per call, so a
    /// daemon without `--log-out` behaves exactly as before.
    pub log: Logger,
    /// Crash flight recorder: a ring of recent operations dumped to
    /// `<dir>/flightrec-<ts>.json` when a source is failed or the
    /// process aborts at an injected kill point. `None` (the default)
    /// records nothing and writes nothing.
    pub flightrec: Option<Arc<FlightRecorder>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            seal_bytes: 1 << 20,
            seal_ms: None,
            durability: Durability::Sync,
            threads: None,
            limits: Limits::new(),
            fail_fast: true,
            retry: Retry::none(),
            window_cap_bytes: 4 << 20,
            retry_after_ms: 25,
            wedge_ms: 10_000,
            poll_ms: 25,
            faults: FaultPlan::none(),
            obs: Obs::noop(),
            codec: Codec::Legacy,
            tails: Vec::new(),
            log: Logger::noop(),
            flightrec: None,
        }
    }
}

impl ServeOptions {
    fn ingest_options(&self) -> IngestOptions {
        IngestOptions {
            seal_bytes: self.seal_bytes,
            seal_ms: self.seal_ms,
            durability: self.durability,
            threads: self.threads,
            budget: self.limits.start(),
            fail_fast: self.fail_fast,
            faults: self.faults.clone(),
            obs: self.obs.clone(),
            codec: self.codec,
            retry: self.retry,
        }
    }
}

/// One source's outcome in a [`ServeReport`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceReport {
    /// The source name (and its subdirectory under the serve root).
    pub name: String,
    /// Events durably accepted for this source.
    pub events: u64,
    /// Segments sealed over the source's lifetime in this process.
    pub segments: u64,
    /// Path of the merged archive, when the drain merge ran.
    pub merged: Option<PathBuf>,
    /// Why the source was failed in isolation, if it was. Its directory
    /// stays resumable on disk either way.
    pub failed: Option<String>,
}

/// What a [`serve`] run did, returned after the drain completes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServeReport {
    /// Per-source outcomes, sorted by name.
    pub sources: Vec<SourceReport>,
    /// Connections accepted.
    pub connections: u64,
    /// Frames handled.
    pub frames: u64,
    /// `Busy` replies sent (backpressure + injected net faults).
    pub busy_responses: u64,
    /// Connections quarantined for protocol violations.
    pub quarantined: u64,
}

impl ServeReport {
    /// Whether every source drained to a merged archive without failure.
    /// (A source that saw zero events is clean but unmerged.)
    pub fn all_clean(&self) -> bool {
        self.sources.iter().all(|s| s.failed.is_none())
    }
}

/// Where the daemon listens.
#[derive(Debug)]
pub enum ServeListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl ServeListener {
    /// Binds from a spec string: `tcp:HOST:PORT` or `unix:PATH`. A bare
    /// `HOST:PORT` is treated as TCP. `tcp:127.0.0.1:0` picks a free
    /// port — read it back with [`ServeListener::local_addr`].
    pub fn bind(spec: &str) -> Result<ServeListener, IngestError> {
        if let Some(path) = spec.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let path = Path::new(path);
                if path.exists() {
                    fs::remove_file(path).map_err(|e| io_err(path, &e))?;
                }
                return UnixListener::bind(path)
                    .map(ServeListener::Unix)
                    .map_err(|e| io_err(path, &e));
            }
            #[cfg(not(unix))]
            {
                return Err(IngestError::Io(format!(
                    "unix sockets are not supported on this platform: {path}"
                )));
            }
        }
        let addr = spec.strip_prefix("tcp:").unwrap_or(spec);
        TcpListener::bind(addr)
            .map(ServeListener::Tcp)
            .map_err(|e| IngestError::Io(format!("{addr}: {e}")))
    }

    /// The bound address, printable for `--port-file` / logs.
    pub fn local_addr(&self) -> String {
        match self {
            ServeListener::Tcp(l) => l
                .local_addr()
                .map_or_else(|_| "tcp:?".into(), |a| format!("tcp:{a}")),
            #[cfg(unix)]
            ServeListener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| format!("unix:{}", p.display())))
                .unwrap_or_else(|| "unix:?".into()),
        }
    }

    /// Switches the listener to nonblocking accepts — call once before
    /// polling [`ServeListener::accept`] in a loop.
    pub fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            ServeListener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            ServeListener::Unix(l) => l.set_nonblocking(true),
        }
    }

    /// Accepts one connection if one is pending; `None` on would-block.
    /// The listener must have been switched to nonblocking first.
    pub fn accept(&self, read_timeout: Duration) -> io::Result<Option<Box<dyn ConnStream>>> {
        match self {
            ServeListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_read_timeout(Some(read_timeout))?;
                    s.set_nodelay(true)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            ServeListener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_read_timeout(Some(read_timeout))?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// A connected client stream the daemon can poll-read.
pub trait ConnStream: Read + Write + Send {}
impl ConnStream for TcpStream {}
#[cfg(unix)]
impl ConnStream for UnixStream {}

/// Why a `Busy` reply was sent; each cause gets its own counter.
#[derive(Copy, Clone, Debug)]
enum BusyCause {
    /// The open window hit `window_cap_bytes`.
    WindowCap,
    /// Another connection held the source's compactor.
    LockContention,
    /// The injected flaky-socket plan shed the frame.
    InjectedFault,
}

impl BusyCause {
    fn as_str(self) -> &'static str {
        match self {
            BusyCause::WindowCap => "window_cap",
            BusyCause::LockContention => "lock_contention",
            BusyCause::InjectedFault => "injected_fault",
        }
    }
}

/// One source's shared state. The watchdog reads only the atomics, so a
/// wedged operation holding the compactor mutex cannot hide from it.
struct SourceHandle {
    name: String,
    compactor: Mutex<Option<Compactor>>,
    /// Events durably acknowledged (mirror of the compactor, readable
    /// without the mutex — `Hello` and `Drain` must answer even while a
    /// slow seal holds the lock).
    acked: AtomicU64,
    /// Segments sealed in this process (mirror, same reason).
    segments: AtomicU64,
    /// Milliseconds since server start when the in-flight durable
    /// operation began; 0 when idle. The watchdog's only input.
    op_started_ms: AtomicU64,
    /// Events in the open window (mirror — `/status` must answer
    /// without the compactor mutex).
    window_events: AtomicU64,
    /// Milliseconds since server start of the last seal; 0 = never.
    last_seal_ms: AtomicU64,
    /// Sliding-window ingest rate for `/status` (events/s).
    rate: RateEstimator,
    /// Whether the budget-exhaustion transition was already reported;
    /// exhaustion is backpressure (early seals), logged exactly once.
    budget_reported: AtomicBool,
    failed: AtomicBool,
    fail_msg: Mutex<Option<String>>,
}

impl SourceHandle {
    fn mark_failed(&self, why: String, registry: &Registry) {
        if !self.failed.swap(true, Ordering::SeqCst) {
            registry
                .opts
                .obs
                .counter(
                    "twpp_ingest_serve_sources_failed_total",
                    "sources failed in isolation (wedged seal or unrecoverable I/O)",
                )
                .inc();
            registry
                .opts
                .log
                .error("source failed", &[("source", &self.name), ("why", &why)]);
            // The post-mortem: the last N operations that led here.
            if let Some(rec) = &registry.opts.flightrec {
                rec.record(&self.name, "failed", why.clone());
                match rec.dump_to_dir(&registry.dir) {
                    Ok(path) => registry.opts.log.info(
                        "flight recorder dumped",
                        &[("path", &path.display().to_string())],
                    ),
                    Err(e) => registry
                        .opts
                        .log
                        .warn("flight recorder dump failed", &[("why", &e.to_string())]),
                }
            }
            if let Ok(mut msg) = self.fail_msg.lock() {
                msg.get_or_insert(why);
            }
        }
    }

    fn failure(&self) -> Option<String> {
        if !self.failed.load(Ordering::SeqCst) {
            return None;
        }
        Some(
            self.fail_msg
                .lock()
                .ok()
                .and_then(|m| m.clone())
                .unwrap_or_else(|| "failed".into()),
        )
    }
}

/// Daemon-wide shared state, borrowed by every thread in the scope.
struct Registry {
    dir: PathBuf,
    opts: ServeOptions,
    start: Instant,
    drain: AtomicBool,
    sources: Mutex<HashMap<String, Arc<SourceHandle>>>,
    connections: AtomicU64,
    frames: AtomicU64,
    busy: AtomicU64,
    quarantined: AtomicU64,
}

impl Registry {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    fn now_ms(&self) -> u64 {
        // | 1 keeps "started at t=0" distinguishable from "idle".
        (self.start.elapsed().as_millis() as u64) | 1
    }

    /// Runs one durable operation with the watchdog clock armed.
    fn with_op<T>(&self, h: &SourceHandle, op: impl FnOnce() -> T) -> T {
        h.op_started_ms.store(self.now_ms(), Ordering::SeqCst);
        let out = op();
        h.op_started_ms.store(0, Ordering::SeqCst);
        out
    }

    /// Finds or creates (possibly resuming) the source `name`.
    /// The error is the reply frame to send.
    fn get_or_create(&self, name: &str) -> Result<Arc<SourceHandle>, Frame> {
        let mut sources = match self.sources.lock() {
            Ok(g) => g,
            Err(_) => {
                return Err(Frame::Error {
                    code: ERR_SOURCE_FAILED,
                    message: "source registry poisoned".into(),
                })
            }
        };
        if let Some(h) = sources.get(name) {
            return Ok(Arc::clone(h));
        }
        if self.draining() {
            return Err(Frame::Error {
                code: ERR_DRAINING,
                message: "daemon is draining; not accepting new sources".into(),
            });
        }
        let sub = self.dir.join(name);
        match Compactor::open(&sub, self.opts.ingest_options()) {
            Ok((c, _resumed)) => {
                let accepted = c.accepted_events();
                let h = Arc::new(SourceHandle {
                    name: name.to_owned(),
                    acked: AtomicU64::new(accepted),
                    segments: AtomicU64::new(c.segment_count()),
                    window_events: AtomicU64::new(c.window_events()),
                    last_seal_ms: AtomicU64::new(0),
                    rate: RateEstimator::per_second_window(),
                    budget_reported: AtomicBool::new(false),
                    compactor: Mutex::new(Some(c)),
                    op_started_ms: AtomicU64::new(0),
                    failed: AtomicBool::new(false),
                    fail_msg: Mutex::new(None),
                });
                sources.insert(name.to_owned(), Arc::clone(&h));
                self.opts.log.info(
                    "source opened",
                    &[("source", name), ("accepted", &accepted.to_string())],
                );
                Ok(h)
            }
            Err(e) => Err(Frame::Error {
                code: ERR_SOURCE_FAILED,
                message: format!("{name}: {e}"),
            }),
        }
    }

    fn busy_reply(&self, cause: BusyCause) -> Frame {
        self.busy.fetch_add(1, Ordering::SeqCst);
        // Blended count plus a per-cause counter, so dashboards can
        // tell backpressure from contention from chaos drills.
        let (name, help) = match cause {
            BusyCause::WindowCap => (
                "twpp_ingest_busy_window_cap_total",
                "Busy replies shed because the open window hit its byte cap",
            ),
            BusyCause::LockContention => (
                "twpp_ingest_busy_lock_contention_total",
                "Busy replies shed because another connection held the source busy",
            ),
            BusyCause::InjectedFault => (
                "twpp_ingest_busy_injected_fault_total",
                "Busy replies shed by the injected flaky-socket fault plan",
            ),
        };
        self.opts.obs.counter(name, help).inc();
        if let Some(rec) = &self.opts.flightrec {
            rec.record("-", "busy", cause.as_str().to_owned());
        }
        Frame::Busy { retry_after_ms: self.opts.retry_after_ms }
    }

    /// Handles one `Events` frame for `h`: backpressure, offset dedup,
    /// feed. Returns the reply frame.
    fn feed(&self, h: &SourceHandle, offset: u64, events: &[WppEvent]) -> Frame {
        if let Some(why) = h.failure() {
            return Frame::Error { code: ERR_SOURCE_FAILED, message: why };
        }
        // Injected flaky-socket plan: shed this frame with BUSY. The
        // client's replay-from-last-ack then proves zero acknowledged
        // loss under spurious shedding.
        if self.opts.faults.take_net_fault() {
            return self.busy_reply(BusyCause::InjectedFault);
        }
        let mut guard = match self.compactor_guard(h) {
            Ok(g) => g,
            Err(reply) => return reply,
        };
        let Some(c) = guard.as_mut() else {
            return Frame::Error {
                code: ERR_DRAINING,
                message: "source already drained".into(),
            };
        };
        let acc = c.accepted_events();
        if offset > acc {
            return Frame::Error {
                code: ERR_STREAM,
                message: format!("offset gap: batch starts at {offset}, durable position is {acc}"),
            };
        }
        let already = (acc - offset) as usize;
        if already >= events.len() {
            // Full replay of durable events (a retry after a lost ack):
            // acknowledge without re-feeding.
            return Frame::Ok { accepted: acc };
        }
        let fresh = &events[already..];
        // Window byte cap: shed the batch while the window seals, so
        // memory stays bounded no matter how fast clients push.
        if 4 * (c.window_events() + fresh.len() as u64) > self.opts.window_cap_bytes
            && c.window_events() > 0
        {
            let sealed = self.with_op(h, || c.seal());
            if let Err(e) = sealed {
                h.mark_failed(format!("seal under backpressure: {e}"), self);
                return Frame::Error {
                    code: ERR_SOURCE_FAILED,
                    message: h.failure().unwrap_or_default(),
                };
            }
            self.sync_mirrors(h, c, true);
            return self.busy_reply(BusyCause::WindowCap);
        }
        if let Some(rec) = &self.opts.flightrec {
            rec.record(&h.name, "feed", format!("offset {offset} +{}", fresh.len()));
        }
        match self.with_op(h, || c.feed(fresh)) {
            Ok(()) => {
                let acc = c.accepted_events();
                h.acked.store(acc, Ordering::SeqCst);
                h.rate.record(fresh.len() as u64);
                self.sync_mirrors(h, c, false);
                if let Some(why) = h.failure() {
                    // The watchdog fired while we were inside the op.
                    return Frame::Error { code: ERR_SOURCE_FAILED, message: why };
                }
                Frame::Ok { accepted: acc }
            }
            Err(IngestError::Stream(e)) => Frame::Error {
                code: ERR_STREAM,
                message: format!("batch rejected (nothing acknowledged): {e}"),
            },
            Err(e) => {
                h.mark_failed(e.to_string(), self);
                Frame::Error {
                    code: ERR_SOURCE_FAILED,
                    message: h.failure().unwrap_or_default(),
                }
            }
        }
    }

    /// Refreshes the lock-free `/status` mirrors from a held compactor
    /// guard. `sealed` forces the seal clock; otherwise a seal is
    /// inferred from the segment count moving (seals also fire inside
    /// `Compactor::feed` on window thresholds).
    fn sync_mirrors(&self, h: &SourceHandle, c: &Compactor, sealed: bool) {
        let segments = c.segment_count();
        let before = h.segments.swap(segments, Ordering::SeqCst);
        if sealed || before != segments {
            h.last_seal_ms.store(self.now_ms(), Ordering::SeqCst);
            if let Some(rec) = &self.opts.flightrec {
                rec.record(&h.name, "seal", format!("segments {segments}"));
            }
        }
        h.window_events.store(c.window_events(), Ordering::SeqCst);
        // Budget exhaustion is backpressure, not death — but an operator
        // should hear about the transition exactly once per source.
        if c.budget_exhausted() && !h.budget_reported.swap(true, Ordering::SeqCst) {
            self.opts
                .log
                .warn("source budget exhausted", &[("source", &h.name)]);
            if let Some(rec) = &self.opts.flightrec {
                rec.record(&h.name, "budget", "envelope exhausted; sealing early".to_owned());
            }
        }
    }

    /// Handles a `Seal` frame: forces the open window into a segment.
    fn seal(&self, h: &SourceHandle) -> Frame {
        if let Some(why) = h.failure() {
            return Frame::Error { code: ERR_SOURCE_FAILED, message: why };
        }
        let mut guard = match self.compactor_guard(h) {
            Ok(g) => g,
            Err(reply) => return reply,
        };
        let Some(c) = guard.as_mut() else {
            return Frame::Error { code: ERR_DRAINING, message: "source already drained".into() };
        };
        match self.with_op(h, || c.seal()) {
            Ok(_) => {
                self.sync_mirrors(h, c, true);
                Frame::Ok { accepted: c.accepted_events() }
            }
            Err(e) => {
                h.mark_failed(format!("seal: {e}"), self);
                Frame::Error {
                    code: ERR_SOURCE_FAILED,
                    message: h.failure().unwrap_or_default(),
                }
            }
        }
    }

    /// Non-blocking lock of the source's compactor. Contention (another
    /// connection mid-operation on the same source) is backpressure,
    /// not blocking: the caller gets a `Busy` reply frame.
    fn compactor_guard<'h>(
        &self,
        h: &'h SourceHandle,
    ) -> Result<std::sync::MutexGuard<'h, Option<Compactor>>, Frame> {
        match h.compactor.try_lock() {
            Ok(g) => Ok(g),
            Err(std::sync::TryLockError::WouldBlock) => {
                Err(self.busy_reply(BusyCause::LockContention))
            }
            Err(std::sync::TryLockError::Poisoned(_)) => Err(Frame::Error {
                code: ERR_SOURCE_FAILED,
                message: format!("{}: compactor poisoned by a panicked operation", h.name),
            }),
        }
    }
}

/// Sends a reply under the retry policy. Note the asymmetry with reads:
/// a retried send re-transmits the whole frame, which is only safe
/// because a failed socket write is almost always all-or-nothing and a
/// torn resend merely quarantines that one client connection.
fn send_retry(
    framed: &mut FramedStream<Box<dyn ConnStream>>,
    retry: Retry,
    frame: &Frame,
) -> Result<(), NetError> {
    match retry.run(|_| framed.send(frame)) {
        Ok(((), _attempts)) => Ok(()),
        Err(exhausted) => Err(exhausted.last),
    }
}

/// One connection's lifecycle: `Hello` first, then `Events`/`Seal`
/// frames until close, drain, or quarantine.
fn handle_conn(registry: &Registry, stream: Box<dyn ConnStream>) {
    registry.connections.fetch_add(1, Ordering::SeqCst);
    if let Some(rec) = &registry.opts.flightrec {
        rec.record("-", "conn", String::new());
    }
    let retry = registry.opts.retry;
    let mut framed = FramedStream::new(stream);
    let mut source: Option<Arc<SourceHandle>> = None;
    loop {
        if registry.draining() {
            return;
        }
        let frame = match framed.recv_step() {
            Ok(None) => continue,
            Ok(Some(frame)) => frame,
            Err(NetError::Closed) | Err(NetError::Io(_)) => return,
            Err(garbage) => {
                // Torn, oversized or corrupt framing: quarantine this
                // connection with a typed refusal; the daemon lives on.
                let _ = framed.send(&Frame::Error {
                    code: ERR_PROTOCOL,
                    message: garbage.to_string(),
                });
                registry.quarantined.fetch_add(1, Ordering::SeqCst);
                return;
            }
        };
        registry.frames.fetch_add(1, Ordering::SeqCst);
        let mut drain_after_reply = false;
        let reply = match frame {
            Frame::Hello { source: name } => match registry.get_or_create(&name) {
                Ok(h) => {
                    let accepted = h.acked.load(Ordering::SeqCst);
                    source = Some(h);
                    Frame::Ok { accepted }
                }
                Err(err_reply) => err_reply,
            },
            Frame::Events { offset, events } => match &source {
                Some(h) => registry.feed(h, offset, &events),
                None => Frame::Error {
                    code: ERR_NO_HELLO,
                    message: "first frame must be Hello".into(),
                },
            },
            Frame::Seal => match &source {
                Some(h) => registry.seal(h),
                None => Frame::Error {
                    code: ERR_NO_HELLO,
                    message: "first frame must be Hello".into(),
                },
            },
            Frame::Drain => {
                drain_after_reply = true;
                Frame::Ok {
                    accepted: source.as_ref().map_or(0, |h| h.acked.load(Ordering::SeqCst)),
                }
            }
            Frame::Ok { .. }
            | Frame::Busy { .. }
            | Frame::Error { .. }
            | Frame::Answer(_)
            | Frame::Archives { .. } => Frame::Error {
                code: ERR_PROTOCOL,
                message: "reply frame sent by client".into(),
            },
            Frame::Query { .. }
            | Frame::Slice { .. }
            | Frame::Currency { .. }
            | Frame::ListArchives
            | Frame::Stat { .. } => Frame::Error {
                code: ERR_PROTOCOL,
                message: "serve request sent to an ingest daemon".into(),
            },
        };
        let quarantine = matches!(reply, Frame::Error { .. });
        if send_retry(&mut framed, retry, &reply).is_err() {
            return;
        }
        if drain_after_reply {
            registry.drain.store(true, Ordering::SeqCst);
            return;
        }
        if quarantine {
            registry.quarantined.fetch_add(1, Ordering::SeqCst);
            return;
        }
    }
}

/// Derives a source name from a tailed file's stem, mapping characters
/// the protocol would reject to `_`.
pub fn tail_source_name(path: &Path) -> String {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut name: String = stem
        .chars()
        .take(64)
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect();
    if name.is_empty() || name.starts_with(['.', '-']) {
        name = format!("t{name}");
    }
    name
}

/// Tails one appended file into its own source until drain: parse bytes
/// incrementally with [`WppStream`], feed decoded events, poll at EOF.
fn run_tail(registry: &Registry, path: &Path) {
    let name = tail_source_name(path);
    let handle = match registry.get_or_create(&name) {
        Ok(h) => h,
        Err(_) => return,
    };
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            handle.mark_failed(format!("{}: {e}", path.display()), registry);
            return;
        }
    };
    let mut parser = Some(WppStream::new());
    let mut events: Vec<WppEvent> = Vec::new();
    // Events taken from the stream before the pending `events` batch —
    // the batch's global offset for the dedup in feed_tail (a restarted
    // daemon re-reads the file from 0; the durable prefix is skipped).
    let mut fed: u64 = 0;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if handle.failure().is_some() {
            return;
        }
        let Some(p) = parser.as_mut() else { return };
        match file.read(&mut chunk) {
            Ok(0) => {
                if !registry.draining() {
                    std::thread::sleep(Duration::from_millis(registry.opts.poll_ms));
                    continue;
                }
                // Drain: resolve the held-back tail (a legacy stream
                // without a footer is fine; a torn one is a failure).
                let p = parser.take().unwrap_or_default();
                if let Err(e) = p.finish(&mut events) {
                    handle.mark_failed(format!("{}: {e}", path.display()), registry);
                    return;
                }
                feed_tail(registry, &handle, &mut fed, &mut events);
                return;
            }
            Ok(n) => {
                if let Err(e) = p.push(&chunk[..n], &mut events) {
                    handle.mark_failed(format!("{}: {e}", path.display()), registry);
                    return;
                }
                if events.len() >= 4096 {
                    feed_tail(registry, &handle, &mut fed, &mut events);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                handle.mark_failed(format!("{}: {e}", path.display()), registry);
                return;
            }
        }
    }
}

/// Feeds a tail batch with the same offset dedup as the socket path,
/// but blocking on the source mutex (the tail has nowhere to shed to).
fn feed_tail(
    registry: &Registry,
    h: &SourceHandle,
    fed: &mut u64,
    events: &mut Vec<WppEvent>,
) {
    if events.is_empty() {
        return;
    }
    let offset = *fed;
    *fed += events.len() as u64;
    let Ok(mut guard) = h.compactor.lock() else {
        h.mark_failed("compactor poisoned".into(), registry);
        return;
    };
    let Some(c) = guard.as_mut() else { return };
    let acc = c.accepted_events();
    if offset > acc {
        h.mark_failed(
            format!("tail offset gap: batch at {offset}, durable position {acc}"),
            registry,
        );
        events.clear();
        return;
    }
    let already = (acc - offset) as usize;
    if already < events.len() {
        let fresh = &events[already..];
        if let Err(e) = registry.with_op(h, || c.feed(fresh)) {
            h.mark_failed(e.to_string(), registry);
        } else {
            h.acked.store(c.accepted_events(), Ordering::SeqCst);
            h.rate.record(fresh.len() as u64);
            registry.sync_mirrors(h, c, false);
        }
    }
    events.clear();
}

/// Runs the daemon: accepts connections on `listener`, tails
/// `opts.tails`, and drains gracefully when `shutdown` is cancelled
/// (the CLI wires SIGTERM to it) or a client sends `Drain`.
///
/// Returns the [`ServeReport`] after the drain merge. Per-source
/// failures live in the report ([`ServeReport::all_clean`]); only
/// daemon-level I/O (listener setup, the serve-root scan) is a hard
/// error.
pub fn serve(
    dir: &Path,
    listener: ServeListener,
    shutdown: CancelToken,
    opts: ServeOptions,
) -> Result<ServeReport, IngestError> {
    serve_with_admin(dir, listener, None, shutdown, opts)
}

/// [`serve`] with an optional admin-plane listener serving `/metrics`
/// (Prometheus text), `/status` (the schema-v1 JSON document, DESIGN.md
/// §18) and `/healthz` over minimal HTTP/1.0. `None` spawns no extra
/// thread and leaves the daemon byte-identical to the plain [`serve`].
pub fn serve_with_admin(
    dir: &Path,
    listener: ServeListener,
    admin: Option<ServeListener>,
    shutdown: CancelToken,
    opts: ServeOptions,
) -> Result<ServeReport, IngestError> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
    listener.set_nonblocking().map_err(|e| IngestError::Io(format!("listener: {e}")))?;
    if let Some(a) = &admin {
        a.set_nonblocking().map_err(|e| IngestError::Io(format!("admin listener: {e}")))?;
    }
    let registry = Registry {
        dir: dir.to_path_buf(),
        start: Instant::now(),
        drain: AtomicBool::new(false),
        sources: Mutex::new(HashMap::new()),
        connections: AtomicU64::new(0),
        frames: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        quarantined: AtomicU64::new(0),
        opts,
    };

    // Re-open every source a previous process left behind, so a drain
    // merges them even if no client reconnects first. This is also
    // where a restarted daemon pays its resume durability points.
    let mut preexisting: Vec<String> = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err(dir, &e))? {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let path = entry.path();
        if path.is_dir() && super::wal::wal_path(&path).exists() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if valid_source_name(name) {
                    preexisting.push(name.to_owned());
                }
            }
        }
    }
    preexisting.sort();
    for name in &preexisting {
        // A damaged source directory must not kill the daemon: record
        // it as a failed source and keep serving the others.
        if let Err(Frame::Error { message, .. }) = registry.get_or_create(name) {
            registry.opts.log.error(
                "source damaged on startup",
                &[("source", name), ("why", &message)],
            );
            let h = Arc::new(SourceHandle {
                name: name.clone(),
                compactor: Mutex::new(None),
                acked: AtomicU64::new(0),
                segments: AtomicU64::new(0),
                window_events: AtomicU64::new(0),
                last_seal_ms: AtomicU64::new(0),
                rate: RateEstimator::per_second_window(),
                budget_reported: AtomicBool::new(false),
                op_started_ms: AtomicU64::new(0),
                failed: AtomicBool::new(true),
                fail_msg: Mutex::new(Some(message)),
            });
            registry
                .opts
                .obs
                .counter(
                    "twpp_ingest_serve_sources_failed_total",
                    "sources failed in isolation (wedged seal or unrecoverable I/O)",
                )
                .inc();
            if let Ok(mut sources) = registry.sources.lock() {
                sources.insert(name.clone(), h);
            }
        }
    }
    registry.opts.log.info(
        "daemon started",
        &[
            ("dir", &dir.display().to_string()),
            ("listen", &listener.local_addr()),
            ("sources_resumed", &preexisting.len().to_string()),
        ],
    );

    let poll = Duration::from_millis(registry.opts.poll_ms.max(1));
    let watchdog_done = AtomicBool::new(false);
    let admin_done = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        // Admin plane: serve /metrics, /status and /healthz until the
        // report is built, so scrapes observe the finish phase too.
        // Requests touch only atomics, the sources map and the metrics
        // registry — never a compactor lock — so a scrape can't stall
        // (or be stalled by) a wedged seal.
        if let Some(admin_listener) = admin {
            let r = &registry;
            let done = &admin_done;
            scope.spawn(move || {
                let tick = Duration::from_millis(250);
                while !done.load(Ordering::SeqCst) {
                    match admin_listener.accept(tick) {
                        Ok(Some(stream)) => handle_admin_conn(r, stream),
                        Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                        Err(_) => std::thread::sleep(tick),
                    }
                }
            });
        }

        // Watchdog: fail a source whose in-flight durable operation has
        // exceeded the wedge deadline, in isolation.
        let wd_registry = &registry;
        let wd_done = &watchdog_done;
        scope.spawn(move || {
            let tick = Duration::from_millis((wd_registry.opts.wedge_ms / 4).clamp(5, 250));
            while !wd_done.load(Ordering::SeqCst) {
                let handles: Vec<Arc<SourceHandle>> = wd_registry
                    .sources
                    .lock()
                    .map(|g| g.values().cloned().collect())
                    .unwrap_or_default();
                for h in handles {
                    let started = h.op_started_ms.load(Ordering::SeqCst);
                    if started != 0
                        && wd_registry.now_ms().saturating_sub(started)
                            > wd_registry.opts.wedge_ms
                    {
                        h.mark_failed(
                            format!(
                                "watchdog: durable operation wedged past {} ms",
                                wd_registry.opts.wedge_ms
                            ),
                            wd_registry,
                        );
                    }
                }
                std::thread::sleep(tick);
            }
        });

        let mut workers = Vec::new();
        for path in registry.opts.tails.clone() {
            let r = &registry;
            workers.push(scope.spawn(move || run_tail(r, &path)));
        }

        // Accept loop: poll the listener until drain.
        while !registry.draining() {
            if shutdown.is_cancelled() {
                registry.drain.store(true, Ordering::SeqCst);
                break;
            }
            match listener.accept(poll) {
                Ok(Some(stream)) => {
                    let r = &registry;
                    workers.push(scope.spawn(move || handle_conn(r, stream)));
                }
                Ok(None) => std::thread::sleep(poll),
                Err(_) => std::thread::sleep(poll),
            }
        }
        drop(listener);
        registry.opts.log.info("draining", &[]);
        for w in workers {
            let _ = w.join();
        }
        // Stand the watchdog down before the finish phase: the drain
        // merge is legitimately long, and a source wedged *there*
        // could not be failed usefully anyway (finish owns the
        // compactor; nothing else is waiting on it).
        watchdog_done.store(true, Ordering::SeqCst);

        // Finish phase: seal + merge every source, sorted for a
        // deterministic report. Failed sources are skipped (resumable
        // on disk); empty sources have nothing to merge.
        let handles: Vec<Arc<SourceHandle>> = {
            let mut v: Vec<_> = registry
                .sources
                .lock()
                .map(|g| g.values().cloned().collect())
                .unwrap_or_default();
            v.sort_by(|a, b| a.name.cmp(&b.name));
            v
        };
        let mut sources = Vec::with_capacity(handles.len());
        for h in handles {
            let mut report = SourceReport {
                name: h.name.clone(),
                events: h.acked.load(Ordering::SeqCst),
                segments: h.segments.load(Ordering::SeqCst),
                merged: None,
                failed: h.failure(),
            };
            if report.failed.is_none() {
                let taken = h.compactor.lock().ok().and_then(|mut g| g.take());
                if let Some(c) = taken {
                    report.events = c.accepted_events();
                    if c.accepted_events() > 0 {
                        match c.finish() {
                            Ok(fin) => {
                                report.segments = fin.segments;
                                report.merged = Some(fin.path);
                            }
                            Err(e) => {
                                h.mark_failed(format!("drain merge: {e}"), &registry);
                            }
                        }
                    }
                }
                report.failed = h.failure();
            }
            registry.opts.log.info(
                "source drained",
                &[
                    ("source", &report.name),
                    ("events", &report.events.to_string()),
                    ("segments", &report.segments.to_string()),
                    ("failed", report.failed.as_deref().unwrap_or("-")),
                ],
            );
            sources.push(report);
        }
        let report = ServeReport {
            sources,
            connections: registry.connections.load(Ordering::SeqCst),
            frames: registry.frames.load(Ordering::SeqCst),
            busy_responses: registry.busy.load(Ordering::SeqCst),
            quarantined: registry.quarantined.load(Ordering::SeqCst),
        };
        admin_done.store(true, Ordering::SeqCst);
        report
    });
    let obs = &registry.opts.obs;
    obs.counter("twpp_ingest_serve_connections_total", "connections accepted")
        .add(report.connections);
    obs.counter("twpp_ingest_serve_frames_total", "frames handled")
        .add(report.frames);
    obs.counter(
        "twpp_ingest_serve_busy_total",
        "Busy replies sent (backpressure and injected net faults)",
    )
    .add(report.busy_responses);
    obs.counter(
        "twpp_ingest_serve_quarantined_total",
        "connections quarantined for protocol violations",
    )
    .add(report.quarantined);
    registry.opts.log.info(
        "daemon drained",
        &[
            ("sources", &report.sources.len().to_string()),
            ("connections", &report.connections.to_string()),
            ("clean", if report.all_clean() { "true" } else { "false" }),
        ],
    );
    Ok(report)
}

/// The version of the `/status` JSON document.
pub const STATUS_SCHEMA_VERSION: u64 = 1;

/// Builds the `/status` document (schema v1, DESIGN.md §18). Reads only
/// atomics and the sources-map lock — never a compactor mutex — so it
/// stays responsive while a source is mid-seal or wedged.
fn status_json(registry: &Registry) -> String {
    let handles: Vec<Arc<SourceHandle>> = {
        let mut v: Vec<_> = registry
            .sources
            .lock()
            .map(|g| g.values().cloned().collect())
            .unwrap_or_default();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    };
    let now = registry.now_ms();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("status_schema_version");
    w.uint(STATUS_SCHEMA_VERSION);
    w.key("command");
    w.string("serve-ingest");
    w.key("uptime_ms");
    w.uint(registry.start.elapsed().as_millis() as u64);
    w.key("draining");
    w.boolean(registry.draining());
    w.key("connections_total");
    w.uint(registry.connections.load(Ordering::SeqCst));
    w.key("frames_total");
    w.uint(registry.frames.load(Ordering::SeqCst));
    w.key("busy_total");
    w.uint(registry.busy.load(Ordering::SeqCst));
    w.key("quarantined_total");
    w.uint(registry.quarantined.load(Ordering::SeqCst));
    w.key("sources");
    w.begin_array();
    for h in &handles {
        let started = h.op_started_ms.load(Ordering::SeqCst);
        w.begin_object();
        w.key("name");
        w.string(&h.name);
        w.key("durable_events");
        w.uint(h.acked.load(Ordering::SeqCst));
        w.key("window_events");
        w.uint(h.window_events.load(Ordering::SeqCst));
        w.key("segments");
        w.uint(h.segments.load(Ordering::SeqCst));
        w.key("last_seal_ms");
        w.uint(h.last_seal_ms.load(Ordering::SeqCst));
        w.key("events_per_sec");
        w.float(h.rate.per_second());
        w.key("in_op_ms");
        w.uint(if started == 0 { 0 } else { now.saturating_sub(started) });
        w.key("failed");
        w.boolean(h.failed.load(Ordering::SeqCst));
        w.key("failure");
        match h.failure() {
            Some(why) => w.string(&why),
            None => w.null(),
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Serves one admin-plane request: parse the GET line, route, reply,
/// close. Runs inline on the admin accept thread — requests are a few
/// hundred bytes and responses one registry snapshot, so a dedicated
/// thread per scrape would buy nothing.
fn handle_admin_conn(registry: &Registry, mut stream: Box<dyn ConnStream>) {
    let path = match http_read_request_path(&mut stream) {
        Ok(p) => p,
        Err(_) => {
            let _ = http_write_response(&mut stream, 400, "Bad Request", "text/plain", b"bad request\n");
            return;
        }
    };
    let result = match path.as_str() {
        "/metrics" => {
            // Daemon-level gauges are refreshed per scrape, so an idle
            // daemon still exposes a non-empty, parseable document.
            // Per-source detail lives in /status (gauge names must be
            // static; source names are not).
            let obs = &registry.opts.obs;
            obs.gauge("twpp_ingest_uptime_ms", "Milliseconds since daemon start")
                .set(registry.now_ms() as i64);
            obs.gauge("twpp_ingest_draining", "1 once drain has begun")
                .set(registry.draining() as i64);
            let (sources, failed) = registry
                .sources
                .lock()
                .map(|g| {
                    let failed =
                        g.values().filter(|h| h.failed.load(Ordering::SeqCst)).count();
                    (g.len(), failed)
                })
                .unwrap_or((0, 0));
            obs.gauge("twpp_ingest_sources", "Sources currently registered")
                .set(sources as i64);
            obs.gauge("twpp_ingest_sources_failed", "Sources failed by the watchdog")
                .set(failed as i64);
            http_write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                obs.prometheus_text().as_bytes(),
            )
        }
        "/status" => http_write_response(
            &mut stream,
            200,
            "OK",
            "application/json",
            status_json(registry).as_bytes(),
        ),
        "/healthz" => {
            let wedged = registry
                .sources
                .lock()
                .map(|g| g.values().any(|h| h.failed.load(Ordering::SeqCst)))
                .unwrap_or(true);
            let (status, reason, body) = if registry.draining() {
                (503, "Service Unavailable", &b"draining\n"[..])
            } else if wedged {
                (503, "Service Unavailable", &b"degraded\n"[..])
            } else {
                (200, "OK", &b"ok\n"[..])
            };
            http_write_response(&mut stream, status, reason, "text/plain", body)
        }
        _ => http_write_response(&mut stream, 404, "Not Found", "text/plain", b"not found\n"),
    };
    let _ = result;
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::net::Client;
    use twpp_ir::{BlockId, FuncId};

    fn workload(n: usize) -> Vec<WppEvent> {
        let mut ev = vec![WppEvent::Enter(FuncId::from_index(0))];
        for i in 0..n {
            ev.push(WppEvent::Block(BlockId::new(1 + (i % 7) as u32)));
            if i % 5 == 0 {
                ev.push(WppEvent::Enter(FuncId::from_index(1 + i % 3)));
                ev.push(WppEvent::Block(BlockId::new(2)));
                ev.push(WppEvent::Exit);
            }
        }
        ev.push(WppEvent::Exit);
        ev
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "twpp-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Batch baseline: one compactor fed everything in one call.
    fn baseline_merged(dir: &Path, events: &[WppEvent], opts: &ServeOptions) -> Vec<u8> {
        let mut c = Compactor::create(dir, opts.ingest_options()).unwrap();
        c.feed(events).unwrap();
        let fin = c.finish().unwrap();
        fs::read(fin.path).unwrap()
    }

    fn small_opts() -> ServeOptions {
        ServeOptions {
            seal_bytes: 256,
            durability: Durability::Flush,
            poll_ms: 5,
            ..ServeOptions::default()
        }
    }

    /// Spawns a daemon on a loopback port; returns (addr, join-handle).
    fn spawn_daemon(
        dir: &Path,
        opts: ServeOptions,
        shutdown: CancelToken,
    ) -> (String, std::thread::JoinHandle<ServeReport>) {
        let listener = ServeListener::bind("tcp:127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let dir = dir.to_path_buf();
        let handle =
            std::thread::spawn(move || serve(&dir, listener, shutdown, opts).unwrap());
        (addr, handle)
    }

    fn connect(addr: &str) -> TcpStream {
        let hostport = addr.strip_prefix("tcp:").unwrap();
        let s = TcpStream::connect(hostport).unwrap();
        s.set_nodelay(true).unwrap();
        s
    }

    #[test]
    fn drain_equivalence_with_batch_baseline() {
        let root = tmp_dir("drain");
        let serve_dir = root.join("serve");
        let events = workload(300);
        let opts = small_opts();
        let baseline = baseline_merged(&root.join("baseline"), &events, &opts);

        let (addr, daemon) = spawn_daemon(&serve_dir, opts, CancelToken::new());
        let mut client = Client::hello(connect(&addr), "web-01").unwrap();
        assert_eq!(client.accepted(), 0);
        for batch in events.chunks(37) {
            client.send_events(batch, &Retry::new(8, 1, 4, 7)).unwrap();
        }
        assert_eq!(client.accepted(), events.len() as u64);
        client.drain().unwrap();
        let report = daemon.join().unwrap();
        assert!(report.all_clean(), "{report:?}");
        assert_eq!(report.sources.len(), 1);
        let merged = report.sources[0].merged.clone().unwrap();
        assert_eq!(
            fs::read(merged).unwrap(),
            baseline,
            "drained daemon must be byte-identical to the batch baseline"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn busy_shedding_loses_no_acknowledged_events() {
        let root = tmp_dir("busy");
        let serve_dir = root.join("serve");
        let events = workload(200);
        let mut opts = small_opts();
        // Shed every 3rd frame spuriously; the client must retry its
        // way through with zero acknowledged loss.
        opts.faults = FaultPlan::net_fault_every(3);
        let baseline = baseline_merged(&root.join("baseline"), &events, &opts);

        let (addr, daemon) = spawn_daemon(&serve_dir, opts, CancelToken::new());
        let mut client = Client::hello(connect(&addr), "busy-src").unwrap();
        for batch in events.chunks(23) {
            client.send_events(batch, &Retry::new(16, 1, 4, 9)).unwrap();
        }
        client.drain().unwrap();
        let report = daemon.join().unwrap();
        assert!(report.all_clean(), "{report:?}");
        assert!(report.busy_responses > 0, "the fault plan must have shed frames");
        let merged = report.sources[0].merged.clone().unwrap();
        assert_eq!(fs::read(merged).unwrap(), baseline);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn garbage_connection_is_quarantined_daemon_survives() {
        let root = tmp_dir("quarantine");
        let serve_dir = root.join("serve");
        let events = workload(60);
        let opts = small_opts();
        let baseline = baseline_merged(&root.join("baseline"), &events, &opts);

        let (addr, daemon) = spawn_daemon(&serve_dir, opts, CancelToken::new());
        // A connection speaking the wrong protocol is refused and cut.
        {
            let mut bad = connect(&addr);
            bad.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let mut reply = Vec::new();
            let _ = bad.read_to_end(&mut reply); // server closes after the ERR frame
            assert!(!reply.is_empty(), "expected a typed protocol error frame");
        }
        // A well-behaved client on a fresh connection is unaffected.
        let mut client = Client::hello(connect(&addr), "good").unwrap();
        for batch in events.chunks(19) {
            client.send_events(batch, &Retry::new(8, 1, 4, 3)).unwrap();
        }
        client.drain().unwrap();
        let report = daemon.join().unwrap();
        assert!(report.quarantined >= 1, "{report:?}");
        assert!(report.all_clean(), "{report:?}");
        let merged = report.sources[0].merged.clone().unwrap();
        assert_eq!(fs::read(merged).unwrap(), baseline);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn watchdog_fails_wedged_source_in_isolation() {
        let root = tmp_dir("wedge");
        let serve_dir = root.join("serve");
        let mut opts = small_opts();
        // Every seal sleeps 400 ms; the watchdog deadline is 80 ms, so
        // the first seal wedges and the source is failed in isolation.
        opts.faults = FaultPlan::delay(400);
        opts.wedge_ms = 80;
        let (addr, daemon) = spawn_daemon(&serve_dir, opts, CancelToken::new());
        let mut client = Client::hello(connect(&addr), "wedged").unwrap();
        let events = workload(300);
        let mut failed = false;
        for batch in events.chunks(64) {
            match client.send_events(batch, &Retry::new(4, 1, 4, 5)) {
                Ok(_) => {}
                Err(NetError::Remote { code, .. }) => {
                    assert_eq!(code, ERR_SOURCE_FAILED);
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(failed, "the wedged seal must surface as a source failure");
        // The daemon still accepts and drains a healthy source.
        let mut ok_client = Client::hello(connect(&addr), "healthy").unwrap();
        ok_client
            .send_events(
                &[
                    WppEvent::Enter(FuncId::from_index(0)),
                    WppEvent::Block(BlockId::new(1)),
                    WppEvent::Exit,
                ],
                &Retry::new(8, 1, 4, 11),
            )
            .unwrap();
        ok_client.drain().unwrap();
        let report = daemon.join().unwrap();
        assert!(!report.all_clean());
        let wedged = report.sources.iter().find(|s| s.name == "wedged").unwrap();
        assert!(wedged.failed.is_some());
        let healthy = report.sources.iter().find(|s| s.name == "healthy").unwrap();
        assert!(healthy.failed.is_none());
        assert!(healthy.merged.is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn cancel_token_drains_like_a_drain_frame() {
        let root = tmp_dir("cancel");
        let serve_dir = root.join("serve");
        let events = workload(120);
        let opts = small_opts();
        let baseline = baseline_merged(&root.join("baseline"), &events, &opts);
        let shutdown = CancelToken::new();
        let (addr, daemon) = spawn_daemon(&serve_dir, opts, shutdown.clone());
        let mut client = Client::hello(connect(&addr), "sig").unwrap();
        for batch in events.chunks(31) {
            client.send_events(batch, &Retry::new(8, 1, 4, 13)).unwrap();
        }
        // SIGTERM stand-in: cancel the token instead of sending Drain.
        shutdown.cancel();
        let report = daemon.join().unwrap();
        assert!(report.all_clean(), "{report:?}");
        let merged = report.sources[0].merged.clone().unwrap();
        assert_eq!(fs::read(merged).unwrap(), baseline);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tailed_file_is_ingested_and_drained() {
        let root = tmp_dir("tail");
        let serve_dir = root.join("serve");
        let events = workload(150);
        let opts = small_opts();
        let baseline = baseline_merged(&root.join("baseline"), &events, &opts);

        // Write a raw .wpp file (with footer) to tail.
        let wpp = twpp_tracer::raw::RawWpp::from_events(&events);
        let tail_path = root.join("feed-a.wpp");
        let mut buf = Vec::new();
        wpp.write_to(&mut buf).unwrap();
        fs::write(&tail_path, &buf).unwrap();

        let mut opts2 = opts.clone();
        opts2.tails = vec![tail_path];
        let shutdown = CancelToken::new();
        let (_addr, daemon) = spawn_daemon(&serve_dir, opts2, shutdown.clone());
        // Give the tail a moment to reach EOF, then drain.
        std::thread::sleep(Duration::from_millis(150));
        shutdown.cancel();
        let report = daemon.join().unwrap();
        assert!(report.all_clean(), "{report:?}");
        let src = report.sources.iter().find(|s| s.name == "feed-a").unwrap();
        assert_eq!(src.events, events.len() as u64);
        let merged = src.merged.clone().unwrap();
        assert_eq!(fs::read(merged).unwrap(), baseline);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reconnect_resumes_from_durable_position() {
        let root = tmp_dir("reconnect");
        let serve_dir = root.join("serve");
        let events = workload(200);
        let opts = small_opts();
        let baseline = baseline_merged(&root.join("baseline"), &events, &opts);
        let (addr, daemon) = spawn_daemon(&serve_dir, opts, CancelToken::new());

        // First connection feeds half, then vanishes without closing
        // cleanly.
        let half = events.len() / 2;
        {
            let mut c1 = Client::hello(connect(&addr), "re").unwrap();
            for batch in events[..half].chunks(29) {
                c1.send_events(batch, &Retry::new(8, 1, 4, 17)).unwrap();
            }
        }
        // Second connection learns the durable position from Hello and
        // replays from a safe earlier point; dedup keeps it exactly-once.
        let mut c2 = Client::hello(connect(&addr), "re").unwrap();
        let acc = c2.accepted() as usize;
        assert_eq!(acc, half);
        for batch in events[acc..].chunks(41) {
            c2.send_events(batch, &Retry::new(8, 1, 4, 19)).unwrap();
        }
        c2.drain().unwrap();
        let report = daemon.join().unwrap();
        assert!(report.all_clean(), "{report:?}");
        let merged = report.sources[0].merged.clone().unwrap();
        assert_eq!(fs::read(merged).unwrap(), baseline);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tail_source_names_are_sanitized() {
        assert_eq!(tail_source_name(Path::new("/x/feed-a.wpp")), "feed-a");
        assert_eq!(tail_source_name(Path::new("/x/häßlich name.wpp")), "h__lich_name");
        assert_eq!(tail_source_name(Path::new("/x/.hidden")), "t.hidden");
    }

    /// Spawns a daemon with the admin plane up; returns
    /// (ingest addr, admin addr, join-handle).
    fn spawn_admin_daemon(
        dir: &Path,
        opts: ServeOptions,
        shutdown: CancelToken,
    ) -> (String, String, std::thread::JoinHandle<ServeReport>) {
        let listener = ServeListener::bind("tcp:127.0.0.1:0").unwrap();
        let admin = ServeListener::bind("tcp:127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let admin_addr = admin.local_addr();
        let dir = dir.to_path_buf();
        let handle = std::thread::spawn(move || {
            serve_with_admin(&dir, listener, Some(admin), shutdown, opts).unwrap()
        });
        (addr, admin_addr, handle)
    }

    /// Golden schema check for one /status document (schema v1).
    fn assert_status_schema(text: &str) -> crate::obs::Json {
        let doc = crate::obs::parse_json(text).unwrap();
        assert_eq!(
            doc.get("status_schema_version").unwrap().as_num().unwrap(),
            STATUS_SCHEMA_VERSION as f64
        );
        assert_eq!(doc.get("command").unwrap().as_str().unwrap(), "serve-ingest");
        for key in [
            "uptime_ms",
            "connections_total",
            "frames_total",
            "busy_total",
            "quarantined_total",
        ] {
            assert!(doc.get(key).unwrap().as_num().is_some(), "{key} must be a number");
        }
        assert!(doc.get("draining").unwrap().as_bool().is_some());
        for s in doc.get("sources").unwrap().as_arr().unwrap() {
            assert!(s.get("name").unwrap().as_str().is_some());
            for key in [
                "durable_events",
                "window_events",
                "segments",
                "last_seal_ms",
                "events_per_sec",
                "in_op_ms",
            ] {
                assert!(s.get(key).unwrap().as_num().is_some(), "{key} must be a number");
            }
            assert!(s.get("failed").unwrap().as_bool().is_some());
            assert!(s.get("failure").is_some());
        }
        doc
    }

    #[test]
    fn admin_plane_serves_metrics_status_and_healthz() {
        let root = tmp_dir("admin");
        let serve_dir = root.join("serve");
        let mut opts = small_opts();
        opts.obs = Obs::collecting();
        opts.flightrec = Some(Arc::new(FlightRecorder::new(64)));
        let events = workload(200);
        let (addr, admin, daemon) = spawn_admin_daemon(&serve_dir, opts, CancelToken::new());

        let mut client = Client::hello(connect(&addr), "adm-src").unwrap();
        for batch in events.chunks(37) {
            client.send_events(batch, &Retry::new(8, 1, 4, 7)).unwrap();
        }

        // /healthz while serving.
        let (code, body) = crate::net::http_get(&admin, "/healthz").unwrap();
        assert_eq!((code, body.as_str()), (200, "ok\n"));
        // /metrics parses under the strict exposition parser.
        let (code, text) = crate::net::http_get(&admin, "/metrics").unwrap();
        assert_eq!(code, 200);
        let families = crate::obs::parse_prometheus_text(&text).unwrap();
        assert!(
            families.iter().any(|f| f.name == "twpp_core_ingest_events_total"),
            "ingest counters must be live: {text}"
        );
        assert!(
            families.iter().any(|f| f.name == "twpp_core_ingest_wal_append_us"
                && f.kind == "histogram"),
            "latency histograms must be exposed"
        );
        // /status matches the golden schema and reflects the source.
        let (code, status) = crate::net::http_get(&admin, "/status").unwrap();
        assert_eq!(code, 200);
        let doc = assert_status_schema(&status);
        let sources = doc.get("sources").unwrap().as_arr().unwrap().to_vec();
        assert_eq!(sources.len(), 1);
        let s = &sources[0];
        assert_eq!(s.get("name").unwrap().as_str().unwrap(), "adm-src");
        assert_eq!(
            s.get("durable_events").unwrap().as_num().unwrap(),
            events.len() as f64
        );
        assert!(!s.get("failed").unwrap().as_bool().unwrap());
        // Unknown paths 404; the daemon keeps serving.
        let (code, _) = crate::net::http_get(&admin, "/nope").unwrap();
        assert_eq!(code, 404);

        client.drain().unwrap();
        let report = daemon.join().unwrap();
        assert!(report.all_clean(), "{report:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn status_scrape_never_waits_on_a_held_compactor_lock() {
        let root = tmp_dir("scrape");
        let serve_dir = root.join("serve");
        let mut opts = small_opts();
        // Every seal sleeps 300 ms with the compactor mutex held; the
        // watchdog deadline is far away, so the source stays healthy
        // and busy. Scrapes must not queue behind that lock.
        opts.faults = FaultPlan::delay(300);
        opts.wedge_ms = 60_000;
        let (addr, admin, daemon) = spawn_admin_daemon(&serve_dir, opts, CancelToken::new());

        let events = workload(400);
        let feeder = std::thread::spawn(move || {
            let mut client = Client::hello(connect(&addr), "slow").unwrap();
            for batch in events.chunks(64) {
                let _ = client.send_events(batch, &Retry::new(16, 1, 4, 21));
            }
            let _ = client.drain();
        });
        // Scrape repeatedly while seals are sleeping on the lock.
        for _ in 0..10 {
            let begin = Instant::now();
            let (code, status) = crate::net::http_get(&admin, "/status").unwrap();
            assert_eq!(code, 200);
            assert_status_schema(&status);
            assert!(
                begin.elapsed() < Duration::from_millis(250),
                "a /status scrape must not block on the compactor ({}ms)",
                begin.elapsed().as_millis()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        feeder.join().unwrap();
        daemon.join().unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn watchdog_failure_dumps_a_parseable_flight_recorder() {
        let root = tmp_dir("flightrec");
        let serve_dir = root.join("serve");
        let mut opts = small_opts();
        opts.faults = FaultPlan::delay(400);
        opts.wedge_ms = 80;
        opts.flightrec = Some(Arc::new(FlightRecorder::new(128)));
        let (addr, admin, daemon) = spawn_admin_daemon(&serve_dir, opts, CancelToken::new());
        let mut client = Client::hello(connect(&addr), "doomed").unwrap();
        let events = workload(300);
        for batch in events.chunks(64) {
            if client.send_events(batch, &Retry::new(4, 1, 4, 5)).is_err() {
                break;
            }
        }
        // Wait until the watchdog flags the source in /status.
        let mut flagged = false;
        for _ in 0..100 {
            let (_, status) = crate::net::http_get(&admin, "/status").unwrap();
            let doc = assert_status_schema(&status);
            let sources = doc.get("sources").unwrap().as_arr().unwrap().to_vec();
            if sources.iter().any(|s| s.get("failed").unwrap().as_bool() == Some(true)) {
                flagged = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(flagged, "/status must flag the wedged source");
        // A wedged source means /healthz degrades.
        let (code, body) = crate::net::http_get(&admin, "/healthz").unwrap();
        assert_eq!((code, body.as_str()), (503, "degraded\n"));
        // The dump is on disk and parseable, with the failure recorded.
        let dumps: Vec<PathBuf> = fs::read_dir(&serve_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("flightrec-") && n.ends_with(".json"))
            })
            .collect();
        assert!(!dumps.is_empty(), "watchdog failure must dump the flight recorder");
        let doc = crate::obs::parse_json(&fs::read_to_string(&dumps[0]).unwrap()).unwrap();
        assert_eq!(doc.get("flightrec_version").unwrap().as_num().unwrap(), 1.0);
        let records = doc.get("records").unwrap().as_arr().unwrap().to_vec();
        assert!(!records.is_empty());
        assert!(
            records.iter().any(|r| r.get("op").unwrap().as_str() == Some("failed")),
            "the failure itself must be the ring's last act"
        );
        drop(client);
        let mut ok = Client::hello(connect(&addr), "healthy").unwrap();
        ok.send_events(
            &[
                WppEvent::Enter(FuncId::from_index(0)),
                WppEvent::Block(BlockId::new(1)),
                WppEvent::Exit,
            ],
            &Retry::new(8, 1, 4, 11),
        )
        .unwrap();
        ok.drain().unwrap();
        let report = daemon.join().unwrap();
        assert!(!report.all_clean());
        let _ = fs::remove_dir_all(&root);
    }
}
