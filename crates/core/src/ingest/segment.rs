//! Sealed segments and their manifests.
//!
//! A sealed segment is an ordinary committed v3 archive
//! (`seg-000001.twpa`) holding the window's events *wrapped* into a
//! well-formed single-root WPP: the activation stack that was open when
//! the window started is re-entered with synthetic `Enter` events, and
//! the archive's own reconstruction closes whatever is still open at the
//! window's end with implicit `Exit`s. The manifest (`seg-000001.man`)
//! records exactly how much of that wrapping to strip — `depth_start`
//! synthetic enters at the front, `end_stack.len()` implicit exits at
//! the back — plus where the window sits in the global event stream, so
//! a merge can splice the original events back together byte-for-byte.
//!
//! # Manifest format (all integers little-endian)
//!
//! ```text
//! "TWPM" | version u32 | seq u64 | events u64 | accepted_before u64
//!        | depth_start u32 | end_stack_len u32 | end_stack FuncId u32s
//!        | crc32 over everything above
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use twpp_ir::checksum::crc32;
use twpp_ir::FuncId;

use super::{io_err, IngestError};

/// Magic bytes opening a segment manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"TWPM";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;
/// Fixed-size portion of a manifest before the stack and trailing CRC.
const MANIFEST_FIXED_LEN: usize = 4 + 4 + 8 + 8 + 8 + 4 + 4;
/// Sanity cap on a decoded stack length (deeper than any real trace).
const MAX_STACK_LEN: u32 = 1 << 24;

/// Path of segment `seq`'s archive inside a compactor directory.
pub fn archive_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:06}.twpa"))
}

/// Path of segment `seq`'s manifest inside a compactor directory.
pub fn manifest_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:06}.man"))
}

/// The manifest of one sealed segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegmentMeta {
    /// 1-based sequence number; segments are contiguous from 1.
    pub seq: u64,
    /// Events of the original stream in this window (wrapping excluded).
    pub events: u64,
    /// Events of the original stream sealed into earlier segments.
    pub accepted_before: u64,
    /// Synthetic `Enter`s prepended when the window was wrapped — the
    /// activation depth at the window's start.
    pub depth_start: u32,
    /// Activations still open at the window's end, outermost first. The
    /// next segment's `depth_start` equals this stack's length, and the
    /// archive's reconstruction appends this many implicit `Exit`s.
    pub end_stack: Vec<FuncId>,
}

impl SegmentMeta {
    /// Activation depth at the window's end.
    pub fn depth_end(&self) -> u32 {
        self.end_stack.len() as u32
    }

    /// Events of the original stream sealed once this segment is in.
    pub fn accepted_after(&self) -> u64 {
        self.accepted_before + self.events
    }

    /// Serialises the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MANIFEST_FIXED_LEN + self.end_stack.len() * 4 + 4);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.events.to_le_bytes());
        out.extend_from_slice(&self.accepted_before.to_le_bytes());
        out.extend_from_slice(&self.depth_start.to_le_bytes());
        out.extend_from_slice(&(self.end_stack.len() as u32).to_le_bytes());
        for f in &self.end_stack {
            out.extend_from_slice(&f.as_u32().to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and verifies a manifest. The error string says what was
    /// wrong; callers wrap it with the file's path.
    pub fn decode(bytes: &[u8]) -> Result<SegmentMeta, String> {
        if bytes.len() < MANIFEST_FIXED_LEN + 4 {
            return Err(format!("manifest too short ({} bytes)", bytes.len()));
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err("bad manifest magic (expected TWPM)".to_owned());
        }
        let u32_at = |at: usize| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[at..at + 4]);
            u32::from_le_bytes(b)
        };
        let u64_at = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(b)
        };
        let version = u32_at(4);
        if version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        let stack_len = u32_at(MANIFEST_FIXED_LEN - 4);
        if stack_len > MAX_STACK_LEN {
            return Err(format!("implausible stack length {stack_len}"));
        }
        let want = MANIFEST_FIXED_LEN + stack_len as usize * 4 + 4;
        if bytes.len() != want {
            return Err(format!(
                "manifest length mismatch: {} bytes, expected {want}",
                bytes.len()
            ));
        }
        let crc_at = want - 4;
        let actual = crc32(&bytes[..crc_at]);
        if actual != u32_at(crc_at) {
            return Err("manifest checksum mismatch".to_owned());
        }
        let end_stack = (0..stack_len as usize)
            .map(|i| FuncId::from_u32(u32_at(MANIFEST_FIXED_LEN + i * 4)))
            .collect();
        Ok(SegmentMeta {
            seq: u64_at(8),
            events: u64_at(16),
            accepted_before: u64_at(24),
            depth_start: u32_at(32),
            end_stack,
        })
    }
}

/// One segment file pair found on disk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegmentFiles {
    /// Sequence number parsed from the file name.
    pub seq: u64,
    /// The manifest path, if `seg-<seq>.man` exists.
    pub manifest: Option<PathBuf>,
    /// The archive path, if `seg-<seq>.twpa` exists.
    pub archive: Option<PathBuf>,
}

/// Scans a compactor directory for segment files, sorted by sequence
/// number. Also returns any stray `.tmp` staging files (leftovers of a
/// write that was racing a crash — always safe to delete, their content
/// was never acknowledged as a file).
pub fn list_segment_files(dir: &Path) -> Result<(Vec<SegmentFiles>, Vec<PathBuf>), IngestError> {
    let mut by_seq: std::collections::BTreeMap<u64, SegmentFiles> =
        std::collections::BTreeMap::new();
    let mut tmps = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err(dir, &e))? {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            tmps.push(path);
            continue;
        }
        let (stem, is_manifest) = if let Some(s) = name.strip_suffix(".man") {
            (s, true)
        } else if let Some(s) = name.strip_suffix(".twpa") {
            (s, false)
        } else {
            continue;
        };
        let Some(seq) = stem
            .strip_prefix("seg-")
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let files = by_seq.entry(seq).or_insert(SegmentFiles {
            seq,
            manifest: None,
            archive: None,
        });
        if is_manifest {
            files.manifest = Some(path);
        } else {
            files.archive = Some(path);
        }
    }
    Ok((by_seq.into_values().collect(), tmps))
}

/// Loads and chain-validates every sealed segment's manifest.
///
/// The sealed chain must be contiguous from sequence 1, each segment's
/// `accepted_before` must equal its predecessor's `accepted_after`, and
/// its `depth_start` must equal the predecessor's end-stack depth —
/// otherwise the directory was not produced by a single ingest run and
/// resuming it would silently misplace events. An archive *without* a
/// manifest is tolerated only as the newest file (a crash between the
/// archive rename and the manifest rename); its events are still in the
/// WAL, so the orphan archive is simply ignored and reported.
pub fn load_sealed_chain(dir: &Path) -> Result<(Vec<SegmentMeta>, Vec<PathBuf>), IngestError> {
    let (files, tmps) = list_segment_files(dir)?;
    let last_manifest_seq = files
        .iter()
        .filter(|f| f.manifest.is_some())
        .map(|f| f.seq)
        .max();
    let mut metas = Vec::new();
    let mut orphans = tmps;
    for f in &files {
        match (&f.manifest, &f.archive) {
            (Some(man), Some(_)) => {
                let bytes = fs::read(man).map_err(|e| io_err(man, &e))?;
                let meta = SegmentMeta::decode(&bytes)
                    .map_err(|e| IngestError::Segment(format!("{}: {e}", man.display())))?;
                if meta.seq != f.seq {
                    return Err(IngestError::Segment(format!(
                        "{}: manifest claims sequence {} but file name says {}",
                        man.display(),
                        meta.seq,
                        f.seq
                    )));
                }
                metas.push(meta);
            }
            (Some(man), None) => {
                return Err(IngestError::Segment(format!(
                    "{}: manifest present but archive seg-{:06}.twpa is missing",
                    man.display(),
                    f.seq
                )));
            }
            (None, Some(arch)) => {
                // Only a crash between the two durable renames of the
                // *latest* seal can leave an archive without a manifest.
                if last_manifest_seq.is_some_and(|last| f.seq <= last) {
                    return Err(IngestError::Segment(format!(
                        "{}: archive has no manifest but later segments do",
                        arch.display()
                    )));
                }
                orphans.push(arch.clone());
            }
            (None, None) => unreachable!("entry without either file"),
        }
    }
    for (i, meta) in metas.iter().enumerate() {
        let want_seq = i as u64 + 1;
        if meta.seq != want_seq {
            return Err(IngestError::Segment(format!(
                "sealed chain is not contiguous: expected sequence {want_seq}, found {}",
                meta.seq
            )));
        }
        let (want_before, want_depth) = if i == 0 {
            (0, 0)
        } else {
            (metas[i - 1].accepted_after(), metas[i - 1].depth_end())
        };
        if meta.accepted_before != want_before {
            return Err(IngestError::Segment(format!(
                "segment {} starts at event {} but the chain had sealed {want_before}",
                meta.seq, meta.accepted_before
            )));
        }
        if meta.depth_start != want_depth {
            return Err(IngestError::Segment(format!(
                "segment {} starts at depth {} but the previous segment ended at {want_depth}",
                meta.seq, meta.depth_start
            )));
        }
    }
    Ok((metas, orphans))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn meta() -> SegmentMeta {
        SegmentMeta {
            seq: 3,
            events: 1200,
            accepted_before: 2400,
            depth_start: 2,
            end_stack: vec![FuncId::from_index(0), FuncId::from_index(4)],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = meta();
        let bytes = m.encode();
        assert_eq!(SegmentMeta::decode(&bytes).unwrap(), m);
        assert_eq!(m.accepted_after(), 3600);
        assert_eq!(m.depth_end(), 2);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = meta();
        let good = m.encode();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(SegmentMeta::decode(&bad).is_err(), "flip at byte {i} undetected");
        }
        assert!(SegmentMeta::decode(&good[..good.len() - 1]).is_err());
        assert!(SegmentMeta::decode(&[]).is_err());
    }

    #[test]
    fn paths_are_zero_padded() {
        let dir = Path::new("/x");
        assert_eq!(archive_path(dir, 7), Path::new("/x/seg-000007.twpa"));
        assert_eq!(manifest_path(dir, 7), Path::new("/x/seg-000007.man"));
    }
}
