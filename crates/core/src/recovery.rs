//! Recovery reporting for damaged TWPP archives.
//!
//! [`crate::TwppArchive::recover`] walks an archive that failed strict
//! validation, salvages every region whose checksum still verifies, and
//! returns a [`RecoveryReport`] describing exactly what survived and what
//! was lost. The report is the machine-readable side of `twpp fsck`.
//!
//! Salvage is codec-agnostic on the way in: the per-block codec tags
//! ([`crate::Codec`]) live inside frame payloads and are handled by the
//! trace decoder, so frames written with the adaptive codec verify and
//! decode exactly like legacy ones. The *rebuilt* archive, however, is
//! re-encoded through the default writer and therefore always carries the
//! legacy encoding — salvaging an adaptive archive may grow it, never
//! corrupt it.

#![deny(clippy::unwrap_used)]

use std::fmt;

use twpp_ir::FuncId;

/// The verdict for one checksummed region of the archive.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum RegionStatus {
    /// Checksum verified and the region decoded.
    Ok,
    /// The stored CRC32 does not match the region bytes.
    BadChecksum,
    /// The region extends past the end of the file (or its frame header
    /// claims an impossible length).
    Truncated,
    /// The checksum verified but the payload failed semantic decoding;
    /// the string names the decode error.
    Undecodable(String),
    /// The writer recorded this function as failed during compaction (a
    /// degraded run): no payload was ever written, by design. The
    /// archive is intact; the function's traces were lost upstream.
    FailedAtCompaction,
}

impl RegionStatus {
    /// Whether the region was salvaged.
    pub fn is_ok(&self) -> bool {
        matches!(self, RegionStatus::Ok)
    }
}

impl fmt::Display for RegionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionStatus::Ok => f.write_str("ok"),
            RegionStatus::BadChecksum => f.write_str("checksum mismatch"),
            RegionStatus::Truncated => f.write_str("truncated"),
            RegionStatus::Undecodable(why) => write!(f, "undecodable ({why})"),
            RegionStatus::FailedAtCompaction => f.write_str("failed at compaction (degraded)"),
        }
    }
}

/// Which salvage strategy [`crate::TwppArchive::recover`] ended up using,
/// in decreasing order of trust. Callers branch on this: a resume path
/// can accept [`SalvageStrategy::Footer`] segments as-is but must treat
/// anything else as an interrupted or damaged write.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[non_exhaustive]
pub enum SalvageStrategy {
    /// v3: the commit footer verified and the function table was walked
    /// directly — the archive was fully committed.
    Footer,
    /// v3: no verified commit footer; the data region was scanned for
    /// intact `TWPR` frames (interrupted write).
    FrameScan,
    /// v3: the fixed header itself failed to verify; the whole input was
    /// scanned for frames with no trusted metadata at all.
    HeaderlessScan,
    /// v2: the legacy container has no checksums, so salvage proceeded
    /// by decoding every region and keeping what parsed.
    V2Decode,
}

impl SalvageStrategy {
    /// Stable string form used in `fsck` JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            SalvageStrategy::Footer => "footer",
            SalvageStrategy::FrameScan => "frame-scan",
            SalvageStrategy::HeaderlessScan => "headerless-scan",
            SalvageStrategy::V2Decode => "v2-decode",
        }
    }
}

impl fmt::Display for SalvageStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The verdict for one function region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionVerdict {
    /// The function the region claims to hold.
    pub func: FuncId,
    /// Absolute byte offset of the region within the archive file (the
    /// frame start for v3, the raw region start for v2).
    pub offset: usize,
    /// Payload length in bytes.
    pub byte_len: usize,
    /// What happened to it.
    pub status: RegionStatus,
}

/// The outcome of salvaging an archive: which metadata regions survived,
/// a per-function verdict list, and how many payload bytes made it out.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryReport {
    /// Container version of the damaged input (2 or 3).
    pub version: u32,
    /// Size of the input in bytes.
    pub total_bytes: usize,
    /// Whether the fixed header verified (v3: header CRC; v2: parsed).
    pub header_ok: bool,
    /// Whether the compressed DCG verified and decoded.
    pub dcg_ok: bool,
    /// Whether the function name table verified and decoded.
    pub names_ok: bool,
    /// Whether the commit footer was present and verified (v3 only; a
    /// fully parsed v2 archive counts as committed). An uncommitted
    /// archive was interrupted mid-write and salvage fell back to
    /// scanning for intact frames.
    pub committed: bool,
    /// Total payload bytes recovered (DCG + names + function regions).
    pub salvaged_bytes: usize,
    /// Which salvage strategy ran (typed, so `Compactor::resume` and
    /// `fsck` can branch on it instead of parsing text).
    pub strategy: SalvageStrategy,
    /// Per-function-region verdicts, in the order regions were found.
    pub functions: Vec<FunctionVerdict>,
}

impl RecoveryReport {
    /// Whether every region of the archive verified — i.e. the input was
    /// not actually damaged.
    pub fn is_clean(&self) -> bool {
        self.header_ok
            && self.dcg_ok
            && self.names_ok
            && self.committed
            && self.functions.iter().all(|v| v.status.is_ok())
    }

    /// Number of function regions salvaged.
    pub fn salvaged_functions(&self) -> usize {
        self.functions.iter().filter(|v| v.status.is_ok()).count()
    }

    /// Number of function regions lost.
    pub fn lost_functions(&self) -> usize {
        self.functions.len() - self.salvaged_functions()
    }

    /// Functions the writer recorded as failed during a degraded
    /// compaction run.
    pub fn degraded_functions(&self) -> Vec<FuncId> {
        self.functions
            .iter()
            .filter(|v| matches!(v.status, RegionStatus::FailedAtCompaction))
            .map(|v| v.func)
            .collect()
    }

    /// Rebases this report into the [`RunReport`](crate::obs::RunReport)
    /// fsck section (stable field naming, DESIGN.md §13).
    /// `functions_lost` counts regions lost to *damage* — functions a
    /// degraded run recorded as failed-at-compaction are counted
    /// separately in `functions_degraded`.
    pub fn to_section(&self) -> crate::obs::FsckSection {
        let degraded = self.degraded_functions().len();
        crate::obs::FsckSection {
            version: self.version,
            total_bytes: self.total_bytes as u64,
            header_ok: self.header_ok,
            dcg_ok: self.dcg_ok,
            names_ok: self.names_ok,
            committed: self.committed,
            salvaged_bytes: self.salvaged_bytes as u64,
            salvage_strategy: self.strategy.as_str().to_owned(),
            functions_total: self.functions.len() as u64,
            functions_salvaged: self.salvaged_functions() as u64,
            functions_lost: (self.lost_functions() - degraded) as u64,
            functions_degraded: degraded as u64,
        }
    }

    /// Whether the archive itself is intact and its only blemish is a
    /// non-empty set of functions recorded as failed during compaction.
    /// This is `twpp fsck`'s "degraded" verdict (exit code 3): every
    /// byte that was written verifies, but a degraded run skipped some
    /// functions on purpose.
    pub fn is_degraded_only(&self) -> bool {
        self.header_ok
            && self.dcg_ok
            && self.names_ok
            && self.committed
            && !self.functions.is_empty()
            && self.functions.iter().all(|v| {
                v.status.is_ok() || matches!(v.status, RegionStatus::FailedAtCompaction)
            })
            && self
                .functions
                .iter()
                .any(|v| matches!(v.status, RegionStatus::FailedAtCompaction))
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flag = |ok: bool| if ok { "ok" } else { "LOST" };
        writeln!(
            f,
            "archive: v{}, {} bytes, header {}, dcg {}, names {}, {} (salvage: {})",
            self.version,
            self.total_bytes,
            flag(self.header_ok),
            flag(self.dcg_ok),
            flag(self.names_ok),
            if self.committed {
                "committed"
            } else {
                "NOT COMMITTED"
            },
            self.strategy,
        )?;
        writeln!(
            f,
            "functions: {} salvaged, {} lost, {} bytes recovered",
            self.salvaged_functions(),
            self.lost_functions(),
            self.salvaged_bytes,
        )?;
        for v in &self.functions {
            writeln!(
                f,
                "  {} @+{} ({} bytes): {}",
                v.func, v.offset, v.byte_len, v.status
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn report() -> RecoveryReport {
        RecoveryReport {
            version: 3,
            total_bytes: 1024,
            header_ok: true,
            dcg_ok: true,
            names_ok: true,
            committed: true,
            salvaged_bytes: 900,
            strategy: SalvageStrategy::Footer,
            functions: vec![
                FunctionVerdict {
                    func: FuncId::from_index(0),
                    offset: 0,
                    byte_len: 400,
                    status: RegionStatus::Ok,
                },
                FunctionVerdict {
                    func: FuncId::from_index(1),
                    offset: 428,
                    byte_len: 500,
                    status: RegionStatus::BadChecksum,
                },
            ],
        }
    }

    #[test]
    fn clean_requires_every_region_ok() {
        let mut r = report();
        assert!(!r.is_clean());
        r.functions[1].status = RegionStatus::Ok;
        assert!(r.is_clean());
        r.committed = false;
        assert!(!r.is_clean());
    }

    #[test]
    fn fsck_section_separates_damage_from_degradation() {
        let mut r = report();
        r.functions.push(FunctionVerdict {
            func: FuncId::from_index(2),
            offset: 950,
            byte_len: 0,
            status: RegionStatus::FailedAtCompaction,
        });
        let s = r.to_section();
        assert_eq!(s.functions_total, 3);
        assert_eq!(s.functions_salvaged, 1);
        assert_eq!(s.functions_lost, 1); // the checksum-mismatch region
        assert_eq!(s.functions_degraded, 1);
        assert_eq!(s.version, 3);
        assert!(s.committed);
    }

    #[test]
    fn counts_and_display() {
        let r = report();
        assert_eq!(r.salvaged_functions(), 1);
        assert_eq!(r.lost_functions(), 1);
        let text = r.to_string();
        assert!(text.contains("committed"));
        assert!(text.contains("checksum mismatch"));
        assert!(text.contains("1 salvaged, 1 lost"));
    }
}
