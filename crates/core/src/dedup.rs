//! Redundant path trace elimination — the second transformation of the
//! paper (Figure 2 → Figure 3).
//!
//! Different calls to the same function usually follow one of a small set
//! of paths: in the paper's `gcc` run, `_rtx_equal_p` was called 355,189
//! times but produced only 35 unique path traces. Collapsing duplicates
//! shrank the WPP traces by factors of 5.66–9.5 in the paper's experiments.

use std::collections::{BTreeMap, HashMap};

use twpp_ir::FuncId;

use crate::partition::PartitionedWpp;
use crate::trace::PathTrace;

/// Per-function statistics produced by redundancy elimination; the raw data
/// behind Figure 8 of the paper.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RedundancyStats {
    /// For each function: (number of calls, number of unique path traces).
    pub per_func: BTreeMap<FuncId, (u64, u64)>,
}

impl RedundancyStats {
    /// Total number of calls across all functions.
    pub fn total_calls(&self) -> u64 {
        self.per_func.values().map(|&(calls, _)| calls).sum()
    }

    /// Percentage of all calls attributable to functions with at most
    /// `max_unique` unique path traces — one point of Figure 8's curves.
    pub fn percent_calls_with_at_most(&self, max_unique: u64) -> f64 {
        let total = self.total_calls();
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = self
            .per_func
            .values()
            .filter(|&&(_, unique)| unique <= max_unique)
            .map(|&(calls, _)| calls)
            .sum();
        covered as f64 * 100.0 / total as f64
    }

    /// The full cumulative curve of Figure 8: `(N, % of calls)` points for
    /// `N = 1..=max_n`.
    pub fn redundancy_cdf(&self, max_n: u64) -> Vec<(u64, f64)> {
        (1..=max_n)
            .map(|n| (n, self.percent_calls_with_at_most(n)))
            .collect()
    }
}

/// Eliminates duplicate path traces in place, remapping the DCG's trace
/// indices onto the surviving unique traces (first-seen order is kept).
///
/// Runs the per-function scans on [`crate::par::default_threads`]
/// workers; the result does not depend on the worker count.
///
/// Returns per-function call/unique-trace counts.
pub fn eliminate_redundancy(part: &mut PartitionedWpp) -> RedundancyStats {
    eliminate_redundancy_threads(part, crate::par::default_threads())
}

/// Like [`eliminate_redundancy`] with an explicit worker count.
///
/// Duplicate detection never crosses function boundaries, so each
/// function's scan runs independently on the pool; the sequential epilogue
/// folds results in function order and remaps the DCG, making the output
/// identical for every `threads` value.
pub fn eliminate_redundancy_threads(part: &mut PartitionedWpp, threads: usize) -> RedundancyStats {
    let entries: Vec<(&FuncId, &Vec<PathTrace>)> = part.traces.iter().collect();
    let scanned = crate::par::map_indexed(&entries, threads, |_, &(&func, traces)| {
        let mut seen: HashMap<&PathTrace, u32> = HashMap::new();
        let mut keep: Vec<PathTrace> = Vec::new();
        let mut map = Vec::with_capacity(traces.len());
        for trace in traces {
            let next = u32::try_from(keep.len()).expect("trace count exceeds u32");
            let idx = *seen.entry(trace).or_insert(next);
            if idx == next {
                keep.push(trace.clone());
            }
            map.push(idx);
        }
        (func, traces.len() as u64, keep, map)
    });

    // Unique traces per function, in first-seen order.
    let mut unique: BTreeMap<FuncId, Vec<PathTrace>> = BTreeMap::new();
    // Old trace index -> new trace index, per function.
    let mut remap: HashMap<FuncId, Vec<u32>> = HashMap::new();
    let mut per_func: BTreeMap<FuncId, (u64, u64)> = BTreeMap::new();
    for (func, calls, keep, map) in scanned {
        per_func.insert(func, (calls, keep.len() as u64));
        unique.insert(func, keep);
        remap.insert(func, map);
    }

    for i in 0..part.dcg.node_count() {
        let id = crate::dcg::DcgNodeId::from_index(i);
        let node = part.dcg.node(id);
        let new_idx = remap[&node.func][node.trace_idx as usize];
        part.dcg.node_mut(id).trace_idx = new_idx;
    }
    part.traces = unique;
    RedundancyStats { per_func }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use twpp_ir::BlockId;
    use twpp_tracer::{RawWpp, WppEvent};

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    fn wpp_with_repeated_calls() -> RawWpp {
        // main calls f four times with traces A, B, A, A.
        let a: &[u32] = &[1, 2, 4];
        let b: &[u32] = &[1, 3, 4];
        let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(BlockId::new(1))];
        for t in [a, b, a, a] {
            events.push(WppEvent::Enter(f(1)));
            for &x in t {
                events.push(WppEvent::Block(BlockId::new(x)));
            }
            events.push(WppEvent::Exit);
        }
        events.push(WppEvent::Exit);
        RawWpp::from_events(&events)
    }

    #[test]
    fn duplicates_collapse_and_dcg_remaps() {
        let mut part = partition(&wpp_with_repeated_calls()).unwrap();
        let before = part.trace_bytes();
        let stats = eliminate_redundancy(&mut part);
        assert_eq!(part.traces[&f(1)].len(), 2);
        assert_eq!(stats.per_func[&f(1)], (4, 2));
        assert!(part.trace_bytes() < before);
        // Nodes for calls 1, 3, 4 share trace index 0; call 2 has index 1.
        let root = part.dcg.root();
        let children: Vec<u32> = part
            .dcg
            .node(root)
            .children
            .iter()
            .map(|&c| part.dcg.node(c).trace_idx)
            .collect();
        assert_eq!(children, vec![0, 1, 0, 0]);
    }

    #[test]
    fn reconstruction_still_lossless_after_dedup() {
        let wpp = wpp_with_repeated_calls();
        let mut part = partition(&wpp).unwrap();
        eliminate_redundancy(&mut part);
        assert_eq!(part.reconstruct(), wpp);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_100() {
        let mut part = partition(&wpp_with_repeated_calls()).unwrap();
        let stats = eliminate_redundancy(&mut part);
        let cdf = stats.redundancy_cdf(5);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 100.0).abs() < 1e-9);
        // f(0) has 1 call with 1 unique trace; f(1) has 4 calls, 2 uniques.
        assert!((stats.percent_calls_with_at_most(1) - 20.0).abs() < 1e-9);
        assert!((stats.percent_calls_with_at_most(2) - 100.0).abs() < 1e-9);
    }
}
