//! Deterministic workload generation: random structured programs plus WPP
//! event streams sampled from them.
//!
//! Each function gets a structured CFG (straight chains, diamonds, simple
//! loops) and a pool of *unique* walks through it. The WPP is emitted by
//! replaying walks: `main` loops calling top-level functions sampled with
//! a Zipf-like frequency distribution, each call picks a walk from the
//! callee's pool (again Zipf-distributed, producing the path-trace
//! redundancy of Figure 8), and call-site blocks recurse into deeper
//! functions. Everything is seeded, so workloads are reproducible.

use std::collections::HashMap;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use twpp_ir::{
    BlockId, FuncId, FunctionBuilder, Operand, Program, ProgramBuilder, Rvalue, Stmt, Terminator,
};
use twpp_tracer::{RawWpp, WppEvent};

use crate::spec::WorkloadSpec;

/// A generated workload: the static program and one WPP of it.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Workload name (from the spec).
    pub name: String,
    /// The static program (static flowgraph sizes for Table 6).
    pub program: Program,
    /// The whole program path.
    pub wpp: RawWpp,
}

/// Call-site blocks and their callees within one function.
type CallSites = HashMap<BlockId, FuncId>;
/// Loop headers mapped to their (body entry, exit) blocks.
type LoopInfo = HashMap<BlockId, (BlockId, BlockId)>;

/// Per-function generation artifacts.
struct Shape {
    /// Pool of unique walks (block sequences) through the function.
    pool: Vec<Vec<BlockId>>,
    /// Callee of each call-site block.
    calls: HashMap<BlockId, FuncId>,
}

/// Maximum dynamic call depth during emission.
const MAX_DEPTH: usize = 12;

/// Generates a workload from a spec. Deterministic in the spec (seed
/// included).
pub fn generate(spec: &WorkloadSpec) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let (program, shapes) = build_program(spec, &mut rng);

    // Zipf weights over the callable functions for main's loop.
    let n = spec.n_funcs;
    let func_weights = cumulative_zipf(n, 1.1);
    let mut events: Vec<WppEvent> = Vec::with_capacity(spec.target_events + 1024);
    let hard_cap = spec.target_events + spec.target_events / 4;

    let main_id = program.main();
    events.push(WppEvent::Enter(main_id));
    events.push(WppEvent::Block(BlockId::new(1)));
    while events.len() < spec.target_events {
        // Loop header + body block of main.
        events.push(WppEvent::Block(BlockId::new(2)));
        events.push(WppEvent::Block(BlockId::new(3)));
        let callee = FuncId::from_index(1 + sample_cumulative(&func_weights, &mut rng));
        emit_function(callee, &shapes, spec, 1, hard_cap, &mut events, &mut rng);
    }
    events.push(WppEvent::Block(BlockId::new(2)));
    events.push(WppEvent::Block(BlockId::new(4)));
    events.push(WppEvent::Exit);

    Workload {
        name: spec.name.clone(),
        program,
        wpp: RawWpp::from_events(&events),
    }
}

fn emit_function(
    func: FuncId,
    shapes: &HashMap<FuncId, Shape>,
    spec: &WorkloadSpec,
    depth: usize,
    hard_cap: usize,
    events: &mut Vec<WppEvent>,
    rng: &mut ChaCha8Rng,
) {
    let shape = &shapes[&func];
    events.push(WppEvent::Enter(func));
    let pick = sample_zipf(shape.pool.len(), spec.path_zipf, rng);
    // The pool is never empty: every function has at least one walk.
    let walk = &shape.pool[pick];
    for &b in walk {
        events.push(WppEvent::Block(b));
        if let Some(&callee) = shape.calls.get(&b) {
            if depth < MAX_DEPTH && events.len() < hard_cap {
                emit_function(callee, shapes, spec, depth + 1, hard_cap, events, rng);
            }
        }
    }
    events.push(WppEvent::Exit);
}

// ----- program construction ------------------------------------------

/// One structured segment of a function body.
enum Segment {
    Straight,
    Diamond,
    Loop,
}

fn build_program(spec: &WorkloadSpec, rng: &mut ChaCha8Rng) -> (Program, HashMap<FuncId, Shape>) {
    let mut pb = ProgramBuilder::new();
    let main_id = pb.declare("main", 0, false).expect("fresh name");
    let mut func_ids = Vec::with_capacity(spec.n_funcs);
    for i in 0..spec.n_funcs {
        func_ids.push(
            pb.declare(&format!("f{i:03}"), 0, false)
                .expect("fresh name"),
        );
    }

    // main: b1 entry -> b2 header -> {b3 body -> b2 | b4 exit}.
    let mut mb = FunctionBuilder::new(0);
    let b1 = mb.entry();
    let b2 = mb.new_block();
    let b3 = mb.new_block();
    let b4 = mb.new_block();
    let i = mb.new_var();
    mb.push(b1, Stmt::assign(i, Rvalue::Use(Operand::Const(0))));
    mb.terminate(b1, Terminator::Jump(b2));
    mb.terminate(
        b2,
        Terminator::Branch {
            cond: Operand::Var(i),
            then_dest: b3,
            else_dest: b4,
        },
    );
    // Statically main calls the first function; emission samples callees.
    let static_callee = *func_ids.first().unwrap_or(&main_id);
    mb.push(
        b3,
        Stmt::Call {
            callee: static_callee,
            args: vec![],
        },
    );
    mb.push(
        b3,
        Stmt::assign(
            i,
            Rvalue::Binary(twpp_ir::BinOp::Add, Operand::Var(i), Operand::Const(1)),
        ),
    );
    mb.terminate(b3, Terminator::Jump(b2));
    mb.terminate(b4, Terminator::Return(None));
    pb.define(main_id, mb).expect("single body");

    let mut partial: Vec<(FuncId, CallSites, LoopInfo)> = Vec::new();
    for (idx, &fid) in func_ids.iter().enumerate() {
        // Call sites target *lower*-indexed functions (the call graph is
        // acyclic with utility functions at the bottom). Those same
        // low-index functions are also favoured by main's Zipf sampling
        // and are generated short, while cold high-index functions are
        // long. Real programs show the same anti-correlation, and it is
        // what keeps the paper's redundancy factors moderate: unique-trace
        // *bytes* are dominated by long, rarely-called functions while
        // *calls* concentrate on short hot ones.
        let callees: Vec<FuncId> = func_ids[..idx].to_vec();
        let size_mult = 0.5 + 2.5 * (idx as f64 / spec.n_funcs.max(1) as f64);
        let (fb, calls, loop_info) = build_function(spec, size_mult, &callees, rng);
        pb.define(fid, fb).expect("single body");
        partial.push((fid, calls, loop_info));
    }
    let _ = static_callee;
    let program = pb.finish().expect("generated programs are well-formed");

    // Walk pools are generated against the finished functions.
    let mut shapes = HashMap::new();
    for (fid, calls, loop_info) in partial {
        let func = program.func(fid);
        let pool_target = rng
            .gen_range(spec.unique_paths.0..=spec.unique_paths.1)
            .max(1);
        let mut pool: Vec<Vec<BlockId>> = Vec::new();
        for _ in 0..pool_target * 4 {
            if pool.len() >= pool_target {
                break;
            }
            let walk = random_walk(func, &loop_info, spec, rng);
            if !pool.contains(&walk) {
                pool.push(walk);
            }
        }
        shapes.insert(fid, Shape { pool, calls });
    }
    (program, shapes)
}

/// Builds one function body; returns its call sites and loop structure.
fn build_function(
    spec: &WorkloadSpec,
    size_mult: f64,
    callees: &[FuncId],
    rng: &mut ChaCha8Rng,
) -> (FunctionBuilder, CallSites, LoopInfo) {
    let mut fb = FunctionBuilder::new(0);
    let v = fb.new_var();
    let mut calls: CallSites = HashMap::new();
    let mut current = fb.entry();
    let scaled = |range: (usize, usize), rng: &mut ChaCha8Rng| -> usize {
        let n = rng.gen_range(range.0..=range.1) as f64;
        (n * size_mult).round().max(1.0) as usize
    };
    let n_segments = scaled(spec.segments_per_func, rng);

    // Loop headers and their (body-entry, exit) pairs for walk replay.
    let mut loop_info: HashMap<BlockId, (BlockId, BlockId)> = HashMap::new();

    // `may_call = false` keeps call sites out of loop bodies: a call block
    // inside a loop would fire once per iteration and blow up the call
    // counts far past what real call-frequency distributions look like.
    let fill = |fb: &mut FunctionBuilder,
                    block: BlockId,
                    may_call: bool,
                    calls: &mut HashMap<BlockId, FuncId>,
                    rng: &mut ChaCha8Rng| {
        fb.push(
            block,
            Stmt::assign(
                v,
                Rvalue::Binary(twpp_ir::BinOp::Add, Operand::Var(v), Operand::Const(1)),
            ),
        );
        if may_call && !callees.is_empty() && rng.gen_bool(spec.call_prob) {
            // Prefer the hottest (lowest-index) functions as callees.
            let callee = callees[sample_zipf(callees.len(), 1.1, rng)];
            fb.push(
                block,
                Stmt::Call {
                    callee,
                    args: vec![],
                },
            );
            calls.insert(block, callee);
        }
    };

    for _ in 0..n_segments {
        let kind = if rng.gen_bool(spec.loop_prob) {
            Segment::Loop
        } else if rng.gen_bool(spec.diamond_prob) {
            Segment::Diamond
        } else {
            Segment::Straight
        };
        match kind {
            Segment::Straight => {
                let len = scaled(spec.straight_len, rng);
                for _ in 0..len {
                    fill(&mut fb, current, true, &mut calls, rng);
                    let next = fb.new_block();
                    fb.terminate(current, Terminator::Jump(next));
                    current = next;
                }
            }
            Segment::Diamond => {
                fill(&mut fb, current, true, &mut calls, rng);
                let then_b = fb.new_block();
                let else_b = fb.new_block();
                let join = fb.new_block();
                fb.terminate(
                    current,
                    Terminator::Branch {
                        cond: Operand::Var(v),
                        then_dest: then_b,
                        else_dest: else_b,
                    },
                );
                for arm in [then_b, else_b] {
                    fill(&mut fb, arm, true, &mut calls, rng);
                    fb.terminate(arm, Terminator::Jump(join));
                }
                current = join;
            }
            Segment::Loop => {
                let header = fb.new_block();
                fb.terminate(current, Terminator::Jump(header));
                let body_first = fb.new_block();
                let exit = fb.new_block();
                fb.terminate(
                    header,
                    Terminator::Branch {
                        cond: Operand::Var(v),
                        then_dest: body_first,
                        else_dest: exit,
                    },
                );
                // The body is a straight chain, so the dynamic basic block
                // dictionary collapses it (and the header/body alternation
                // series-compacts in the TWPP).
                let body_len = rng.gen_range(spec.loop_body_len.0..=spec.loop_body_len.1);
                let mut body_cur = body_first;
                for i in 0..body_len {
                    fill(&mut fb, body_cur, false, &mut calls, rng);
                    if i + 1 < body_len {
                        let next = fb.new_block();
                        fb.terminate(body_cur, Terminator::Jump(next));
                        body_cur = next;
                    }
                }
                fb.terminate(body_cur, Terminator::Jump(header));
                loop_info.insert(header, (body_first, exit));
                current = exit;
            }
        }
    }
    fill(&mut fb, current, true, &mut calls, rng);
    fb.terminate(current, Terminator::Return(None));
    (fb, calls, loop_info)
}

/// Replays the CFG from the entry with random branch choices and loop
/// iteration counts, producing one concrete walk.
fn random_walk(
    func: &twpp_ir::Function,
    loop_info: &LoopInfo,
    spec: &WorkloadSpec,
    rng: &mut ChaCha8Rng,
) -> Vec<BlockId> {
    let mut walk = Vec::new();
    let mut cur = BlockId::ENTRY;
    let mut remaining: HashMap<BlockId, u32> = HashMap::new();
    loop {
        walk.push(cur);
        match func.block(cur).terminator() {
            Terminator::Return(_) => break,
            Terminator::Jump(d) => cur = *d,
            Terminator::Branch {
                then_dest,
                else_dest,
                ..
            } => {
                if let Some(&(body, exit)) = loop_info.get(&cur) {
                    let left = remaining
                        .entry(cur)
                        .or_insert_with(|| rng.gen_range(spec.loop_iters.0..=spec.loop_iters.1));
                    if *left > 0 {
                        *left -= 1;
                        cur = body;
                    } else {
                        remaining.remove(&cur);
                        cur = exit;
                    }
                } else {
                    cur = if rng.gen_bool(0.5) {
                        *then_dest
                    } else {
                        *else_dest
                    };
                }
            }
        }
    }
    walk
}

// ----- sampling helpers ------------------------------------------------

/// Cumulative Zipf weights `1/(i+1)^s` for `n` items.
fn cumulative_zipf(n: usize, s: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(s);
        cum.push(total);
    }
    cum
}

fn sample_cumulative(cum: &[f64], rng: &mut ChaCha8Rng) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let x = rng.gen_range(0.0..total);
    cum.partition_point(|&c| c <= x).min(cum.len() - 1)
}

fn sample_zipf(n: usize, s: f64, rng: &mut ChaCha8Rng) -> usize {
    if n <= 1 {
        return 0;
    }
    let cum = cumulative_zipf(n, s);
    sample_cumulative(&cum, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Profile;

    #[test]
    fn generation_is_deterministic() {
        let spec = Profile::Perl.spec().scaled(0.02);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.wpp, b.wpp);
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn wpp_is_well_formed_and_near_target_size() {
        for profile in Profile::all() {
            let spec = profile.spec().scaled(0.01);
            let w = generate(&spec);
            assert!(
                w.wpp.event_count() >= spec.target_events,
                "{}: {} < {}",
                w.name,
                w.wpp.event_count(),
                spec.target_events
            );
            // The emitter only checks the budget between top-level calls,
            // so the stream can overshoot by at most one activation tree
            // (noticeable only at tiny scales).
            assert!(w.wpp.event_count() < spec.target_events * 2 + 100_000);
            // Balanced enter/exit structure: partition succeeds.
            let part = twpp::partition(&w.wpp).expect("valid stream");
            assert!(part.dcg.node_count() > 1);
            // Lossless round trip through partitioning.
            assert_eq!(part.reconstruct(), w.wpp);
        }
    }

    #[test]
    fn walks_respect_the_static_cfg() {
        let spec = Profile::Li.spec().scaled(0.01);
        let w = generate(&spec);
        // Every consecutive block pair inside one activation must be a
        // static CFG edge.
        let part = twpp::partition(&w.wpp).unwrap();
        for (_, node) in part.dcg.iter() {
            let func = w.program.func(node.func);
            let trace = &part.traces[&node.func][node.trace_idx as usize];
            for pair in trace.blocks().windows(2) {
                let succs = func.block(pair[0]).successors();
                assert!(
                    succs.contains(&pair[1]),
                    "{} -> {} is not a static edge of {}",
                    pair[0],
                    pair[1],
                    func.name()
                );
            }
        }
    }

    #[test]
    fn profiles_differ_in_redundancy() {
        let perl = generate(&Profile::Perl.spec().scaled(0.02));
        let go = generate(&Profile::Go.spec().scaled(0.02));
        let stats = |w: &Workload| {
            let mut part = twpp::partition(&w.wpp).unwrap();
            let s = twpp::eliminate_redundancy(&mut part);
            // Average unique traces per function, weighted by calls.
            let total_calls: u64 = s.per_func.values().map(|&(c, _)| c).sum();
            let covered = s.percent_calls_with_at_most(5);
            (total_calls, covered)
        };
        let (_, perl_cov) = stats(&perl);
        let (_, go_cov) = stats(&go);
        // perl: nearly all calls hit functions with <=5 unique traces;
        // go: far fewer.
        assert!(perl_cov > 90.0, "perl coverage {perl_cov}");
        assert!(go_cov < perl_cov, "go {go_cov} vs perl {perl_cov}");
    }
}
