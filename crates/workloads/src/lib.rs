//! **twpp-workloads** — synthetic SPECint95-like workloads for the TWPP
//! reproduction experiments.
//!
//! The paper's evaluation traces came from Trimaran-instrumented SPECint95
//! binaries. This crate substitutes seeded generators whose per-benchmark
//! [`Profile`]s reproduce the distributional properties the paper's results
//! depend on — call-count skew, unique-path-trace counts per function
//! (Figure 8), loop regularity and trace length — at laptop scale.
//!
//! # Example
//!
//! ```
//! use twpp_workloads::{generate, Profile};
//!
//! let spec = Profile::Perl.spec().scaled(0.01);
//! let workload = generate(&spec);
//! assert!(workload.wpp.event_count() >= 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
pub mod spec;

pub use gen::{generate, Workload};
pub use spec::{Profile, WorkloadSpec};
