//! Workload specifications: the tunable statistics that drive generation,
//! with one profile per SPECint95 benchmark used in the paper.
//!
//! The paper's compaction results are driven by a handful of distributional
//! properties of each benchmark's WPP: how many functions execute, how
//! many *unique* path traces each contributes (Figure 8), how regular the
//! loops are (DBB and timestamp-series compaction), and how long traces
//! run. The profiles below set those knobs per benchmark so the *shape* of
//! Tables 1–6 reproduces at laptop scale; absolute megabytes do not (and
//! need not) match.

/// Tunable statistics for one synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Workload name (the benchmark it models).
    pub name: String,
    /// RNG seed; generation is fully deterministic given the spec.
    pub seed: u64,
    /// Number of functions (excluding `main`).
    pub n_funcs: usize,
    /// Number of structured segments per function body.
    pub segments_per_func: (usize, usize),
    /// Length of straight-line chains (drives DBB dictionary wins).
    pub straight_len: (usize, usize),
    /// Probability that a segment is a loop (vs. straight or diamond).
    pub loop_prob: f64,
    /// Probability that a segment is a diamond, given it is not a loop.
    pub diamond_prob: f64,
    /// Loop iteration counts drawn per unique path (regular loops dedup
    /// and series-compact well; wide ranges create unique traces).
    pub loop_iters: (u32, u32),
    /// Length of the straight chain forming each loop body.
    pub loop_body_len: (usize, usize),
    /// Size of each function's unique-path pool (Figure 8's X axis).
    pub unique_paths: (usize, usize),
    /// Zipf-ish exponent for sampling paths from the pool: higher values
    /// concentrate calls on few paths (more redundancy).
    pub path_zipf: f64,
    /// Probability that a straight-line block calls a deeper function.
    pub call_prob: f64,
    /// Approximate number of WPP events to emit.
    pub target_events: usize,
}

impl WorkloadSpec {
    /// Scales the workload size (number of emitted events) by `factor`.
    pub fn scaled(mut self, factor: f64) -> WorkloadSpec {
        self.target_events = ((self.target_events as f64) * factor).max(1_000.0) as usize;
        self
    }
}

/// The five SPECint95 benchmarks of the paper's evaluation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Profile {
    /// `099.go` — few very hot functions with *many* unique paths each
    /// (the paper: >50 unique traces cover only half the calls); irregular
    /// loops, so TWPP gains little over the compacted WPP (x0.97).
    Go,
    /// `126.gcc` — many functions, moderate path diversity (~25 unique
    /// traces at the 50% mark), mixed regularity.
    Gcc,
    /// `130.li` — small interpreter: few unique paths, very regular
    /// recursion/loops; strong TWPP win (x4.81).
    Li,
    /// `132.ijpeg` — loop-dominated kernels: long regular inner loops,
    /// strong dictionary + series compaction (x3.65 TWPP).
    Ijpeg,
    /// `134.perl` — extremely redundant: most functions follow 1–3 paths;
    /// the TWPP collapses (x85 in the paper).
    Perl,
}

impl Profile {
    /// All profiles in the paper's table order.
    pub fn all() -> [Profile; 5] {
        [
            Profile::Go,
            Profile::Gcc,
            Profile::Li,
            Profile::Ijpeg,
            Profile::Perl,
        ]
    }

    /// The benchmark name as it appears in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            Profile::Go => "099.go",
            Profile::Gcc => "126.gcc",
            Profile::Li => "130.li",
            Profile::Ijpeg => "132.ijpeg",
            Profile::Perl => "134.perl",
        }
    }

    /// The default workload spec modeling this benchmark.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            Profile::Go => WorkloadSpec {
                name: "099.go".into(),
                seed: 0x90_90_90,
                n_funcs: 64,
                segments_per_func: (3, 6),
                straight_len: (2, 3),
                loop_prob: 0.25,
                diamond_prob: 0.75,
                loop_iters: (1, 10),
                loop_body_len: (1, 2),
                unique_paths: (25, 80),
                path_zipf: 0.7,
                call_prob: 0.08,
                target_events: 900_000,
            },
            Profile::Gcc => WorkloadSpec {
                name: "126.gcc".into(),
                seed: 0x6cc_6cc,
                n_funcs: 96,
                segments_per_func: (3, 6),
                straight_len: (2, 3),
                loop_prob: 0.3,
                diamond_prob: 0.6,
                loop_iters: (8, 24),
                loop_body_len: (1, 3),
                unique_paths: (45, 330),
                path_zipf: 1.1,
                call_prob: 0.1,
                target_events: 1_600_000,
            },
            Profile::Li => WorkloadSpec {
                name: "130.li".into(),
                seed: 0x11_11,
                n_funcs: 160,
                segments_per_func: (2, 4),
                straight_len: (2, 3),
                loop_prob: 0.5,
                diamond_prob: 0.5,
                loop_iters: (30, 30),
                loop_body_len: (2, 3),
                unique_paths: (2, 10),
                path_zipf: 1.4,
                call_prob: 0.12,
                target_events: 280_000,
            },
            Profile::Ijpeg => WorkloadSpec {
                name: "132.ijpeg".into(),
                seed: 0x1_3e6,
                n_funcs: 96,
                segments_per_func: (2, 4),
                straight_len: (1, 3),
                loop_prob: 0.55,
                diamond_prob: 0.4,
                loop_iters: (32, 32),
                loop_body_len: (2, 2),
                unique_paths: (6, 24),
                path_zipf: 1.2,
                call_prob: 0.06,
                target_events: 900_000,
            },
            Profile::Perl => WorkloadSpec {
                name: "134.perl".into(),
                seed: 0xbe_71,
                n_funcs: 32,
                segments_per_func: (2, 4),
                straight_len: (6, 10),
                loop_prob: 0.5,
                diamond_prob: 0.4,
                loop_iters: (400, 400),
                loop_body_len: (5, 8),
                unique_paths: (1, 2),
                path_zipf: 1.6,
                call_prob: 0.05,
                target_events: 1_000_000,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_the_paper_benchmarks() {
        let names: Vec<&str> = Profile::all().iter().map(|p| p.paper_name()).collect();
        assert_eq!(
            names,
            vec!["099.go", "126.gcc", "130.li", "132.ijpeg", "134.perl"]
        );
    }

    #[test]
    fn scaling_changes_target_events_only() {
        let spec = Profile::Perl.spec();
        let scaled = spec.clone().scaled(0.1);
        assert_eq!(scaled.n_funcs, spec.n_funcs);
        assert!(scaled.target_events < spec.target_events);
        // Never scales to zero.
        let tiny = spec.scaled(0.0);
        assert!(tiny.target_events >= 1_000);
    }
}
