//! Per-function trace extraction: the Table 4 comparison (uncompacted scan
//! vs compacted archive access) plus a hot-vs-cold layout ablation (the
//! archive stores most-frequently-called functions first).

use criterion::{criterion_group, criterion_main, Criterion};
use twpp::{compact, TwppArchive};
use twpp_workloads::{generate, Profile};

fn bench(c: &mut Criterion) {
    let workload = generate(&Profile::Gcc.spec().scaled(0.05));
    let wpp = &workload.wpp;
    let compacted = compact(wpp).unwrap();
    let archive = TwppArchive::from_compacted(&compacted);
    let hot = compacted.functions.first().expect("non-empty").func;
    let cold = compacted.functions.last().expect("non-empty").func;

    let mut group = c.benchmark_group("extraction");
    group.sample_size(30);

    group.bench_function("uncompacted_scan_hot", |b| {
        b.iter(|| std::hint::black_box(wpp).scan_function(hot).len())
    });
    group.bench_function("archive_read_hot", |b| {
        b.iter(|| {
            std::hint::black_box(&archive)
                .read_function(hot)
                .unwrap()
                .traces
                .len()
        })
    });
    group.bench_function("archive_read_cold", |b| {
        b.iter(|| {
            std::hint::black_box(&archive)
                .read_function(cold)
                .unwrap()
                .traces
                .len()
        })
    });

    // File-backed variant: the exact Table 4 experiment.
    let dir = std::env::temp_dir().join(format!("twpp-bench-extraction-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let raw_path = dir.join("bench.wpp");
    let arc_path = dir.join("bench.twpa");
    {
        let f = std::fs::File::create(&raw_path).unwrap();
        let mut w = std::io::BufWriter::new(f);
        wpp.write_to(&mut w).unwrap();
    }
    archive.save(&arc_path).unwrap();

    group.bench_function("file_uncompacted_scan", |b| {
        b.iter(|| {
            let f = std::fs::File::open(&raw_path).unwrap();
            let wpp = twpp_tracer::RawWpp::read_from(std::io::BufReader::new(f)).unwrap();
            wpp.scan_function(hot).len()
        })
    });
    group.bench_function("file_archive_seek_read", |b| {
        b.iter(|| {
            TwppArchive::read_function_from_file(&arc_path, hot)
                .unwrap()
                .traces
                .len()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
