//! Profile-limited data flow query costs: the demand-driven propagation
//! with compacted timestamp vectors vs a naive full-trace replay.

use criterion::{criterion_group, criterion_main, Criterion};
use twpp_dataflow::dyncfg::DynCfg;
use twpp_dataflow::redundancy::{load_redundancy, loads_in};
use twpp_dataflow::{solve_backward, solve_by_replay, AvailableLoad};
use twpp_ir::Operand;
use twpp_lang::{compile_with_options, LowerOptions};
use twpp_tracer::{run_traced, ExecLimits};

/// The Figure 9 scenario scaled to many iterations.
fn figure9_scaled(iters: u32) -> String {
    format!(
        "fn main() {{
             let i = 0;
             while (i < {iters}) {{
                 let t = load(100);
                 if (i % 5 < 3) {{
                     let u = load(100);
                     print(u);
                 }} else {{
                     store(100, i);
                 }}
                 i = i + 1;
             }}
         }}"
    )
}

fn bench(c: &mut Criterion) {
    let src = figure9_scaled(20_000);
    let program = compile_with_options(
        &src,
        LowerOptions {
            stmt_per_block: true,
        },
    )
    .expect("program compiles");
    let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).expect("program runs");
    let main_id = program.main();
    let func = program.func(main_id);
    let trace = wpp.scan_function(main_id).remove(0);
    let dcfg = DynCfg::from_block_sequence(&trace);
    let loads = loads_in(&dcfg, func);
    let (hot, _) = loads
        .iter()
        .copied()
        .max_by_key(|(n, _)| dcfg.node(*n).ts.len())
        .expect("program has loads");
    let fact = AvailableLoad {
        addr: Operand::Const(100),
    };
    let ts = dcfg.node(hot).ts.clone();

    let mut group = c.benchmark_group("dataflow");
    group.sample_size(20);

    group.bench_function("demand_driven_query", |b| {
        b.iter(|| {
            solve_backward(
                std::hint::black_box(&dcfg),
                func,
                &fact,
                hot,
                std::hint::black_box(&ts),
            )
            .frequency()
        })
    });
    group.bench_function("naive_replay_oracle", |b| {
        b.iter(|| {
            solve_by_replay(
                std::hint::black_box(&dcfg),
                func,
                &fact,
                hot,
                std::hint::black_box(&ts),
            )
            .frequency()
        })
    });
    group.bench_function("load_redundancy_end_to_end", |b| {
        b.iter(|| {
            load_redundancy(std::hint::black_box(&dcfg), func, hot)
                .unwrap()
                .degree_percent()
        })
    });
    group.bench_function("build_dyncfg", |b| {
        b.iter(|| DynCfg::from_block_sequence(std::hint::black_box(&trace)).node_count())
    });

    // Interprocedural slicing over a call-heavy program.
    let inter_src = "
        fn leaf(x) { return x * 2; }
        fn mid(x) { return leaf(x) + 1; }
        fn main() {
            let acc = 0;
            let i = 0;
            while (i < 200) {
                acc = acc + mid(i);
                i = i + 1;
            }
            print(acc);
        }";
    let inter_program = compile_with_options(
        inter_src,
        LowerOptions {
            stmt_per_block: true,
        },
    )
    .expect("program compiles");
    let (_, inter_wpp) =
        run_traced(&inter_program, &[], ExecLimits::default()).expect("program runs");
    let compacted = twpp::compact(&inter_wpp).expect("compacts");
    group.bench_function("interprocedural_slice", |b| {
        use twpp_dataflow::interslice::{InterCriterion, InterSlicer};
        use twpp_ir::Var;
        let root = compacted.dcg.root();
        let main_fb = compacted.function(inter_program.main()).expect("main ran");
        let len = main_fb.expanded_traces()[0].len() as u32;
        b.iter(|| {
            let mut slicer = InterSlicer::new(&inter_program, &compacted);
            slicer
                .slice(InterCriterion {
                    activation: root,
                    timestamp: len,
                    var: Var::from_index(0),
                })
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
