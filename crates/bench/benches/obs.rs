//! Instrumented-vs-noop overhead of the `twpp::obs` layer.
//!
//! The observability contract is "near-zero cost when disabled": a noop
//! `Obs` must not slow the pipeline measurably, and even a collecting
//! one should cost only the span/metric bookkeeping. These benches put
//! numbers on both claims — the full compaction pipeline under each
//! observer, plus microbenches of the raw counter handles.

use criterion::{criterion_group, criterion_main, Criterion};
use twpp::obs::Obs;
use twpp::GovOptions;
use twpp_workloads::{generate, Profile};

fn bench(c: &mut Criterion) {
    let workload = generate(&Profile::Gcc.spec().scaled(0.02));
    let wpp = &workload.wpp;

    let mut group = c.benchmark_group("obs");
    group.sample_size(10);

    group.bench_function("compact_noop", |b| {
        b.iter(|| {
            let options = GovOptions {
                threads: Some(1),
                obs: Obs::noop(),
                ..GovOptions::default()
            };
            twpp::compact_governed(std::hint::black_box(wpp), &options)
                .unwrap()
                .0
                .functions
                .len()
        })
    });

    group.bench_function("compact_collecting", |b| {
        b.iter(|| {
            let options = GovOptions {
                threads: Some(1),
                obs: Obs::collecting(),
                ..GovOptions::default()
            };
            twpp::compact_governed(std::hint::black_box(wpp), &options)
                .unwrap()
                .0
                .functions
                .len()
        })
    });

    // The raw handle cost: a noop counter is one branch on None; a live
    // one is a relaxed atomic add.
    group.bench_function("counter_inc_noop_x1000", |b| {
        let counter = Obs::noop().counter("twpp_bench_noop_total", "noop handle");
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
            counter.get()
        })
    });
    group.bench_function("counter_inc_live_x1000", |b| {
        let obs = Obs::collecting();
        let counter = obs.counter("twpp_bench_live_total", "live handle");
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
            counter.get()
        })
    });

    // Export cost for a realistically sized collection.
    group.bench_function("export_trace_and_prometheus", |b| {
        let obs = Obs::collecting();
        let options = GovOptions {
            threads: Some(2),
            obs: obs.clone(),
            ..GovOptions::default()
        };
        let _ = twpp::compact_governed(wpp, &options).unwrap();
        b.iter(|| {
            obs.chrome_trace_json().len() + obs.prometheus_text().len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
