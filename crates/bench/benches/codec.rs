//! Legacy vs adaptive timestamp-set codec: encode and decode throughput.
//!
//! The adaptive codec (DESIGN.md §16) picks raw, `l:h:s`, or
//! delta-of-delta per series, smallest wins. Its contract is "never
//! larger than legacy, round-trips exactly"; these benches put numbers
//! on what the selection costs at encode time and saves at decode time,
//! plus a lazy-open comparison showing the O(footer) open path.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use twpp::obs::Obs;
use twpp::{Codec, TwppArchive};
use twpp_workloads::{generate, Profile};

fn bench(c: &mut Criterion) {
    let workload = generate(&Profile::Gcc.spec().scaled(0.02));
    let (compacted, _) =
        twpp::pipeline::compact_with_stats(&workload.wpp).expect("generated WPPs are well-formed");
    let names = HashMap::new();
    let noop = Obs::noop();

    let mut group = c.benchmark_group("codec");
    group.sample_size(10);

    for codec in [Codec::Legacy, Codec::Adaptive] {
        group.bench_function(format!("encode_{}", codec.as_str()).as_str(), |b| {
            b.iter(|| {
                TwppArchive::from_compacted_codec(
                    std::hint::black_box(&compacted),
                    &names,
                    1,
                    &[],
                    &noop,
                    codec,
                )
                .byte_len()
            })
        });

        let archive = TwppArchive::from_compacted_codec(&compacted, &names, 1, &[], &noop, codec);
        group.bench_function(format!("decode_{}", codec.as_str()).as_str(), |b| {
            b.iter(|| {
                TwppArchive::from_bytes(std::hint::black_box(archive.as_bytes()).to_vec())
                    .expect("fresh archive parses")
                    .to_compacted()
                    .expect("fresh archive decodes")
                    .functions
                    .len()
            })
        });
    }

    // Open cost: eager decode-everything parse versus the lazy O(footer)
    // open that defers frame decoding to first access.
    let archive = TwppArchive::from_compacted_codec(&compacted, &names, 1, &[], &noop, Codec::Adaptive);
    let dir = std::env::temp_dir().join(format!("twpp-bench-codec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("bench.twpa");
    std::fs::write(&path, archive.as_bytes()).expect("write bench archive");

    group.bench_function("open_eager", |b| {
        b.iter(|| {
            TwppArchive::from_bytes(std::fs::read(&path).expect("read archive"))
                .expect("archive parses")
                .function_ids()
                .len()
        })
    });
    group.bench_function("open_lazy", |b| {
        b.iter(|| {
            TwppArchive::open_lazy(std::hint::black_box(&path))
                .expect("archive opens")
                .function_count()
        })
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
