//! Thread-count scaling of the parallel compaction pipeline and the
//! archive encode / recovery paths.
//!
//! The parallel layer guarantees byte-identical output at every thread
//! count, so the only observable difference is wall time — these benches
//! measure that across 1, 2, 4, and all-hardware threads on a
//! multi-function gcc-shaped workload.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use twpp::{
    compact_with_stats_threads, default_threads, CompactOptions, TwppArchive,
};
use twpp_workloads::{generate, Profile};

fn thread_counts() -> Vec<usize> {
    let hw = default_threads();
    let mut counts = vec![1usize, 2, 4];
    if hw > 4 {
        counts.push(hw);
    }
    counts.dedup();
    counts
}

fn bench(c: &mut Criterion) {
    let workload = generate(&Profile::Gcc.spec().scaled(0.05));
    let wpp = &workload.wpp;
    let (compacted, _) =
        compact_with_stats_threads(wpp, CompactOptions::with_threads(1)).unwrap();
    let names = HashMap::new();
    let committed = TwppArchive::from_compacted_named_with_threads(&compacted, &names, 1);
    // A torn write forces fsck onto the frame-scan path.
    let torn = &committed.as_bytes()[..committed.byte_len() - 64];

    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);

    for threads in thread_counts() {
        group.bench_function(&format!("compact_t{threads}"), |b| {
            let options = CompactOptions::with_threads(threads);
            b.iter(|| {
                compact_with_stats_threads(std::hint::black_box(wpp), options)
                    .unwrap()
                    .0
                    .functions
                    .len()
            })
        });
        group.bench_function(&format!("archive_encode_t{threads}"), |b| {
            b.iter(|| {
                TwppArchive::from_compacted_named_with_threads(
                    std::hint::black_box(&compacted),
                    &names,
                    threads,
                )
                .byte_len()
            })
        });
        group.bench_function(&format!("recover_clean_t{threads}"), |b| {
            b.iter(|| {
                TwppArchive::recover_with_threads(
                    std::hint::black_box(committed.as_bytes()),
                    threads,
                )
                .unwrap()
                .1
                .salvaged_functions()
            })
        });
        group.bench_function(&format!("recover_torn_t{threads}"), |b| {
            b.iter(|| {
                TwppArchive::recover_with_threads(std::hint::black_box(torn), threads)
                    .unwrap()
                    .1
                    .salvaged_functions()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
