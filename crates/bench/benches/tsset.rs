//! Ablation: arithmetic-series timestamp sets vs naive timestamp vectors.
//!
//! The paper's efficiency argument for compacted timestamps is that one
//! entry operation covers a whole series (e.g. shifting `(2:20:2)` to
//! `(1:19:2)` traverses 10 subpaths at once). These benchmarks quantify
//! that against plain `Vec<u32>` processing.

use criterion::{criterion_group, criterion_main, Criterion};
use twpp::TsSet;

fn bench(c: &mut Criterion) {
    // A loop-like series: 50k timestamps in one entry.
    let series: Vec<u32> = (1..=50_000u32).map(|k| 2 * k).collect();
    let set = TsSet::from_sorted(&series);
    // A fragmented set: every third timestamp removed.
    let ragged: Vec<u32> = series
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, t)| t)
        .collect();
    let ragged_set = TsSet::from_sorted(&ragged);

    let mut group = c.benchmark_group("tsset");

    group.bench_function("shift_series", |b| {
        b.iter(|| std::hint::black_box(&set).shift(-1).len())
    });
    group.bench_function("shift_naive_vec", |b| {
        b.iter(|| {
            std::hint::black_box(&series)
                .iter()
                .filter_map(|&t| t.checked_sub(1).filter(|&v| v >= 1))
                .count()
        })
    });

    group.bench_function("intersect_series", |b| {
        b.iter(|| std::hint::black_box(&set).intersect(&ragged_set).len())
    });
    group.bench_function("intersect_naive_vec", |b| {
        b.iter(|| {
            let mut count = 0usize;
            let (mut i, mut j) = (0usize, 0usize);
            while i < series.len() && j < ragged.len() {
                match series[i].cmp(&ragged[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            count
        })
    });

    group.bench_function("membership_series", |b| {
        b.iter(|| {
            (1..1000u32)
                .filter(|&t| std::hint::black_box(&set).contains(t * 97))
                .count()
        })
    });
    group.bench_function("max_lt_series", |b| {
        b.iter(|| std::hint::black_box(&set).max_lt(77_777))
    });

    group.bench_function("encode_wire", |b| {
        b.iter(|| std::hint::black_box(&ragged_set).to_wire().unwrap().len())
    });
    let wire = ragged_set.to_wire().unwrap();
    group.bench_function("decode_wire", |b| {
        b.iter(|| TsSet::from_wire(std::hint::black_box(&wire)).unwrap().len())
    });

    group.bench_function("from_sorted_greedy_runs", |b| {
        b.iter(|| TsSet::from_sorted(std::hint::black_box(&ragged)).entry_count())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
