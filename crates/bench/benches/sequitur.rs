//! Sequitur baseline costs: compression, and the Table 5 access-time
//! asymmetry (whole-grammar processing vs archive seek-and-decode).

use criterion::{criterion_group, criterion_main, Criterion};
use twpp::{compact, TwppArchive};
use twpp_sequitur::{compress_wpp, decode, encode, extract_function};
use twpp_workloads::{generate, Profile};

fn bench(c: &mut Criterion) {
    let workload = generate(&Profile::Perl.spec().scaled(0.05));
    let wpp = &workload.wpp;
    let mut group = c.benchmark_group("sequitur");
    group.sample_size(10);

    group.bench_function("grammar_build", |b| {
        b.iter(|| compress_wpp(std::hint::black_box(wpp)).symbol_count())
    });

    let grammar = compress_wpp(wpp);
    let rules = grammar.to_rules();
    let bytes = encode(&rules);
    group.bench_function("grammar_decode", |b| {
        b.iter(|| decode(std::hint::black_box(&bytes)).unwrap().len())
    });

    let compacted = compact(wpp).unwrap();
    let archive = TwppArchive::from_compacted(&compacted);
    let hot = compacted.functions.first().expect("non-empty").func;

    group.bench_function("extract_function_from_grammar", |b| {
        b.iter(|| extract_function(std::hint::black_box(&rules), hot).len())
    });
    group.bench_function("extract_function_from_archive", |b| {
        b.iter(|| {
            std::hint::black_box(&archive)
                .read_function(hot)
                .unwrap()
                .traces
                .len()
        })
    });

    group.bench_function("grammar_expand", |b| {
        b.iter(|| std::hint::black_box(&grammar).expand_input().len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
