//! Per-stage costs of the compaction pipeline (the transformations of
//! Tables 2 and 3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use twpp::{
    compact, compact_trace, eliminate_redundancy, lzw, partition, TimestampedTrace, TwppArchive,
};
use twpp_workloads::{generate, Profile};

fn bench(c: &mut Criterion) {
    let workload = generate(&Profile::Li.spec().scaled(0.05));
    let wpp = &workload.wpp;
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    group.bench_function("partition", |b| {
        b.iter(|| partition(std::hint::black_box(wpp)).unwrap())
    });

    let part = partition(wpp).unwrap();
    group.bench_function("eliminate_redundancy", |b| {
        b.iter_batched(
            || part.clone(),
            |mut p| eliminate_redundancy(&mut p),
            BatchSize::SmallInput,
        )
    });

    let mut deduped = part.clone();
    eliminate_redundancy(&mut deduped);
    let traces: Vec<_> = deduped.traces.values().flatten().cloned().collect();
    group.bench_function("dbb_dictionaries", |b| {
        b.iter(|| {
            traces
                .iter()
                .map(|t| compact_trace(std::hint::black_box(t)).trace.len())
                .sum::<usize>()
        })
    });

    let compacted_traces: Vec<_> = traces.iter().map(|t| compact_trace(t).trace).collect();
    group.bench_function("twpp_transform", |b| {
        b.iter(|| {
            compacted_traces
                .iter()
                .map(|t| TimestampedTrace::from_path_trace(std::hint::black_box(t)).byte_size())
                .sum::<usize>()
        })
    });

    group.bench_function("full_compact", |b| {
        b.iter(|| compact(std::hint::black_box(wpp)).unwrap())
    });

    let compacted = compact(wpp).unwrap();
    group.bench_function("archive_encode", |b| {
        b.iter(|| TwppArchive::from_compacted(std::hint::black_box(&compacted)).byte_len())
    });

    group.bench_function("reconstruct_wpp", |b| {
        b.iter(|| std::hint::black_box(&compacted).reconstruct().event_count())
    });

    // The DCG compression stage in isolation.
    let dcg_bytes: Vec<u8> = compacted
        .dcg
        .to_words()
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect();
    group.bench_function("lzw_compress_dcg", |b| {
        b.iter(|| lzw::compress(std::hint::black_box(&dcg_bytes)).len())
    });
    let dcg_comp = lzw::compress(&dcg_bytes);
    group.bench_function("lzw_decompress_dcg", |b| {
        b.iter(|| lzw::decompress(std::hint::black_box(&dcg_comp)).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
