//! **twpp-bench** — the experiment harness regenerating every table and
//! figure of the paper's evaluation.
//!
//! The `tables` binary prints measured values side by side with the
//! paper's published numbers; the Criterion benches under `benches/`
//! measure the same operations with statistical rigor. See EXPERIMENTS.md
//! at the repository root for the recorded results.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod fmt;

pub use experiments::{
    append_bench_datapoint, obs_overhead, parallel_scaling, BenchCase, ObsOverhead, Suite,
};
