//! Small text-table formatter for the `tables` binary.

/// A simple left-padded text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a byte count as fractional mebibytes (the paper reports MB).
pub fn mb(bytes: usize) -> String {
    format!("{:.3}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a factor like the paper's `(x6.30)` annotations.
pub fn factor(f: f64) -> String {
    format!("x{f:.2}")
}

/// Formats a duration in fractional milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(mb(1024 * 1024), "1.000");
        assert_eq!(factor(6.304), "x6.30");
    }
}
