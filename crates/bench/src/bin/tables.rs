//! Regenerates the paper's tables and figures.
//!
//! ```text
//! tables [--scale <f>] [table1|table2|table3|table4|table5|table6|
//!         figure8|figure9|figure10|figure12|scaling|obs|codec|serve|all]
//! ```
//!
//! `--scale` multiplies the workload sizes (default 1.0; use 0.1 for a
//! quick run). Figures 9/10/12 run the paper's example programs and take
//! no scale.

use twpp_bench::experiments::{
    append_bench_datapoint, codec_compare, figure10, figure12, figure9, obs_overhead,
    parallel_scaling, serve_bench, Suite,
};

fn main() {
    let mut scale = 1.0f64;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
                scale = v;
            }
            "--help" | "-h" => usage(""),
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_owned());
    }
    let all = targets.iter().any(|t| t == "all");

    let wants = |name: &str| all || targets.iter().any(|t| t == name);
    let needs_suite = ["table1", "table2", "table3", "table4", "table5", "table6", "figure8"]
        .iter()
        .any(|t| wants(t));

    let suite = if needs_suite {
        eprintln!("generating workloads at scale {scale}...");
        Some(Suite::build(scale))
    } else {
        None
    };
    if let Some(suite) = &suite {
        if wants("table1") {
            println!("{}", suite.table1());
        }
        if wants("table2") {
            println!("{}", suite.table2());
        }
        if wants("table3") {
            println!("{}", suite.table3());
        }
        if wants("table4") {
            println!("{}", suite.table4());
        }
        if wants("table5") {
            println!("{}", suite.table5());
        }
        if wants("table6") {
            println!("{}", suite.table6());
        }
        if wants("figure8") {
            println!("{}", suite.figure8());
        }
    }
    if wants("figure9") {
        println!("{}", figure9());
    }
    if wants("figure10") {
        println!("{}", figure10());
    }
    if wants("figure12") {
        println!("{}", figure12());
    }
    if wants("scaling") {
        println!("{}", parallel_scaling(scale));
    }
    if wants("obs") {
        let o = obs_overhead(scale);
        println!("{}", o.table);
        let path = std::path::Path::new("BENCH_obs.json");
        match append_bench_datapoint(path, &o.datapoint_json) {
            Ok(()) => eprintln!("appended obs datapoint to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    if wants("codec") {
        let o = codec_compare(scale);
        println!("{}", o.table);
        let path = std::path::Path::new("BENCH_codec.json");
        match append_bench_datapoint(path, &o.datapoint_json) {
            Ok(()) => eprintln!("appended codec datapoint to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    if wants("serve") {
        let o = serve_bench(scale);
        println!("{}", o.table);
        let path = std::path::Path::new("BENCH_serve.json");
        match append_bench_datapoint(path, &o.datapoint_json) {
            Ok(()) => eprintln!("appended serve datapoint to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: tables [--scale <f>] [table1..table6|figure8|figure9|figure10|figure12|scaling|obs|codec|serve|all]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
