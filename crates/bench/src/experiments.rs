//! The experiments behind every table and figure of the paper.
//!
//! Each `tableN`/`figureN` method prints measured values next to the
//! paper's published numbers. Absolute sizes and times differ (synthetic
//! workloads, modern hardware); the claims under reproduction are the
//! *shapes*: which transformation contributes what factor, who wins each
//! comparison and by roughly how much.

use std::time::{Duration, Instant};

use twpp::pipeline::{
    compact_with_stats, compact_with_stats_threads, CompactOptions, CompactedTwpp, PipelineStats,
};
use twpp::TwppArchive;
use twpp_dataflow::dyncfg::DynCfg;
use twpp_ir::cfg::FlowgraphSize;
use twpp_ir::FuncId;
use twpp_tracer::RawWpp;
use twpp_workloads::{generate, Profile, Workload};

use crate::fmt::{factor, mb, ms, Table};

/// One benchmark workload with its compacted TWPP and statistics.
pub struct BenchCase {
    /// The modeled SPECint95 benchmark.
    pub profile: Profile,
    /// The generated workload.
    pub workload: Workload,
    /// The compacted TWPP.
    pub compacted: CompactedTwpp,
    /// Per-stage compaction statistics.
    pub stats: PipelineStats,
}

/// The full suite: one case per paper benchmark.
pub struct Suite {
    /// The five cases, in the paper's table order.
    pub cases: Vec<BenchCase>,
}

impl Suite {
    /// Generates all five workloads at `scale` (1.0 = the crate defaults)
    /// and runs the compaction pipeline on each.
    pub fn build(scale: f64) -> Suite {
        let cases = Profile::all()
            .into_iter()
            .map(|profile| {
                let spec = profile.spec().scaled(scale);
                let workload = generate(&spec);
                let (compacted, stats) =
                    compact_with_stats(&workload.wpp).expect("generated WPPs are well-formed");
                BenchCase {
                    profile,
                    workload,
                    compacted,
                    stats,
                }
            })
            .collect();
        Suite { cases }
    }

    /// Table 1: raw WPP sizes (DCG, traces, total).
    pub fn table1(&self) -> String {
        // Paper values in MB: (dcg, traces, total).
        let paper = [
            ("099.go", 6.0, 170.0, 176.0),
            ("126.gcc", 34.7, 489.5, 524.2),
            ("130.li", 8.6, 78.3, 84.9),
            ("132.ijpeg", 1.7, 266.9, 268.6),
            ("134.perl", 3.4, 41.5, 44.9),
        ];
        let mut t = Table::new(&[
            "program",
            "DCG (MB)",
            "traces (MB)",
            "total (MB)",
            "paper DCG",
            "paper traces",
            "paper total",
        ]);
        for (case, p) in self.cases.iter().zip(paper) {
            let raw = &case.stats.raw;
            t.row(vec![
                case.profile.paper_name().into(),
                mb(raw.dcg_bytes),
                mb(raw.trace_bytes),
                mb(raw.total()),
                format!("{:.1}", p.1),
                format!("{:.1}", p.2),
                format!("{:.1}", p.3),
            ]);
        }
        format!("Table 1: sample input traces\n{}", t.render())
    }

    /// Table 2: WPP trace compaction per transformation.
    pub fn table2(&self) -> String {
        // Paper factors: (dedup, dict, twpp, owpp/ctwpp).
        let paper = [
            ("099.go", 6.30, 1.58, 0.97, 9.7),
            ("126.gcc", 5.66, 1.70, 1.54, 14.9),
            ("130.li", 9.21, 1.60, 4.81, 71.2),
            ("132.ijpeg", 9.50, 1.35, 3.65, 46.8),
            ("134.perl", 5.77, 4.24, 85.0, 2075.0),
        ];
        let mut t = Table::new(&[
            "program",
            "dedup (MB)",
            "dict (MB)",
            "CTWPP (MB)",
            "dedup f",
            "dict f",
            "twpp f",
            "OWPP/CTWPP",
            "paper dedup f",
            "paper dict f",
            "paper twpp f",
            "paper O/C",
        ]);
        for (case, p) in self.cases.iter().zip(paper) {
            let s = &case.stats;
            t.row(vec![
                case.profile.paper_name().into(),
                mb(s.after_dedup_bytes),
                mb(s.after_dict_bytes),
                mb(s.ctwpp_trace_bytes),
                factor(s.dedup_factor()),
                factor(s.dict_factor()),
                factor(s.twpp_factor()),
                factor(s.trace_factor()),
                factor(p.1),
                factor(p.2),
                factor(p.3),
                factor(p.4),
            ]);
        }
        format!(
            "Table 2: WPP trace compaction due to various transformations\n{}",
            t.render()
        )
    }

    /// Table 3: overall compaction factor.
    pub fn table3(&self) -> String {
        let paper = [
            ("099.go", 6.6, 17.6, 2.3, 26.5, 7.0),
            ("126.gcc", 13.8, 32.9, 4.9, 51.6, 10.0),
            ("130.li", 5.3, 1.1, 0.04, 6.4, 13.0),
            ("132.ijpeg", 1.0, 5.7, 0.6, 7.3, 37.0),
            ("134.perl", 0.7, 0.02, 0.02, 0.7, 64.0),
        ];
        let mut t = Table::new(&[
            "program",
            "cDCG (MB)",
            "traces (MB)",
            "dicts (MB)",
            "total (MB)",
            "factor",
            "paper factor",
        ]);
        for (case, p) in self.cases.iter().zip(paper) {
            let s = &case.stats;
            t.row(vec![
                case.profile.paper_name().into(),
                mb(s.dcg_compressed_bytes),
                mb(s.ctwpp_trace_bytes),
                mb(s.dict_bytes),
                mb(s.total_compacted_bytes()),
                format!("{:.1}", s.overall_factor()),
                format!("{:.0}", p.5),
            ]);
        }
        format!("Table 3: overall compaction factor\n{}", t.render())
    }

    /// Table 4: per-function extraction times, uncompacted file scan vs
    /// compacted archive seek-and-decode.
    pub fn table4(&self) -> String {
        let mut t = Table::new(&[
            "program",
            "avg U (ms)",
            "max U (ms)",
            "avg C (ms)",
            "max C (ms)",
            "speedup",
            "paper speedup",
        ]);
        // Paper: U/C in ms -> speedups of three orders of magnitude.
        let paper_speedup = ["~500", "~3800", "~170", "~1270", "~6500"];
        let dir = temp_dir("table4");
        for (case, paper) in self.cases.iter().zip(paper_speedup) {
            let raw_path = dir.join(format!("{}.wpp", case.profile.paper_name()));
            let arc_path = dir.join(format!("{}.twpa", case.profile.paper_name()));
            {
                let file = std::fs::File::create(&raw_path).expect("temp file");
                let mut writer = std::io::BufWriter::new(file);
                case.workload.wpp.write_to(&mut writer).expect("write raw");
            }
            TwppArchive::from_compacted(&case.compacted)
                .save(&arc_path)
                .expect("write archive");

            let funcs = sample_functions(&case.compacted, 12);
            let mut u_times = Vec::new();
            let mut c_times = Vec::new();
            for &f in &funcs {
                u_times.push(median_time(3, || {
                    let file = std::fs::File::open(&raw_path).expect("open raw");
                    let wpp =
                        RawWpp::read_from(std::io::BufReader::new(file)).expect("read raw");
                    std::hint::black_box(wpp.scan_function(f).len());
                }));
                c_times.push(median_time(3, || {
                    let rec = TwppArchive::read_function_from_file(&arc_path, f)
                        .expect("read function");
                    std::hint::black_box(rec.traces.len());
                }));
            }
            let (u_avg, u_max) = avg_max(&u_times);
            let (c_avg, c_max) = avg_max(&c_times);
            let speedup = u_avg.as_secs_f64() / c_avg.as_secs_f64().max(1e-9);
            t.row(vec![
                case.profile.paper_name().into(),
                ms(u_avg),
                ms(u_max),
                ms(c_avg),
                ms(c_max),
                format!("{speedup:.0}"),
                paper.into(),
            ]);
        }
        std::fs::remove_dir_all(&dir).ok();
        format!(
            "Table 4: extraction times for a single function\n{}",
            t.render()
        )
    }

    /// Table 5: Sequitur-compressed WPP vs compacted TWPP — sizes and
    /// per-function extraction times.
    pub fn table5(&self) -> String {
        let paper = [
            ("099.go", 8.4, 26.5, 1937.0, 8.0),
            ("126.gcc", 11.2, 51.6, 3321.0, 6.0),
            ("130.li", 7.8, 7.3, 179.0, 2.0),
            ("132.ijpeg", 0.7, 6.4, 2194.0, 6.0),
            ("134.perl", 0.4, 0.7, 59.0, 0.2),
        ];
        let mut t = Table::new(&[
            "program",
            "seq (MB)",
            "TWPP (MB)",
            "seq read+process (ms)",
            "TWPP (ms)",
            "time ratio",
            "paper seq/TWPP MB",
            "paper seq/TWPP ms",
        ]);
        let dir = temp_dir("table5");
        for (case, p) in self.cases.iter().zip(paper) {
            let grammar = twpp_sequitur::compress_wpp(&case.workload.wpp);
            let rules = grammar.to_rules();
            let seq_bytes = twpp_sequitur::encode(&rules);
            let arc = TwppArchive::from_compacted(&case.compacted);
            let arc_path = dir.join(format!("{}.twpa", case.profile.paper_name()));
            arc.save(&arc_path).expect("write archive");

            let funcs = sample_functions(&case.compacted, 6);
            let mut seq_times = Vec::new();
            let mut twpp_times = Vec::new();
            for &f in &funcs {
                seq_times.push(median_time(1, || {
                    let decoded = twpp_sequitur::decode(&seq_bytes).expect("read grammar");
                    let traces = twpp_sequitur::extract_function(&decoded, f);
                    std::hint::black_box(traces.len());
                }));
                twpp_times.push(median_time(3, || {
                    let rec = TwppArchive::read_function_from_file(&arc_path, f)
                        .expect("read function");
                    std::hint::black_box(rec.traces.len());
                }));
            }
            let (seq_avg, _) = avg_max(&seq_times);
            let (twpp_avg, _) = avg_max(&twpp_times);
            let ratio = seq_avg.as_secs_f64() / twpp_avg.as_secs_f64().max(1e-9);
            t.row(vec![
                case.profile.paper_name().into(),
                mb(seq_bytes.len()),
                mb(arc.byte_len()),
                ms(seq_avg),
                ms(twpp_avg),
                format!("{ratio:.0}"),
                format!("{:.1}/{:.1}", p.1, p.2),
                format!("{:.0}/{:.1}", p.3, p.4),
            ]);
        }
        std::fs::remove_dir_all(&dir).ok();
        format!(
            "Table 5: compacted trace sizes and extraction times (Sequitur baseline)\n{}",
            t.render()
        )
    }

    /// Table 6: static vs dynamic flowgraph sizes and timestamp-vector
    /// compaction.
    pub fn table6(&self) -> String {
        let paper = [
            ("099.go", 10823, 16236, 4739, 16591, 11.9, 15.7),
            ("126.gcc", 66571, 104379, 8838, 20012, 14.0, 33.1),
            ("130.li", 2701, 3536, 265, 289, 51.2, 410.3),
            ("132.ijpeg", 5718, 8105, 754, 1213, 18.1, 109.7),
            ("134.perl", 13117, 19539, 501, 674, 3.9, 616.8),
        ];
        let mut t = Table::new(&[
            "program",
            "static N",
            "static E",
            "dyn N",
            "dyn E",
            "avg |T| (raw)",
            "paper static N/E",
            "paper dyn N/E",
            "paper |T| (raw)",
        ]);
        for (case, p) in self.cases.iter().zip(paper) {
            let static_size: FlowgraphSize = case
                .workload
                .program
                .funcs()
                .map(|(_, f)| FlowgraphSize::of_function(f))
                .sum();
            let mut dyn_size = FlowgraphSize::default();
            let mut entries = 0usize;
            let mut raw_ts = 0u64;
            let mut node_count = 0usize;
            for fb in &case.compacted.functions {
                for (dict_idx, tt) in &fb.traces {
                    let dcfg = DynCfg::new(tt, &fb.dicts[*dict_idx as usize]);
                    dyn_size = dyn_size + dcfg.flowgraph_size();
                    for n in dcfg.nodes() {
                        entries += n.ts.entry_count();
                        raw_ts += n.ts.len();
                        node_count += 1;
                    }
                }
            }
            let avg_c = entries as f64 / node_count.max(1) as f64;
            let avg_r = raw_ts as f64 / node_count.max(1) as f64;
            t.row(vec![
                case.profile.paper_name().into(),
                static_size.nodes.to_string(),
                static_size.edges.to_string(),
                dyn_size.nodes.to_string(),
                dyn_size.edges.to_string(),
                format!("{avg_c:.1} ({avg_r:.1})"),
                format!("{}/{}", p.1, p.2),
                format!("{}/{}", p.3, p.4),
                format!("{:.1} ({:.1})", p.5, p.6),
            ]);
        }
        format!(
            "Table 6: sizes of static and dynamic flow graphs\n{}",
            t.render()
        )
    }

    /// Figure 8: percentage of calls attributable to functions with at
    /// most N unique path traces.
    pub fn figure8(&self) -> String {
        let ns = [1u64, 2, 5, 10, 25, 50, 100, 200, 300];
        let mut header: Vec<&str> = vec!["program"];
        let labels: Vec<String> = ns.iter().map(|n| format!("<={n}")).collect();
        header.extend(labels.iter().map(String::as_str));
        let mut t = Table::new(&header);
        for case in &self.cases {
            let mut row = vec![case.profile.paper_name().to_owned()];
            for &n in &ns {
                row.push(format!(
                    "{:.0}%",
                    case.stats.redundancy.percent_calls_with_at_most(n)
                ));
            }
            t.row(row);
        }
        format!(
            "Figure 8: trace redundancy (% of calls vs unique traces per function)\n\
             (paper: li/ijpeg/perl reach 57-80% by N=5; gcc by N=25; go by N=50)\n{}",
            t.render()
        )
    }
}

/// Parallel compaction scaling: wall time of the full pipeline at 1, 2,
/// 4, … worker threads on the largest workload, with per-stage timings
/// from [`PipelineStats::timings`]. Output bytes are identical at every
/// thread count (checked here); only the wall clock moves.
pub fn parallel_scaling(scale: f64) -> String {
    let spec = Profile::Gcc.spec().scaled(scale);
    let workload = generate(&spec);
    let wpp = &workload.wpp;

    let hw = twpp::default_threads();
    let mut counts = vec![1usize, 2, 4];
    if hw > 4 {
        counts.push(hw);
    }
    counts.dedup();

    let mut t = Table::new(&[
        "threads",
        "wall (ms)",
        "speedup",
        "partition (ms)",
        "dedup (ms)",
        "per-func (ms)",
        "DCG lzw (ms)",
    ]);
    let mut baseline: Option<(Duration, CompactedTwpp)> = None;
    let mut out = String::from("Parallel compaction scaling (126.gcc workload)\n");
    for &threads in &counts {
        let options = CompactOptions::with_threads(threads);
        // Median-of-3 to damp scheduler noise.
        let mut best: Option<(Duration, CompactedTwpp, PipelineStats)> = None;
        let mut samples = Vec::new();
        for _ in 0..3 {
            let start = Instant::now();
            let (compacted, stats) =
                compact_with_stats_threads(wpp, options).expect("generated WPPs are well-formed");
            let wall = start.elapsed();
            samples.push(wall);
            if best.as_ref().is_none_or(|(b, _, _)| wall < *b) {
                best = Some((wall, compacted, stats));
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let (_, compacted, stats) = best.expect("three samples were taken");
        match &baseline {
            None => baseline = Some((median, compacted)),
            Some((_, base_compacted)) => {
                assert_eq!(
                    &compacted, base_compacted,
                    "parallel compaction diverged at {threads} threads"
                );
            }
        }
        let base = baseline.as_ref().map_or(median, |(b, _)| *b);
        let speedup = base.as_secs_f64() / median.as_secs_f64().max(1e-9);
        let tm = &stats.timings;
        let nanos_ms = |n: u64| format!("{:.2}", n as f64 / 1e6);
        t.row(vec![
            threads.to_string(),
            ms(median),
            format!("{speedup:.2}x"),
            nanos_ms(tm.partition_nanos),
            nanos_ms(tm.dedup_nanos),
            nanos_ms(tm.function_stage_nanos),
            nanos_ms(tm.dcg_compress_nanos),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("(identical output bytes at every thread count; speedup is wall-clock)\n");
    out
}

/// Figure 9: dynamic load redundancy on the paper's loop example.
pub fn figure9() -> String {
    use twpp_dataflow::redundancy::{load_redundancy, loads_in};
    let program = twpp_lang::compile_with_options(
        twpp_lang::programs::FIGURE9,
        twpp_lang::LowerOptions {
            stmt_per_block: true,
        },
    )
    .expect("figure 9 program compiles");
    let (_, wpp) = twpp_tracer::run_traced(&program, &[], twpp_tracer::ExecLimits::default())
        .expect("figure 9 program runs");
    let main_id = program.main();
    let func = program.func(main_id);
    let trace = &wpp.scan_function(main_id)[0];
    let dcfg = DynCfg::from_block_sequence(trace);
    let mut out = String::from("Figure 9: detecting dynamic load redundancy\n");
    for (node, addr) in loads_in(&dcfg, func) {
        let report = load_redundancy(&dcfg, func, node).expect("node has a load");
        out.push_str(&format!(
            "load({addr}) at dyn node {:>2} (block {:>2}): {:>3} executions, \
             {:>3} redundant, degree {:>5.1}%\n",
            node,
            dcfg.node(node).head.as_u32(),
            report.total,
            report.redundant,
            report.degree_percent()
        ));
    }
    out.push_str("(paper: the 60-execution load is 100% redundant)\n");
    out
}

/// Figures 10 & 11: the three dynamic slicing algorithms on the paper's
/// example.
pub fn figure10() -> String {
    use twpp_dataflow::slicing::{Approach, Criterion, Slicer};
    let program = twpp_lang::compile_with_options(
        twpp_lang::programs::FIGURE10,
        twpp_lang::LowerOptions {
            stmt_per_block: true,
        },
    )
    .expect("figure 10 program compiles");
    let (_, wpp) = twpp_tracer::run_traced(
        &program,
        twpp_lang::programs::FIGURE10_INPUT,
        twpp_tracer::ExecLimits::default(),
    )
    .expect("figure 10 program runs");
    let main_id = program.main();
    let func = program.func(main_id);
    let trace = &wpp.scan_function(main_id)[0];
    let slicer = Slicer::new(func, trace);

    // The criterion: variable z at the final print (the last block of the
    // trace, i.e. the breakpoint of the paper).
    let last_block = *trace.last().expect("non-empty trace");
    let t = slicer.dyn_cfg().len();
    let z = find_var_of_last_print(func);
    let criterion = Criterion {
        block: last_block,
        timestamp: t,
        var: z,
    };
    let mut out = String::from("Figures 10/11: dynamic slicing (Agrawal-Horgan)\n");
    out.push_str(&format!(
        "criterion: slice for z at block {} (timestamp {t})\n",
        last_block.as_u32()
    ));
    let mut sizes = Vec::new();
    for (name, approach) in [
        ("approach 1 (executed nodes)", Approach::ExecutedNodes),
        ("approach 2 (executed edges)", Approach::ExecutedEdges),
        ("approach 3 (precise)", Approach::PreciseInstances),
    ] {
        let slice = slicer.slice(criterion, approach);
        sizes.push(slice.len());
        let blocks: Vec<String> = slice.iter().map(|b| b.as_u32().to_string()).collect();
        out.push_str(&format!(
            "{name}: {} blocks {{{}}}\n",
            slice.len(),
            blocks.join(", ")
        ));
    }
    out.push_str(&format!(
        "slice sizes: {} >= {} >= {} (paper: each approach refines the previous)\n",
        sizes[0], sizes[1], sizes[2]
    ));
    out
}

/// Figure 12: dynamic currency determination.
pub fn figure12() -> String {
    // Reuses the scenario of the dataflow crate's currency module: partial
    // dead code elimination sinks an assignment into one branch.
    use twpp_dataflow::currency::{currency_of, AssignTags, Currency};
    use twpp_ir::{
        single_function_program, BlockId, Operand, Rvalue, Stmt, Terminator, Var,
    };
    let b = BlockId::new;
    let build = |moved: bool| {
        single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let b4 = fb.new_block();
            let x = fb.new_var();
            fb.push(b1, Stmt::assign(x, Rvalue::Use(Operand::Const(10))));
            if moved {
                fb.push(b2, Stmt::assign(x, Rvalue::Use(Operand::Const(20))));
            } else {
                fb.push(b1, Stmt::assign(x, Rvalue::Use(Operand::Const(20))));
            }
            fb.push(b2, Stmt::Print(Operand::Var(x)));
            fb.terminate(
                b1,
                Terminator::Branch {
                    cond: Operand::Var(x),
                    then_dest: b2,
                    else_dest: b4,
                },
            );
            fb.terminate(b2, Terminator::Jump(b3));
            fb.terminate(b4, Terminator::Jump(b3));
            fb.push(b3, Stmt::Print(Operand::Var(x)));
            fb.terminate(b3, Terminator::Return(None));
        })
        .expect("figure 12 program is well-formed")
    };
    let unopt = build(false);
    let opt = build(true);
    let mut unopt_tags = AssignTags::new();
    unopt_tags.insert((b(1), 0), 1);
    unopt_tags.insert((b(1), 1), 2);
    let mut opt_tags = AssignTags::new();
    opt_tags.insert((b(1), 0), 1);
    opt_tags.insert((b(2), 0), 2);
    let x = Var::from_index(0);

    let mut out = String::from(
        "Figure 12: dynamic currency determination after partial dead code elimination\n",
    );
    for (label, trace) in [
        ("path 1.2.3 (through moved assignment)", vec![b(1), b(2), b(3)]),
        ("path 1.4.3 (around moved assignment)", vec![b(1), b(4), b(3)]),
    ] {
        let verdict = currency_of(
            unopt.func(unopt.main()),
            opt.func(opt.main()),
            &unopt_tags,
            &opt_tags,
            &trace,
            3,
            x,
        );
        let text = match verdict {
            Currency::Current => "x is CURRENT".to_owned(),
            Currency::NonCurrent { actual, expected } => format!(
                "x is NON-CURRENT (holds assignment {actual:?}, user expects {expected:?})"
            ),
        };
        out.push_str(&format!("{label}: {text}\n"));
    }
    out.push_str("(paper: current on the left path, non-current on the right)\n");
    out
}

// ----- helpers ----------------------------------------------------------

fn find_var_of_last_print(func: &twpp_ir::Function) -> twpp_ir::Var {
    // The criterion variable: the operand of the program's final print
    // (the last print in block order is the breakpoint).
    let mut last = None;
    for (_, block) in func.blocks() {
        for stmt in block.stmts() {
            if let twpp_ir::Stmt::Print(twpp_ir::Operand::Var(v)) = stmt {
                last = Some(*v);
            }
        }
    }
    last.expect("figure 10 program prints a variable")
}

fn sample_functions(compacted: &CompactedTwpp, max: usize) -> Vec<FuncId> {
    // A spread of hot and cold functions: layout order is hottest-first.
    let n = compacted.functions.len();
    let mut out = Vec::new();
    let step = (n / max.max(1)).max(1);
    for i in (0..n).step_by(step) {
        out.push(compacted.functions[i].func);
        if out.len() >= max {
            break;
        }
    }
    out
}

fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn avg_max(times: &[Duration]) -> (Duration, Duration) {
    let total: Duration = times.iter().sum();
    let avg = total / times.len().max(1) as u32;
    let max = times.iter().max().copied().unwrap_or_default();
    (avg, max)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("twpp-bench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Result of the observability-overhead experiment: a rendered table and
/// one machine-readable datapoint for the `BENCH_obs.json` trajectory.
pub struct ObsOverhead {
    /// Human-readable comparison table.
    pub table: String,
    /// One JSON datapoint: measured walls, overhead, and the full
    /// [`twpp::RunReport`] of the instrumented run.
    pub datapoint_json: String,
}

/// Measures the cost of the `twpp::obs` layer on the full compaction
/// pipeline: wall time with the no-op observer versus a collecting one
/// (median of five runs each, 126.gcc workload), asserting that both
/// produce identical compacted output. The collecting run's spans,
/// metric snapshot and pipeline statistics become the run report inside
/// the emitted datapoint.
pub fn obs_overhead(scale: f64) -> ObsOverhead {
    use twpp::obs::{JsonWriter, Obs};
    use twpp::{GovOptions, RunOutcome, RunReport};

    let spec = Profile::Gcc.spec().scaled(scale);
    let workload = generate(&spec);
    let wpp = &workload.wpp;
    const SAMPLES: usize = 5;

    let measure = |obs_for_run: &dyn Fn() -> Obs| {
        let mut walls: Vec<Duration> = Vec::new();
        let mut last = None;
        for _ in 0..SAMPLES {
            let obs = obs_for_run();
            let options = GovOptions {
                threads: Some(1),
                obs: obs.clone(),
                ..GovOptions::default()
            };
            let start = Instant::now();
            let (compacted, stats) =
                twpp::compact_governed(wpp, &options).expect("generated WPPs are well-formed");
            walls.push(start.elapsed());
            last = Some((compacted, stats, obs));
        }
        walls.sort();
        let median = walls[walls.len() / 2];
        let (compacted, stats, obs) = last.expect("samples were taken");
        (median, compacted, stats, obs)
    };

    let (noop_wall, noop_out, _, _) = measure(&Obs::noop);
    let (obs_wall, obs_out, stats, obs) = measure(&Obs::collecting);
    assert_eq!(
        noop_out, obs_out,
        "observation changed the compacted output"
    );
    let overhead = (obs_wall.as_secs_f64() / noop_wall.as_secs_f64().max(1e-9) - 1.0) * 100.0;
    let snapshot = obs.snapshot();
    let span_count = obs.span_count();

    // The daemon's hot path: the same stream through the crash-safe
    // incremental compactor in frame-sized batches, with the telemetry
    // the admin plane arms (collecting observer + per-source rate
    // estimator + flight recorder) versus none of it — the cost a
    // `serve-ingest --admin` operator pays per event.
    const DAEMON_SAMPLES: usize = 3;
    let events = wpp.events();
    let measure_daemon = |telemetry: bool| -> (Duration, Vec<u8>) {
        let mut walls: Vec<Duration> = Vec::new();
        let mut merged = Vec::new();
        for run in 0..DAEMON_SAMPLES {
            let dir = temp_dir(&format!("daemon-obs-{telemetry}-{run}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create daemon bench dir");
            let opts = twpp::IngestOptions {
                seal_bytes: 64 << 10,
                durability: twpp::Durability::None,
                threads: Some(1),
                obs: if telemetry { Obs::collecting() } else { Obs::noop() },
                ..twpp::IngestOptions::default()
            };
            let rate = twpp::RateEstimator::per_second_window();
            let flightrec = twpp::FlightRecorder::new(512);
            let start = Instant::now();
            let mut c = twpp::Compactor::create(&dir, opts).expect("create compactor");
            for batch in events.chunks(256) {
                c.feed(batch).expect("feed");
                if telemetry {
                    rate.record(batch.len() as u64);
                    flightrec.record("bench", "feed", format!("+{}", batch.len()));
                }
            }
            c.finish().expect("finish");
            walls.push(start.elapsed());
            merged = std::fs::read(dir.join("merged.twpa")).expect("merged.twpa");
            let _ = std::fs::remove_dir_all(&dir);
        }
        walls.sort();
        (walls[walls.len() / 2], merged)
    };
    let (daemon_noop_wall, daemon_noop_out) = measure_daemon(false);
    let (daemon_obs_wall, daemon_obs_out) = measure_daemon(true);
    assert_eq!(
        daemon_noop_out, daemon_obs_out,
        "daemon telemetry changed the merged archive"
    );
    let daemon_overhead = (daemon_obs_wall.as_secs_f64()
        / daemon_noop_wall.as_secs_f64().max(1e-9)
        - 1.0)
        * 100.0;

    let mut t = Table::new(&["observer", "wall (ms)", "overhead", "spans", "metrics"]);
    t.row(vec![
        "noop".into(),
        ms(noop_wall),
        "—".into(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "collecting".into(),
        ms(obs_wall),
        format!("{overhead:+.1}%"),
        span_count.to_string(),
        snapshot.samples.len().to_string(),
    ]);
    t.row(vec![
        "daemon noop".into(),
        ms(daemon_noop_wall),
        "—".into(),
        "0".into(),
        "0".into(),
    ]);
    t.row(vec![
        "daemon telemetry".into(),
        ms(daemon_obs_wall),
        format!("{daemon_overhead:+.1}%"),
        "—".into(),
        "—".into(),
    ]);
    let mut table = String::from("Observability overhead (126.gcc workload, 1 thread)\n");
    table.push_str(&t.render());
    table.push_str(
        "(identical compacted output with and without observation; daemon rows\n\
         feed the incremental compactor with the admin-plane telemetry on/off)\n",
    );

    let mut report = RunReport::new("bench", RunOutcome::Complete);
    report.threads = 1;
    report.pipeline = Some(stats.to_section());
    report.metrics = snapshot;
    report.span_count = span_count as u64;
    let report_json = report.to_json();
    debug_assert!(twpp::validate_report_json(&report_json).is_ok());

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("experiment");
    w.string("obs_overhead");
    w.key("scale");
    w.float(scale);
    w.key("samples");
    w.uint(SAMPLES as u64);
    w.key("noop_wall_ns");
    w.uint(noop_wall.as_nanos() as u64);
    w.key("collecting_wall_ns");
    w.uint(obs_wall.as_nanos() as u64);
    w.key("overhead_percent");
    w.float((overhead * 100.0).round() / 100.0);
    w.key("daemon_samples");
    w.uint(DAEMON_SAMPLES as u64);
    w.key("daemon_noop_wall_ns");
    w.uint(daemon_noop_wall.as_nanos() as u64);
    w.key("daemon_telemetry_wall_ns");
    w.uint(daemon_obs_wall.as_nanos() as u64);
    w.key("daemon_overhead_percent");
    w.float((daemon_overhead * 100.0).round() / 100.0);
    w.key("report");
    w.raw(&report_json);
    w.end_object();

    ObsOverhead {
        table,
        datapoint_json: w.finish(),
    }
}

/// Result of the codec-comparison experiment: a rendered table and one
/// machine-readable datapoint for the `BENCH_codec.json` trajectory.
pub struct CodecCompare {
    /// Human-readable comparison table.
    pub table: String,
    /// One JSON datapoint: per-profile archive bytes per event and
    /// decode nanoseconds per event for both codecs.
    pub datapoint_json: String,
}

/// Compares the legacy `l:h:s`-only archive encoding against the
/// adaptive per-series codec (raw | `l:h:s` | delta-of-delta, smallest
/// wins) across the five paper workloads: archive bytes per WPP event
/// and whole-archive decode nanoseconds per event (median of three
/// runs). Asserts both encodings decode to the same `CompactedTwpp` and
/// that adaptive never loses on bytes — the selection rule's contract.
pub fn codec_compare(scale: f64) -> CodecCompare {
    use std::collections::HashMap;
    use twpp::obs::{JsonWriter, Obs};
    use twpp::Codec;

    const SAMPLES: usize = 3;
    let noop = Obs::noop();
    let names: HashMap<FuncId, String> = HashMap::new();

    let mut t = Table::new(&[
        "program",
        "events",
        "legacy B/ev",
        "adaptive B/ev",
        "saved",
        "legacy dec ns/ev",
        "adaptive dec ns/ev",
    ]);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("experiment");
    w.string("codec_compare");
    w.key("scale");
    w.float(scale);
    w.key("samples");
    w.uint(SAMPLES as u64);
    w.key("profiles");
    w.begin_array();

    for profile in Profile::all() {
        let spec = profile.spec().scaled(scale);
        let workload = generate(&spec);
        let events = workload.wpp.events().len() as u64;
        let (compacted, _) =
            compact_with_stats(&workload.wpp).expect("generated WPPs are well-formed");

        // (bytes, median decode wall) per codec, same decode verified.
        let mut measured: Vec<(usize, Duration)> = Vec::new();
        for codec in [Codec::Legacy, Codec::Adaptive] {
            let archive =
                TwppArchive::from_compacted_codec(&compacted, &names, 1, &[], &noop, codec);
            let mut walls: Vec<Duration> = Vec::new();
            for _ in 0..SAMPLES {
                let bytes = archive.as_bytes().to_vec();
                let start = Instant::now();
                let decoded = TwppArchive::from_bytes(bytes)
                    .expect("fresh archive parses")
                    .to_compacted()
                    .expect("fresh archive decodes");
                walls.push(start.elapsed());
                assert_eq!(
                    decoded, compacted,
                    "{codec:?} archive decoded to a different CompactedTwpp"
                );
            }
            walls.sort();
            measured.push((archive.byte_len(), walls[walls.len() / 2]));
        }
        let (legacy_bytes, legacy_wall) = measured[0];
        let (adaptive_bytes, adaptive_wall) = measured[1];
        assert!(
            adaptive_bytes <= legacy_bytes,
            "{}: adaptive archive larger than legacy ({adaptive_bytes} vs {legacy_bytes})",
            profile.paper_name()
        );

        let ev = (events as f64).max(1.0);
        let legacy_bpe = legacy_bytes as f64 / ev;
        let adaptive_bpe = adaptive_bytes as f64 / ev;
        let legacy_npe = legacy_wall.as_nanos() as f64 / ev;
        let adaptive_npe = adaptive_wall.as_nanos() as f64 / ev;
        let saved = (1.0 - adaptive_bytes as f64 / (legacy_bytes as f64).max(1.0)) * 100.0;
        t.row(vec![
            profile.paper_name().into(),
            events.to_string(),
            format!("{legacy_bpe:.2}"),
            format!("{adaptive_bpe:.2}"),
            format!("{saved:.1}%"),
            format!("{legacy_npe:.0}"),
            format!("{adaptive_npe:.0}"),
        ]);

        w.begin_object();
        w.key("program");
        w.string(profile.paper_name());
        w.key("events");
        w.uint(events);
        w.key("legacy_bytes");
        w.uint(legacy_bytes as u64);
        w.key("adaptive_bytes");
        w.uint(adaptive_bytes as u64);
        w.key("legacy_bytes_per_event");
        w.float((legacy_bpe * 1000.0).round() / 1000.0);
        w.key("adaptive_bytes_per_event");
        w.float((adaptive_bpe * 1000.0).round() / 1000.0);
        w.key("legacy_decode_ns_per_event");
        w.float((legacy_npe * 10.0).round() / 10.0);
        w.key("adaptive_decode_ns_per_event");
        w.float((adaptive_npe * 10.0).round() / 10.0);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    let mut table = String::from(
        "Timestamp-set codec comparison (archive bytes and decode cost per WPP event)\n",
    );
    table.push_str(&t.render());
    table.push_str("(both codecs decode to identical compacted output; adaptive never larger)\n");

    CodecCompare {
        table,
        datapoint_json: w.finish(),
    }
}

/// Result of the serve-fleet experiment: a rendered table and one
/// machine-readable datapoint for the `BENCH_serve.json` trajectory.
pub struct ServeBench {
    /// Human-readable latency/hit-rate table.
    pub table: String,
    /// One JSON datapoint: p50/p99 answer latency (cold and hot) plus
    /// frame- and summary-cache hit rates over the run.
    pub datapoint_json: String,
}

/// Benchmarks the query server's answer path over a seeded archive
/// fleet: one archive per paper profile, served in-process (the same
/// `Registry::handle_request` the socket daemon runs, minus the socket),
/// hammered with every function's `Query` twice — a cold pass that
/// decodes frames and a hot pass answered from the caches. Reports
/// client-observed p50/p99 per pass and the cache hit rates.
pub fn serve_bench(scale: f64) -> ServeBench {
    use std::collections::HashMap;
    use twpp::net::{BudgetSpec, Frame, QueryReq};
    use twpp::obs::{JsonWriter, Obs};

    let noop = Obs::noop();
    let dir = std::env::temp_dir().join(format!("twpp-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench fleet dir");

    for profile in Profile::all() {
        let spec = profile.spec().scaled(scale);
        let workload = generate(&spec);
        let compacted = twpp::compact(&workload.wpp).expect("generated WPPs are well-formed");
        let names: HashMap<FuncId, String> = workload
            .program
            .funcs()
            .map(|(id, f)| (id, f.name().to_owned()))
            .collect();
        let archive = TwppArchive::from_compacted_codec(
            &compacted,
            &names,
            1,
            &[],
            &noop,
            twpp::Codec::default(),
        );
        archive
            .save_with(
                &dir.join(format!("{}.twpa", workload.name)),
                twpp::Durability::None,
            )
            .expect("write bench archive");
    }

    let server = twpp_server::InProcServer::new(
        &dir,
        twpp_server::ServeOptions { obs: Obs::collecting(), ..Default::default() },
    )
    .expect("open bench fleet");
    let mut targets: Vec<(String, u32)> = Vec::new();
    for tenant in server.fleet().list() {
        for func in tenant.archive.function_ids() {
            targets.push((tenant.name.clone(), func.as_u32()));
        }
    }
    assert!(!targets.is_empty(), "bench fleet has no functions");

    let run_pass = || -> Vec<u64> {
        let mut latencies = Vec::with_capacity(targets.len());
        for (archive, func) in &targets {
            let frame = Frame::Query {
                req: QueryReq { archive: archive.clone(), func: *func },
                budget: BudgetSpec { deadline_ms: 0, max_steps: 0 },
            };
            let start = Instant::now();
            let reply = server.handle(&frame);
            latencies.push(start.elapsed().as_nanos() as u64);
            assert!(
                matches!(reply, Frame::Answer(_)),
                "bench query refused: {reply:?}"
            );
        }
        latencies.sort_unstable();
        latencies
    };
    // Three passes isolate the two cache layers: cold (everything
    // misses), warm (summaries dropped, so answers re-solve over *hot
    // frames*), hot (summary hits, no solving at all).
    let cold = run_pass();
    server.fleet().clear_summaries();
    let warm = run_pass();
    let hot = run_pass();
    let _ = std::fs::remove_dir_all(&dir);

    let pct = |l: &[u64], p: f64| l[((l.len() as f64 - 1.0) * p).round() as usize];
    let frames = server.fleet().frame_cache().stats();
    let summaries = server.fleet().summary_stats();
    let rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total == 0 { 0.0 } else { hits as f64 / total as f64 }
    };
    let frame_rate = rate(frames.hits, frames.misses);
    let summary_rate = rate(summaries.hits, summaries.misses);

    let mut t = Table::new(&["pass", "requests", "p50 us", "p99 us"]);
    for (name, l) in [("cold", &cold), ("warm", &warm), ("hot", &hot)] {
        t.row(vec![
            name.into(),
            l.len().to_string(),
            format!("{:.1}", pct(l, 0.50) as f64 / 1e3),
            format!("{:.1}", pct(l, 0.99) as f64 / 1e3),
        ]);
    }
    let mut table = String::from("Serve-fleet answer latency (in-process, per Query request)\n");
    table.push_str(&t.render());
    table.push_str(&format!(
        "(cache hit rates over all passes: frame {:.1}%, summary {:.1}%)\n",
        frame_rate * 100.0,
        summary_rate * 100.0
    ));

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("experiment");
    w.string("serve_bench");
    w.key("scale");
    w.float(scale);
    w.key("requests_per_pass");
    w.uint(cold.len() as u64);
    w.key("cold_p50_nanos");
    w.uint(pct(&cold, 0.50));
    w.key("cold_p99_nanos");
    w.uint(pct(&cold, 0.99));
    w.key("warm_p50_nanos");
    w.uint(pct(&warm, 0.50));
    w.key("warm_p99_nanos");
    w.uint(pct(&warm, 0.99));
    w.key("hot_p50_nanos");
    w.uint(pct(&hot, 0.50));
    w.key("hot_p99_nanos");
    w.uint(pct(&hot, 0.99));
    w.key("frame_cache_hit_rate");
    w.float((frame_rate * 10_000.0).round() / 10_000.0);
    w.key("summary_cache_hit_rate");
    w.float((summary_rate * 10_000.0).round() / 10_000.0);
    w.end_object();

    ServeBench {
        table,
        datapoint_json: w.finish(),
    }
}

/// Appends `datapoint_json` to the JSON-array trajectory at `path`
/// (creating `[datapoint]` if the file does not exist or fails to
/// parse) and returns the serialized array written back.
pub fn append_bench_datapoint(path: &std::path::Path, datapoint_json: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).ok();
    let mut points: Vec<String> = Vec::new();
    if let Some(text) = existing {
        if let Ok(doc) = twpp::obs::parse_json(&text) {
            if let Some(arr) = doc.as_arr() {
                points = (0..arr.len())
                    .filter_map(|i| extract_array_element(&text, i))
                    .collect();
            }
        }
    }
    points.push(datapoint_json.to_owned());
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("  ");
        out.push_str(p);
        if i + 1 < points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Re-serializes element `index` of a top-level JSON array by slicing
/// the source text between matching brackets (whitespace-trimmed). The
/// datapoints were emitted by our own compact writer, so a structural
/// scan is sufficient and preserves them byte-for-byte.
fn extract_array_element(text: &str, index: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut element = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => {
                if depth == 1 && start.is_none() && element == index {
                    start = Some(i);
                }
                depth += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                if depth == 1 {
                    if let Some(s) = start {
                        return Some(text[s..=i].to_owned());
                    }
                    element += 1;
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_tables_render_all_benchmarks() {
        // A tiny-scale build exercises the whole harness quickly.
        let suite = Suite::build(0.002);
        assert_eq!(suite.cases.len(), 5);
        for table in [
            suite.table1(),
            suite.table2(),
            suite.table3(),
            suite.table6(),
            suite.figure8(),
        ] {
            for name in ["099.go", "126.gcc", "130.li", "132.ijpeg", "134.perl"] {
                assert!(table.contains(name), "{name} missing from:\n{table}");
            }
        }
    }

    #[test]
    fn parallel_scaling_renders_and_checks_determinism() {
        let report = parallel_scaling(0.002);
        assert!(report.contains("threads"), "{report}");
        assert!(report.contains("speedup"), "{report}");
        // Rows for at least the 1/2/4 thread counts.
        for count in ["1", "2", "4"] {
            assert!(report.contains(count), "{count} missing from:\n{report}");
        }
    }

    #[test]
    fn obs_overhead_renders_and_datapoint_validates() {
        let o = obs_overhead(0.002);
        assert!(o.table.contains("collecting"), "{}", o.table);
        assert!(o.table.contains("identical compacted output"), "{}", o.table);
        // The datapoint parses and embeds a schema-valid run report.
        let doc = twpp::obs::parse_json(&o.datapoint_json).expect("datapoint is JSON");
        assert_eq!(
            doc.get("experiment").and_then(|e| e.as_str()),
            Some("obs_overhead")
        );
        assert!(doc.get("report").is_some());
        // Round-trip through the trajectory file: appending twice yields
        // a two-element array.
        let dir = temp_dir("obs-datapoint");
        let path = dir.join("BENCH_obs.json");
        append_bench_datapoint(&path, &o.datapoint_json).unwrap();
        append_bench_datapoint(&path, &o.datapoint_json).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let arr = twpp::obs::parse_json(&text).unwrap();
        assert_eq!(arr.as_arr().map(<[_]>::len), Some(2), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn codec_compare_renders_and_datapoint_validates() {
        let o = codec_compare(0.002);
        assert!(o.table.contains("adaptive never larger"), "{}", o.table);
        for name in ["099.go", "126.gcc", "130.li", "132.ijpeg", "134.perl"] {
            assert!(o.table.contains(name), "{name} missing from:\n{}", o.table);
        }
        let doc = twpp::obs::parse_json(&o.datapoint_json).expect("datapoint is JSON");
        assert_eq!(
            doc.get("experiment").and_then(|e| e.as_str()),
            Some("codec_compare")
        );
        let profiles = doc.get("profiles").and_then(|p| p.as_arr().map(<[_]>::len));
        assert_eq!(profiles, Some(5), "{}", o.datapoint_json);
    }

    #[test]
    fn figure_harnesses_report_paper_outcomes() {
        let f9 = figure9();
        assert!(f9.contains("degree 100.0%"), "{f9}");
        let f10 = figure10();
        assert!(f10.contains("approach 3"), "{f10}");
        let f12 = figure12();
        assert!(f12.contains("NON-CURRENT"), "{f12}");
        assert!(f12.contains("x is CURRENT"), "{f12}");
    }
}
