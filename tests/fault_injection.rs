//! Fault-injection harness for the crash-tolerant v3 archive container.
//!
//! Simulates the failure modes the format is designed to survive —
//! truncation at and around every region boundary (a crash mid-write),
//! single-bit flips inside each checksummed region (media corruption), and
//! swapped function-table entries (a hostile or scrambled index) — and
//! checks the contract: decoding either fails with a typed error or
//! `TwppArchive::recover` salvages every untouched function. Nothing ever
//! panics.

use std::collections::HashMap;

use twpp_repro::twpp::{compact, FunctionRecord, TwppArchive};
use twpp_repro::twpp_ir::{BlockId, FuncId};
use twpp_repro::twpp_tracer::{RawWpp, WppEvent};

const FRAME_HEADER_LEN: usize = 28;
const FOOTER_ENTRY_BYTES: usize = 28;

/// A WPP touching four functions with distinct path shapes, so each
/// function region in the archive carries distinguishable content.
fn sample_wpp() -> RawWpp {
    let f = FuncId::from_index;
    let b = BlockId::new;
    let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(b(1))];
    for round in 0..3u32 {
        for callee in 1..4usize {
            events.push(WppEvent::Enter(f(callee)));
            for step in 0..(callee as u32 + 2) {
                events.push(WppEvent::Block(b(10 * callee as u32 + step + round % 2)));
            }
            events.push(WppEvent::Exit);
            events.push(WppEvent::Block(b(2)));
        }
    }
    events.push(WppEvent::Exit);
    RawWpp::from_events(&events)
}

fn build_archive() -> TwppArchive {
    let compacted = compact(&sample_wpp()).expect("sample WPP compacts");
    let names: HashMap<FuncId, String> = (0..4)
        .map(|i| (FuncId::from_index(i), format!("fn{i}")))
        .collect();
    TwppArchive::from_compacted_named(&compacted, &names)
}

/// Reference records, read from the pristine archive.
fn baseline(archive: &TwppArchive) -> HashMap<FuncId, FunctionRecord> {
    archive
        .function_ids()
        .into_iter()
        .map(|func| (func, archive.read_function(func).expect("clean read")))
        .collect()
}

/// Frame layout of a clean v3 archive: `(func, frame_start, frame_end)`,
/// sorted by offset, taken from a clean `recover` report.
fn frame_spans(bytes: &[u8]) -> Vec<(FuncId, usize, usize)> {
    let (_, report) = TwppArchive::recover(bytes).expect("clean archive recovers");
    assert!(report.is_clean(), "fixture must start clean:\n{report}");
    let mut spans: Vec<(FuncId, usize, usize)> = report
        .functions
        .iter()
        .map(|v| (v.func, v.offset, v.offset + FRAME_HEADER_LEN + v.byte_len))
        .collect();
    spans.sort_by_key(|&(_, start, _)| start);
    spans
}

#[test]
fn truncation_at_every_region_boundary_is_survivable() {
    let archive = build_archive();
    let reference = baseline(&archive);
    let bytes = archive.as_bytes().to_vec();
    let spans = frame_spans(&bytes);

    // Cut at each frame boundary and one byte either side of it, plus the
    // extremes of the file.
    let mut cuts: Vec<usize> = Vec::new();
    for &(_, start, end) in &spans {
        for c in [start.saturating_sub(1), start, start + 1] {
            cuts.push(c);
        }
        for c in [end - 1, end, end + 1] {
            cuts.push(c);
        }
    }
    cuts.extend([0, 1, 4, bytes.len() - 1]);
    cuts.retain(|&c| c < bytes.len());
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        let truncated = &bytes[..cut];
        // Strict decoding must reject every truncation: the commit footer
        // is gone, so the write never "happened".
        assert!(
            TwppArchive::from_bytes(truncated.to_vec()).is_err(),
            "from_bytes accepted a truncation at byte {cut}"
        );
        // Salvage must never panic, and every frame that lies wholly
        // before the cut must come back intact.
        let Ok((salvaged, report)) = TwppArchive::recover(truncated) else {
            // Unrecoverable only when even the magic is gone.
            assert!(cut < 8, "recover gave up at cut {cut} with header intact");
            continue;
        };
        assert!(!report.is_clean(), "cut {cut} reported clean");
        assert!(!report.committed, "cut {cut} reported committed");
        for &(func, _, end) in &spans {
            if end <= cut {
                let rec = salvaged.read_function(func).unwrap_or_else(|e| {
                    panic!("cut {cut}: intact function {func:?} lost: {e}")
                });
                assert_eq!(rec, reference[&func], "cut {cut}: content drift");
            }
        }
    }
}

#[test]
fn single_bit_flips_in_each_region_are_detected_and_contained() {
    let archive = build_archive();
    let reference = baseline(&archive);
    let bytes = archive.as_bytes().to_vec();
    let spans = frame_spans(&bytes);

    for &(victim, start, end) in &spans {
        // Flip a bit in the frame header and one mid-payload.
        for pos in [start + 5, start + FRAME_HEADER_LEN + (end - start - FRAME_HEADER_LEN) / 2]
        {
            let mut dirty = bytes.clone();
            dirty[pos] ^= 0x10;
            let (salvaged, report) =
                TwppArchive::recover(&dirty).expect("flip inside a frame stays recoverable");
            assert!(!report.is_clean(), "flip at {pos} went unnoticed");
            for verdict in &report.functions {
                if verdict.func == victim {
                    assert!(
                        !verdict.status.is_ok(),
                        "flip at {pos} in {victim:?} not attributed: {report}"
                    );
                } else {
                    assert!(
                        verdict.status.is_ok(),
                        "flip at {pos} spilled onto {:?}: {report}",
                        verdict.func
                    );
                }
            }
            // Every untouched function survives with identical content.
            for (&func, expected) in &reference {
                if func == victim {
                    continue;
                }
                assert_eq!(
                    &salvaged.read_function(func).expect("survivor readable"),
                    expected,
                    "flip at {pos}: survivor {func:?} drifted"
                );
            }
        }
    }
}

#[test]
fn swapped_function_table_entries_are_rejected_then_salvaged() {
    let archive = build_archive();
    let reference = baseline(&archive);
    let mut bytes = archive.as_bytes().to_vec();
    let n = reference.len();
    assert!(n >= 2);

    // The footer: magic | n entries | 16-byte tail. Swap the first two
    // 28-byte entries in place.
    let footer_start = bytes.len() - (4 + n * FOOTER_ENTRY_BYTES + 16);
    let a = footer_start + 4;
    let b = a + FOOTER_ENTRY_BYTES;
    for i in 0..FOOTER_ENTRY_BYTES {
        bytes.swap(a + i, b + i);
    }

    // Strict decoding refuses the scrambled index outright…
    assert!(TwppArchive::from_bytes(bytes.clone()).is_err());

    // …and salvage ignores the index, rescans the frames, and recovers
    // every function with its true identity and content.
    let (salvaged, report) = TwppArchive::recover(&bytes).expect("frames are untouched");
    assert!(!report.is_clean());
    assert_eq!(report.salvaged_functions(), n, "{report}");
    for (&func, expected) in &reference {
        assert_eq!(&salvaged.read_function(func).expect("readable"), expected);
    }
    // The salvaged copy re-validates end to end.
    let (_, round2) = TwppArchive::recover(salvaged.as_bytes()).expect("rebuilt archive parses");
    assert!(round2.is_clean(), "{round2}");
}

#[test]
fn raw_trace_truncation_at_every_byte_never_panics() {
    let wpp = sample_wpp();
    let mut bytes = Vec::new();
    wpp.write_to(&mut bytes).expect("in-memory write");

    let originals: Vec<WppEvent> = wpp.iter().collect();
    for cut in 0..bytes.len() {
        // Strict reader: typed error or a stream that decodes event by
        // event — never a panic.
        let _ = RawWpp::read_from(&bytes[..cut]);
        // Salvage reader: always a prefix of the true event stream.
        if let Ok(salvage) = RawWpp::read_salvage(&bytes[..cut]) {
            let got: Vec<WppEvent> = salvage.wpp.iter().collect();
            assert!(
                got.len() <= originals.len() && got[..] == originals[..got.len()],
                "cut {cut}: salvage is not a prefix"
            );
        }
    }

    // The full stream is clean and lossless.
    let full = RawWpp::read_salvage(&bytes[..]).expect("full stream loads");
    assert!(full.is_clean());
    assert_eq!(full.wpp, wpp);
}
