//! Determinism gate for the parallel execution layer.
//!
//! The TWPP pipeline fans its per-function stages (dedup, DBB dictionary
//! building, TWPP inversion, timestamp-series compaction), archive frame
//! encoding, and recovery verification across a worker pool. These tests
//! enforce the contract that makes that safe: **every parallel path is
//! byte-identical to the sequential one**, for every thread count, on the
//! `workloads` generators' paper-shaped WPPs.

use std::collections::HashMap;

use proptest::prelude::*;

use twpp_repro::twpp::{
    archive::encode_v2_named, compact_with_stats_threads, ArchiveWriter, CompactOptions,
    TwppArchive,
};
use twpp_repro::twpp_ir::FuncId;
use twpp_repro::twpp_tracer::RawWpp;
use twpp_repro::twpp_workloads::{generate, Profile};

/// A small paper-shaped workload, deterministic in `(profile, seed)`.
fn workload_wpp(profile: Profile, seed: u64) -> RawWpp {
    let mut spec = profile.spec().scaled(0.003);
    spec.seed ^= seed;
    generate(&spec).wpp
}

fn profile_strategy() -> impl Strategy<Value = Profile> {
    prop_oneof![
        Just(Profile::Go),
        Just(Profile::Gcc),
        Just(Profile::Li),
        Just(Profile::Ijpeg),
        Just(Profile::Perl),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `compact` must produce identical output for 1..=8 worker threads,
    /// including identical archive bytes end to end.
    #[test]
    fn compact_is_thread_count_invariant(
        profile in profile_strategy(),
        seed in 0u64..1000,
    ) {
        let wpp = workload_wpp(profile, seed);
        let (seq, seq_stats) =
            compact_with_stats_threads(&wpp, CompactOptions::with_threads(1)).unwrap();
        let seq_bytes = TwppArchive::from_compacted_named_with_threads(&seq, &HashMap::new(), 1);
        prop_assert!(seq.functions.len() > 1, "workload must be multi-function");
        for threads in 2..=8usize {
            let (par, par_stats) =
                compact_with_stats_threads(&wpp, CompactOptions::with_threads(threads)).unwrap();
            prop_assert_eq!(&par, &seq, "compact diverged at {} threads", threads);
            // Size accounting is scheduling-independent too.
            prop_assert_eq!(par_stats.after_dict_bytes, seq_stats.after_dict_bytes);
            prop_assert_eq!(par_stats.ctwpp_trace_bytes, seq_stats.ctwpp_trace_bytes);
            prop_assert_eq!(&par_stats.redundancy, &seq_stats.redundancy);
            // And the archive encoded from the parallel result is
            // byte-identical.
            let par_bytes =
                TwppArchive::from_compacted_named_with_threads(&par, &HashMap::new(), threads);
            prop_assert_eq!(par_bytes.as_bytes(), seq_bytes.as_bytes());
        }
    }

    /// The parallel frame-encoding front-end of `ArchiveWriter` commits
    /// frames in deterministic function order: its sink bytes equal the
    /// one-at-a-time writer's for every thread count.
    #[test]
    fn archive_writer_parallel_encoding_is_byte_identical(
        profile in profile_strategy(),
        seed in 0u64..1000,
    ) {
        let wpp = workload_wpp(profile, seed);
        let (c, _) = compact_with_stats_threads(&wpp, CompactOptions::with_threads(1)).unwrap();
        let names: HashMap<FuncId, String> = c
            .functions
            .iter()
            .enumerate()
            .map(|(i, fb)| (fb.func, format!("fn{i}")))
            .collect();

        let mut w = ArchiveWriter::new(Vec::new(), &c.dcg, &names).unwrap();
        for fb in &c.functions {
            w.add_function(fb).unwrap();
        }
        let sequential = w.finish().unwrap();

        for threads in 1..=8usize {
            let mut w = ArchiveWriter::new(Vec::new(), &c.dcg, &names).unwrap();
            w.add_functions(&c.functions, threads).unwrap();
            let parallel = w.finish().unwrap();
            prop_assert_eq!(&parallel, &sequential, "writer diverged at {} threads", threads);
        }
    }

    /// Parallel recovery produces the same report and the same rebuilt
    /// archive as sequential recovery — on clean archives, interrupted
    /// writes (no footer, forcing the scan path), and v2 inputs.
    #[test]
    fn recovery_is_thread_count_invariant(
        profile in profile_strategy(),
        seed in 0u64..1000,
        cut_words in 1usize..8,
    ) {
        let wpp = workload_wpp(profile, seed);
        let (c, _) = compact_with_stats_threads(&wpp, CompactOptions::with_threads(1)).unwrap();
        let committed = TwppArchive::from_compacted_named_with_threads(&c, &HashMap::new(), 1);
        let v2 = encode_v2_named(&c, &HashMap::new()).unwrap();
        // An interrupted write: drop the footer and some trailing bytes so
        // salvage must scan for frames.
        let torn = &committed.as_bytes()[..committed.byte_len() - 4 * cut_words - 16];

        for input in [committed.as_bytes(), &v2, torn] {
            let (seq_archive, seq_report) =
                TwppArchive::recover_with_threads(input, 1).unwrap();
            for threads in 2..=8usize {
                let (par_archive, par_report) =
                    TwppArchive::recover_with_threads(input, threads).unwrap();
                prop_assert_eq!(&par_report, &seq_report, "report diverged at {} threads", threads);
                prop_assert_eq!(
                    par_archive.as_bytes(),
                    seq_archive.as_bytes(),
                    "rebuilt archive diverged at {} threads",
                    threads
                );
            }
        }
    }
}

/// The `TWPP_THREADS` default path also matches explicit thread counts
/// (exercised by the CI matrix running the suite under `TWPP_THREADS=1`
/// and `TWPP_THREADS=4`).
#[test]
fn default_thread_resolution_matches_explicit() {
    let wpp = workload_wpp(Profile::Li, 7);
    let (default_out, _) = compact_with_stats_threads(&wpp, CompactOptions::default()).unwrap();
    let (one, _) = compact_with_stats_threads(&wpp, CompactOptions::with_threads(1)).unwrap();
    assert_eq!(default_out, one);
}
