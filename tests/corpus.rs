//! Golden-corpus decode tests: small checked-in archives in every
//! supported container version, decoded by the *current* reader.
//!
//! The corpus pins two promises:
//!
//! * **Format stability** — the v3 encoder reproduces the checked-in
//!   clean archive byte for byte, so any format change is a deliberate,
//!   reviewed version bump rather than an accident.
//! * **Forward compatibility of `TwppArchive::recover`** — every corpus
//!   file (legacy v2, clean v3, degraded v3, truncated v3) must keep
//!   decoding through the salvage entry point in all future sessions.
//!
//! `regenerate_golden_corpus` (ignored) rewrites the files from the
//! deterministic source program; run it only alongside an intentional
//! format change:
//!
//! ```text
//! cargo test --test corpus regenerate_golden_corpus -- --ignored
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use twpp_repro::twpp::archive::encode_v2_named;
use twpp_repro::twpp::{
    compact, compact_governed, Budget, Compactor, Durability, FaultPlan, GovOptions,
    IngestOptions, Obs, TwppArchive,
};
use twpp_repro::twpp_ir::FuncId;
use twpp_repro::twpp_lang;
use twpp_repro::twpp_tracer::{run_traced, ExecLimits, WppEvent};

/// The corpus source program: two leaf functions with distinct path
/// shapes plus a loopy main, so the archive holds several function
/// regions, multiple unique traces and a non-trivial DCG.
const CORPUS_SRC: &str = "\
fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
fn g(x) { let j = 0; while (j < 3) { print(x + j); j = j + 1; } }
fn main() { let i = 0; while (i < 6) { f(i); g(i); i = i + 1; } }";

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_names(program: &twpp_repro::twpp_ir::Program) -> HashMap<FuncId, String> {
    program
        .funcs()
        .map(|(id, f)| (id, f.name().to_owned()))
        .collect()
}

/// Deterministically rebuilds all four corpus artifacts in memory.
fn build_corpus() -> Vec<(&'static str, Vec<u8>)> {
    let program = twpp_lang::compile(CORPUS_SRC).expect("corpus program compiles");
    let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).expect("corpus program runs");
    let names = corpus_names(&program);

    // Clean v3.
    let compacted = compact(&wpp).expect("corpus compacts");
    let v3 = TwppArchive::from_compacted_named_with_threads(&compacted, &names, 1);
    let v3_bytes = v3.as_bytes().to_vec();

    // Legacy v2 layout.
    let v2_bytes = encode_v2_named(&compacted, &names).expect("v2 encodes");

    // Degraded v3: function f's compaction stage panics and is isolated.
    let (f_id, _) = program.func_by_name("f").expect("f exists");
    let options = GovOptions {
        threads: Some(1),
        budget: Budget::unlimited(),
        fail_fast: false,
        faults: FaultPlan::panic_on(f_id),
        obs: Obs::noop(),
    };
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (degraded_c, stats) = compact_governed(&wpp, &options).expect("degraded run completes");
    std::panic::set_hook(prev);
    assert_eq!(stats.degraded.len(), 1, "exactly f degrades");
    let degraded = TwppArchive::from_compacted_governed(
        &degraded_c,
        &names,
        1,
        &stats.degraded.failed,
    );
    let degraded_bytes = degraded.as_bytes().to_vec();

    // Truncated v3: the clean archive with its tail torn off mid-data,
    // as an interrupted write would leave it. Salvage must still run.
    let cut = v3_bytes.len() * 2 / 3;
    let truncated_bytes = v3_bytes[..cut].to_vec();

    vec![
        ("small-v3.twpa", v3_bytes),
        ("small-v2.twpa", v2_bytes),
        ("degraded-v3.twpa", degraded_bytes),
        ("truncated-v3.twpa", truncated_bytes),
    ]
}

fn read_corpus_file(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `cargo test --test corpus regenerate_golden_corpus -- --ignored` \
             to (re)create the corpus",
            path.display()
        )
    })
}

/// The corpus event stream: the traced run of [`CORPUS_SRC`].
fn corpus_events() -> Vec<WppEvent> {
    let program = twpp_lang::compile(CORPUS_SRC).expect("corpus program compiles");
    let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).expect("corpus program runs");
    wpp.events()
}

/// Deterministically builds the `segdir-v1` fixture into `dir`: a
/// mid-flight compactor directory as a killed process leaves it — a few
/// sealed segments, a WAL tail of acknowledged-but-unsealed events, and
/// a torn half-record at the WAL's end (an append the crash interrupted).
/// Returns the full stream and the number of durable (acknowledged)
/// events the directory holds.
fn build_segdir(dir: &Path) -> (Vec<WppEvent>, u64) {
    let _ = std::fs::remove_dir_all(dir);
    let events = corpus_events();
    let opts = IngestOptions {
        seal_bytes: 96,
        durability: Durability::None,
        threads: Some(1),
        ..IngestOptions::default()
    };
    let mut compactor = Compactor::create(dir, opts).expect("create segdir");
    let mut cut = events.len() * 2 / 3;
    for piece in events[..cut].chunks(19) {
        compactor.feed(piece).expect("feed segdir");
    }
    if compactor.window_events() == 0 {
        // The cut landed exactly on a seal boundary; the fixture wants a
        // non-empty WAL tail, so push a few more events past it.
        let extra = 5.min(events.len() - cut);
        compactor.feed(&events[cut..cut + extra]).expect("feed tail");
        cut += extra;
    }
    assert!(compactor.segment_count() >= 2, "fixture needs sealed segments");
    assert!(compactor.window_events() > 0, "fixture needs a WAL tail");
    let durable = compactor.accepted_events();
    assert_eq!(durable, cut as u64);
    drop(compactor); // vanish without sealing, like a kill would
    // The interrupted append: encode the next batch as a real WAL record
    // but let only part of it reach the disk.
    let next = &events[cut..(cut + 9).min(events.len())];
    let mut record = Vec::new();
    twpp_repro::twpp::ingest::encode_record(durable, next, &mut record);
    let torn = &record[..record.len() * 2 / 3];
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("fixture wal");
    bytes.extend_from_slice(torn);
    std::fs::write(&wal, bytes).expect("append torn record");
    (events, durable)
}

/// Rewrites the corpus from source. Ignored: run only on deliberate
/// format changes, and review the resulting diff.
#[test]
#[ignore = "rewrites the golden corpus; run on intentional format changes only"]
fn regenerate_golden_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, bytes) in build_corpus() {
        std::fs::write(dir.join(name), bytes).expect("write corpus file");
    }
    build_segdir(&dir.join("segdir-v1"));
}

#[test]
fn v3_encoder_is_byte_stable_against_the_corpus() {
    let fresh: Vec<(&str, Vec<u8>)> = build_corpus();
    for (name, bytes) in &fresh {
        if *name == "truncated-v3.twpa" {
            continue; // derived, checked via the clean file
        }
        let golden = read_corpus_file(name);
        assert_eq!(
            &golden, bytes,
            "{name}: encoder output drifted from the golden corpus; if the \
             format change is intentional, bump the version and regenerate"
        );
    }
}

#[test]
fn clean_v3_corpus_recovers_clean_and_round_trips() {
    let bytes = read_corpus_file("small-v3.twpa");
    let (archive, report) = TwppArchive::recover(&bytes).expect("recover accepts clean v3");
    assert!(report.is_clean(), "{report}");
    assert_eq!(archive.version(), 3);
    assert_eq!(archive.as_bytes(), &bytes[..], "clean recovery is identity");
    // Semantic content: three functions, f with 6 calls over 2 paths.
    assert_eq!(archive.function_ids().len(), 3);
    let f = archive.function_by_name("f").expect("names embedded");
    let record = archive.read_function(f).expect("f readable");
    assert_eq!(record.call_count, 6);
    assert_eq!(record.traces.len(), 2);
    let compacted = archive.to_compacted().expect("archive decodes");
    assert_eq!(compacted.functions.len(), 3);
}

#[test]
fn legacy_v2_corpus_still_decodes_through_recover() {
    let v2 = read_corpus_file("small-v2.twpa");
    let (archive, report) = TwppArchive::recover(&v2).expect("recover accepts v2");
    // v2 has no checksums: salvage decodes each region and keeps what
    // parses — all of it, for an intact file.
    assert_eq!(report.lost_functions(), 0, "{report}");
    assert_eq!(report.salvaged_functions(), 3);
    let f = archive.function_by_name("f").expect("v2 names survive");
    let record = archive.read_function(f).expect("f readable from v2");
    assert_eq!(record.call_count, 6);
    assert_eq!(record.traces.len(), 2);

    // The salvaged archive is a committed v3 re-encode whose content
    // matches the clean v3 corpus function for function.
    let v3 = read_corpus_file("small-v3.twpa");
    let (clean, _) = TwppArchive::recover(&v3).expect("clean v3");
    for func in clean.function_ids() {
        let a = archive.read_function(func).expect("v2 side");
        let b = clean.read_function(func).expect("v3 side");
        assert_eq!(a.call_count, b.call_count, "{func}");
        assert_eq!(
            a.try_expanded_traces().expect("v2 traces expand"),
            b.try_expanded_traces().expect("v3 traces expand"),
            "{func}"
        );
    }
}

#[test]
fn degraded_v3_corpus_reports_degradation_not_damage() {
    let bytes = read_corpus_file("degraded-v3.twpa");
    let (archive, report) = TwppArchive::recover(&bytes).expect("recover accepts degraded");
    assert!(
        report.is_degraded_only(),
        "degraded archive must verify as intact-but-degraded: {report}"
    );
    assert_eq!(report.degraded_functions().len(), 1);
    assert!(archive.is_degraded());
    // The surviving functions still answer queries.
    let g = archive.function_by_name("g").expect("g survives");
    let record = archive.read_function(g).expect("g readable");
    assert_eq!(record.call_count, 6);
}

#[test]
fn truncated_v3_corpus_salvages_a_usable_subset() {
    let bytes = read_corpus_file("truncated-v3.twpa");
    let (archive, report) =
        TwppArchive::recover(&bytes).expect("recover accepts a torn write");
    assert!(!report.is_clean(), "a torn archive must not verify clean");
    // Whatever was salvaged re-encodes as a clean v3 archive.
    let salvaged = archive.as_bytes().to_vec();
    let (_, second) = TwppArchive::recover(&salvaged).expect("salvage output recovers");
    assert!(second.is_clean(), "salvage output must be clean: {second}");
    assert_eq!(
        report.salvaged_functions(),
        archive.function_ids().len(),
        "report and archive agree on the salvage count"
    );
}

/// Sorted `(file name, bytes)` pairs of a directory's regular files.
fn dir_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            panic!(
                "{}: {e}\nrun `cargo test --test corpus regenerate_golden_corpus -- --ignored` \
                 to (re)create the corpus",
                dir.display()
            )
        })
        .map(|entry| {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("corpus file readable");
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn segdir_corpus_is_byte_stable() {
    let fresh_dir = std::env::temp_dir().join(format!("twpp-segdir-stability-{}", std::process::id()));
    build_segdir(&fresh_dir);
    let fresh = dir_files(&fresh_dir);
    let golden = dir_files(&corpus_dir().join("segdir-v1"));
    let names = |fs: &[(String, Vec<u8>)]| fs.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert_eq!(names(&golden), names(&fresh), "segdir file set drifted");
    for ((name, want), (_, got)) in golden.iter().zip(&fresh) {
        assert_eq!(
            want, got,
            "segdir-v1/{name}: bytes drifted from the golden fixture; if the \
             WAL/manifest/archive format change is intentional, bump the \
             version and regenerate"
        );
    }
    std::fs::remove_dir_all(&fresh_dir).ok();
}

/// The forward-compatibility promise for ingest state: every future
/// version must be able to pick up this exact on-disk directory — sealed
/// segments, WAL tail, torn trailing record — resume it, and finish to
/// the same archive a batch compaction of the whole stream produces.
#[test]
fn segdir_corpus_resumes_and_finishes_byte_identically() {
    // Resume mutates its directory (truncates the torn tail, seals,
    // merges), so work on a copy of the golden fixture.
    let golden = corpus_dir().join("segdir-v1");
    let work = std::env::temp_dir().join(format!("twpp-segdir-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create work dir");
    for (name, bytes) in dir_files(&golden) {
        std::fs::write(work.join(name), bytes).expect("copy fixture file");
    }

    let events = corpus_events();
    let opts = IngestOptions {
        seal_bytes: 96,
        durability: Durability::None,
        threads: Some(1),
        ..IngestOptions::default()
    };
    let (mut compactor, report) = Compactor::resume(&work, opts).expect("fixture must resume");
    assert!(report.wal_torn, "the fixture's torn record must be detected");
    assert!(report.segments >= 2);
    assert!(report.wal_events > 0, "the WAL tail must replay");
    let durable = compactor.accepted_events();
    assert_eq!(durable, report.sealed_events + report.wal_events);
    for piece in events[durable as usize..].chunks(23) {
        compactor.feed(piece).expect("refeed after resume");
    }
    let finish = compactor.finish().expect("finish resumed fixture");

    let wpp = twpp_repro::twpp_tracer::RawWpp::from_events(&events);
    let compacted = compact(&wpp).expect("batch compaction");
    let batch = TwppArchive::from_compacted_named_with_threads(&compacted, &HashMap::new(), 1);
    assert_eq!(
        std::fs::read(&finish.path).expect("merged archive"),
        batch.as_bytes(),
        "resumed fixture must converge to the batch archive"
    );
    std::fs::remove_dir_all(&work).ok();
}
