//! Integration tests of the profile-limited data flow analyses on the
//! paper's example programs (Figures 9-12) and on randomized executions.

use proptest::prelude::*;

use twpp_repro::twpp::TsSet;
use twpp_repro::twpp_dataflow::dyncfg::DynCfg;
use twpp_repro::twpp_dataflow::redundancy::{load_redundancy, loads_in};
use twpp_repro::twpp_dataflow::slicing::{Approach, Criterion, Slicer};
use twpp_repro::twpp_dataflow::{solve_backward, solve_by_replay, AvailableLoad};
use twpp_repro::twpp_ir::{BlockId, Operand, Stmt, Var};
use twpp_repro::twpp_lang::{compile_with_options, programs, LowerOptions};
use twpp_repro::twpp_tracer::{run_traced, ExecLimits};

fn figure_program(src: &str, input: &[i64]) -> (twpp_repro::twpp_ir::Program, Vec<BlockId>) {
    let program = compile_with_options(
        src,
        LowerOptions {
            stmt_per_block: true,
        },
    )
    .expect("program compiles");
    let (_, wpp) = run_traced(&program, input, ExecLimits::default()).expect("program runs");
    let trace = wpp.scan_function(program.main()).remove(0);
    (program, trace)
}

#[test]
fn figure9_redundancy_degrees() {
    let (program, trace) = figure_program(programs::FIGURE9, &[]);
    let func = program.func(program.main());
    let dcfg = DynCfg::from_block_sequence(&trace);
    let loads = loads_in(&dcfg, func);
    assert_eq!(loads.len(), 2);
    let mut degrees: Vec<(u64, f64)> = loads
        .iter()
        .map(|&(n, _)| {
            let r = load_redundancy(&dcfg, func, n).unwrap();
            (r.total, r.degree_percent())
        })
        .collect();
    degrees.sort_by_key(|&(total, _)| total);
    // The 60-execution load is 100% redundant (the paper's headline);
    // the 100-execution header load misses only its first execution.
    assert_eq!(degrees[0].0, 60);
    assert!((degrees[0].1 - 100.0).abs() < 1e-9);
    assert_eq!(degrees[1].0, 100);
    assert!((degrees[1].1 - 99.0).abs() < 1e-9);
}

/// Identifies figure-10 blocks by their source statement so assertions
/// survive block renumbering: returns the block that assigns via a call to
/// the given function.
fn call_block(
    program: &twpp_repro::twpp_ir::Program,
    callee_name: &str,
) -> BlockId {
    let func = program.func(program.main());
    let (callee, _) = program.func_by_name(callee_name).unwrap();
    func.blocks()
        .find(|(_, b)| b.stmts().iter().any(|s| s.callee() == Some(callee)))
        .map(|(id, _)| id)
        .expect("call block exists")
}

#[test]
fn figure10_slices_reproduce_the_paper() {
    let (program, trace) = figure_program(programs::FIGURE10, programs::FIGURE10_INPUT);
    let func = program.func(program.main());
    let slicer = Slicer::new(func, &trace);

    let breakpoint = *trace.last().unwrap();
    let z = func
        .blocks()
        .flat_map(|(_, b)| b.stmts())
        .filter_map(|s| match s {
            Stmt::Print(Operand::Var(v)) => Some(*v),
            _ => None,
        })
        .last()
        .unwrap();
    let criterion = Criterion {
        block: breakpoint,
        timestamp: slicer.dyn_cfg().len(),
        var: z,
    };

    let s1 = slicer.slice(criterion, Approach::ExecutedNodes);
    let s2 = slicer.slice(criterion, Approach::ExecutedEdges);
    let s3 = slicer.slice(criterion, Approach::PreciseInstances);

    // The paper's precision ordering.
    assert!(s3.is_subset(&s2));
    assert!(s2.is_subset(&s1));
    assert!(s3.len() < s1.len());

    // Paper: although f2 executed (statement 8), the value of Z at the
    // breakpoint flows from the last iteration (X=-2 < 0 takes f1), so the
    // precise slice excludes the f2 branch but keeps f1's.
    let f1_block = call_block(&program, "f1");
    let f2_block = call_block(&program, "f2");
    assert!(s3.contains(&f1_block), "precise slice keeps the f1 branch");
    assert!(!s3.contains(&f2_block), "precise slice drops the f2 branch");
    // Approach 1 (executed nodes) keeps both executed branches.
    assert!(s1.contains(&f2_block));
}

#[test]
fn queries_match_replay_oracle_on_random_paths() {
    // A randomized variant of the figure-9 CFG exercises the propagation
    // engine against the naive oracle.
    let (program, _) = figure_program(programs::FIGURE9, &[]);
    let func = program.func(program.main());

    proptest!(ProptestConfig::with_cases(24), |(choices in prop::collection::vec(any::<bool>(), 1..60))| {
        // Rebuild a synthetic trace following the real CFG of figure 9 by
        // re-running with a controlled iteration pattern is complex;
        // instead replay the actual structure: the real trace restricted
        // to a random prefix still is a valid block sequence.
        let (_, full) = figure_program(programs::FIGURE9, &[]);
        let cut = 1 + choices.len() * full.len() / 64;
        let prefix = &full[..cut.min(full.len())];
        let dcfg = DynCfg::from_block_sequence(prefix);
        let fact = AvailableLoad { addr: Operand::Const(100) };
        for n in 0..dcfg.node_count() {
            let ts = dcfg.node(n).ts.clone();
            let fast = solve_backward(&dcfg, func, &fact, n, &ts);
            let slow = solve_by_replay(&dcfg, func, &fact, n, &ts);
            prop_assert_eq!(fast, slow);
        }
    });
}

#[test]
fn partial_queries_subset_full_queries() {
    let (program, trace) = figure_program(programs::FIGURE9, &[]);
    let func = program.func(program.main());
    let dcfg = DynCfg::from_block_sequence(&trace);
    let fact = AvailableLoad {
        addr: Operand::Const(100),
    };
    let (node, _) = loads_in(&dcfg, func)[0];
    let full_ts = dcfg.node(node).ts.clone();
    let full = solve_backward(&dcfg, func, &fact, node, &full_ts);
    // Query only the first three timestamps.
    let subset: Vec<u32> = full_ts.iter().take(3).collect();
    let part = solve_backward(&dcfg, func, &fact, node, &TsSet::from_sorted(&subset));
    for t in part.holds.iter() {
        assert!(full.holds.contains(t));
    }
    for t in part.not_holds.iter() {
        assert!(full.not_holds.contains(t));
    }
    assert_eq!(part.holds.len() + part.not_holds.len(), 3);
}

#[test]
fn partial_wpp_up_to_a_breakpoint_supports_slicing() {
    // The paper's debugging setup: stop mid-run, analyze the partial WPP.
    use twpp_repro::twpp_tracer::run_to_breakpoint;
    let program = compile_with_options(
        programs::FIGURE10,
        LowerOptions {
            stmt_per_block: true,
        },
    )
    .unwrap();
    let main_id = program.main();
    let func = program.func(main_id);
    let print_block = func
        .blocks()
        .filter(|(_, b)| {
            b.stmts()
                .iter()
                .any(|s| matches!(s, Stmt::Print(Operand::Var(_))))
        })
        .map(|(id, _)| id)
        .next()
        .unwrap();
    let (execution, wpp, hit) = run_to_breakpoint(
        &program,
        programs::FIGURE10_INPUT,
        ExecLimits::default(),
        main_id,
        print_block,
        2,
    )
    .unwrap();
    assert!(hit);
    // First iteration's z printed, second pending.
    assert_eq!(execution.output, vec![5]);
    // The truncated stream still partitions and compacts losslessly.
    let part = twpp_repro::twpp::partition(&wpp).unwrap();
    assert_eq!(part.reconstruct().event_count(), wpp.event_count() + {
        // reconstruction closes the open activations explicitly
        let open = wpp
            .iter()
            .fold(0i64, |d, e| match e {
                twpp_repro::twpp_tracer::WppEvent::Enter(_) => d + 1,
                twpp_repro::twpp_tracer::WppEvent::Exit => d - 1,
                _ => d,
            });
        open as usize
    });
    // And the slice at the breakpoint only sees the first two iterations.
    let trace = wpp.scan_function(main_id).remove(0);
    let slicer = Slicer::new(func, &trace);
    let t = slicer
        .dyn_cfg()
        .node_by_head(print_block)
        .and_then(|i| slicer.dyn_cfg().node(i).ts.last())
        .unwrap();
    let z = func
        .block(print_block)
        .stmts()
        .iter()
        .find_map(|s| match s {
            Stmt::Print(Operand::Var(v)) => Some(*v),
            _ => None,
        })
        .unwrap();
    let slice = slicer.slice(
        Criterion {
            block: print_block,
            timestamp: t,
            var: z,
        },
        Approach::PreciseInstances,
    );
    assert!(!slice.is_empty());
    assert!(slice.contains(&print_block));
}

#[test]
fn slicer_handles_larger_realistic_program() {
    let (program, trace) = figure_program(programs::KITCHEN_SINK, &[]);
    let func = program.func(program.main());
    let slicer = Slicer::new(func, &trace);
    // Slice the final print's variable at the last timestamp.
    let last = *trace.last().unwrap();
    let var = func
        .blocks()
        .flat_map(|(_, b)| b.stmts())
        .filter_map(|s| match s {
            Stmt::Print(Operand::Var(v)) => Some(*v),
            _ => None,
        })
        .last()
        .unwrap_or(Var::from_index(0));
    let criterion = Criterion {
        block: last,
        timestamp: slicer.dyn_cfg().len(),
        var,
    };
    let s1 = slicer.slice(criterion, Approach::ExecutedNodes);
    let s2 = slicer.slice(criterion, Approach::ExecutedEdges);
    let s3 = slicer.slice(criterion, Approach::PreciseInstances);
    assert!(!s3.is_empty());
    assert!(s3.is_subset(&s2) && s2.is_subset(&s1));
}
