//! Integration tests of the resource-governance layer: budgets and
//! cancellation across the compaction pipeline, panic-isolated graceful
//! degradation into the archive footer, and the governed query engine's
//! partial-result guarantees.

use std::collections::HashMap;

use proptest::prelude::*;

use twpp_repro::twpp::{
    compact_governed, compact_with_stats_threads, Budget, CancelToken, CompactOptions, FaultPlan,
    GovOptions, Limits, PipelineError, StopReason, TwppArchive,
};
use twpp_repro::twpp_dataflow::dyncfg::DynCfg;
use twpp_repro::twpp_dataflow::redundancy::loads_in;
use twpp_repro::twpp_dataflow::{
    solve_backward, solve_backward_governed, AvailableLoad, QueryOutcome,
};
use twpp_repro::twpp_ir::{FuncId, Operand, Program};
use twpp_repro::twpp_lang::{compile_with_options, programs, LowerOptions};
use twpp_repro::twpp_tracer::{run_traced, ExecLimits, RawWpp};

/// Silences the default panic hook around `f` so deliberately injected
/// panics don't spam test output, restoring it afterwards.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

fn traced(src: &str, input: &[i64]) -> (Program, RawWpp) {
    let program = compile_with_options(src, LowerOptions { stmt_per_block: true })
        .expect("program compiles");
    let (_, wpp) = run_traced(&program, input, ExecLimits::default()).expect("program runs");
    (program, wpp)
}

const MULTI_FN: &str = "fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
     fn g(x) { print(x * 2); }
     fn h(x) { let i = 0; while (i < x) { print(i); i = i + 1; } }
     fn main() { let i = 0; while (i < 9) { f(i); g(i); h(i % 3); i = i + 1; } }";

// ---------------------------------------------------------------------------
// Degradation: an injected panic loses exactly one function, nothing else.
// ---------------------------------------------------------------------------

#[test]
fn injected_panic_yields_degraded_but_valid_archive() {
    let (_, wpp) = traced(MULTI_FN, &[]);
    let baseline = compact_with_stats_threads(&wpp, CompactOptions { threads: Some(2) })
        .expect("baseline compaction")
        .0;
    let victim = FuncId::from_u32(1);

    for threads in [1usize, 4] {
        let options = GovOptions {
            threads: Some(threads),
            budget: Budget::unlimited(),
            fail_fast: false,
            faults: FaultPlan::panic_on(victim),
            obs: twpp::Obs::noop(),
        };
        let (compacted, stats) =
            quiet_panics(|| compact_governed(&wpp, &options)).expect("degraded run completes");

        // Exactly the victim failed, with the injected message preserved.
        assert_eq!(stats.degraded.len(), 1);
        let failed = &stats.degraded.failed[0];
        assert_eq!(failed.func, victim);
        assert!(failed.reason.contains("injected fault"), "{}", failed.reason);

        // The archive carries every surviving function, byte-for-byte
        // equal to the baseline's view of those functions.
        let archive = TwppArchive::from_compacted_governed(
            &compacted,
            &HashMap::new(),
            threads,
            &stats.degraded.failed,
        );
        assert!(archive.is_degraded());
        assert_eq!(archive.failed_functions().len(), 1);
        assert_eq!(archive.failed_functions()[0].0, victim);
        for func in archive.function_ids() {
            let record = archive.read_function(func);
            if func == victim {
                assert!(record.is_err(), "degraded function must not read back");
                continue;
            }
            let record = record.expect("surviving function reads back");
            let expected = baseline.function(func).expect("baseline has the function");
            assert_eq!(record.traces, expected.traces);
            assert_eq!(record.call_count, expected.call_count);
        }

        // Recovery classifies it as intact-but-degraded: every stored
        // region verifies; only the reported function is missing.
        let (recovered, report) = TwppArchive::recover(archive.as_bytes()).expect("recover runs");
        assert!(!report.is_clean());
        assert!(report.is_degraded_only(), "{report}");
        assert_eq!(report.degraded_functions(), vec![victim]);
        assert_eq!(
            recovered.function_ids().len(),
            archive.function_ids().len()
        );
    }
}

#[test]
fn fail_fast_propagates_the_injected_panic() {
    let (_, wpp) = traced(MULTI_FN, &[]);
    let options = GovOptions {
        threads: Some(1),
        budget: Budget::unlimited(),
        fail_fast: true,
        faults: FaultPlan::panic_on(FuncId::from_u32(0)),
        obs: twpp::Obs::noop(),
    };
    let outcome = quiet_panics(|| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compact_governed(&wpp, &options)
        }))
    });
    assert!(outcome.is_err(), "fail-fast must propagate the panic");
}

// ---------------------------------------------------------------------------
// Budgets: deadlines and cancellation are hard stops with no output.
// ---------------------------------------------------------------------------

#[test]
fn exhausted_budget_stops_compaction_with_no_output() {
    let (_, wpp) = traced(MULTI_FN, &[]);

    // Step budget smaller than the event count: stopped at stage 1.
    let options = GovOptions {
        threads: Some(2),
        budget: Limits::new().max_steps(1).start(),
        fail_fast: true,
        faults: FaultPlan::none(),
        obs: twpp::Obs::noop(),
    };
    match compact_governed(&wpp, &options) {
        Err(PipelineError::Budget(StopReason::StepLimit)) => {}
        other => panic!("expected StepLimit stop, got {other:?}"),
    }

    // Pre-cancelled token: stopped before any work at all.
    let cancel = CancelToken::new();
    cancel.cancel();
    let options = GovOptions {
        threads: Some(2),
        budget: Limits::new().start_with_cancel(cancel),
        fail_fast: true,
        faults: FaultPlan::none(),
        obs: twpp::Obs::noop(),
    };
    match compact_governed(&wpp, &options) {
        Err(PipelineError::Budget(StopReason::Cancelled)) => {}
        other => panic!("expected Cancelled stop, got {other:?}"),
    }

    // An already-expired deadline behaves the same.
    let options = GovOptions {
        threads: Some(2),
        budget: Limits::new().deadline_ms(0).start(),
        fail_fast: true,
        faults: FaultPlan::none(),
        obs: twpp::Obs::noop(),
    };
    std::thread::sleep(std::time::Duration::from_millis(2));
    match compact_governed(&wpp, &options) {
        Err(PipelineError::Budget(StopReason::Deadline)) => {}
        other => panic!("expected Deadline stop, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Determinism: governance is invisible when nothing goes wrong.
// ---------------------------------------------------------------------------

#[test]
fn governed_output_is_byte_identical_without_faults() {
    let (_, wpp) = traced(MULTI_FN, &[]);
    let (legacy, _) = compact_with_stats_threads(&wpp, CompactOptions { threads: Some(1) })
        .expect("legacy compaction");
    let legacy_bytes = TwppArchive::from_compacted(&legacy).as_bytes().to_vec();

    for threads in 1..=8usize {
        for fail_fast in [true, false] {
            let options = GovOptions {
                threads: Some(threads),
                budget: Limits::new().deadline_ms(600_000).start(),
                fail_fast,
                faults: FaultPlan::none(),
                obs: twpp::Obs::noop(),
            };
            let (compacted, stats) =
                compact_governed(&wpp, &options).expect("governed compaction");
            assert!(stats.degraded.is_empty());
            let bytes = TwppArchive::from_compacted_governed(
                &compacted,
                &HashMap::new(),
                threads,
                &stats.degraded.failed,
            )
            .as_bytes()
            .to_vec();
            assert_eq!(
                bytes, legacy_bytes,
                "threads={threads} fail_fast={fail_fast} diverged from legacy output"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Governed queries: Complete ≡ ungoverned; Partial coverage is monotone.
// ---------------------------------------------------------------------------

fn figure9_query_setup() -> (Program, DynCfg, usize) {
    let program = compile_with_options(
        programs::FIGURE9,
        LowerOptions { stmt_per_block: true },
    )
    .expect("figure 9 compiles");
    let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).expect("figure 9 runs");
    let trace = wpp.scan_function(program.main()).remove(0);
    let dcfg = DynCfg::from_block_sequence(&trace);
    let func = program.main();
    let (node, _) = loads_in(&dcfg, program.func(func))[0];
    (program, dcfg, node)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An unlimited budget returns `Complete` with a result bit-identical
    /// to the pre-governance solver, for arbitrary timestamp subsets.
    #[test]
    fn governed_complete_is_identical_to_ungoverned(keep in prop::collection::vec(any::<bool>(), 1..40)) {
        let (program, dcfg, node) = figure9_query_setup();
        let func = program.func(program.main());
        let fact = AvailableLoad { addr: Operand::Const(100) };
        let all: Vec<u32> = dcfg.node(node).ts.iter().collect();
        let subset: Vec<u32> = all
            .iter()
            .zip(keep.iter().cycle())
            .filter_map(|(&t, &k)| k.then_some(t))
            .collect();
        let ts = twpp_repro::twpp::TsSet::from_sorted(&subset);
        let plain = solve_backward(&dcfg, func, &fact, node, &ts);
        match solve_backward_governed(&dcfg, func, &fact, node, &ts, &Budget::unlimited()) {
            QueryOutcome::Complete(governed) => prop_assert_eq!(governed, plain),
            other => prop_assert!(false, "unlimited budget did not complete: {:?}", other),
        }
    }

    /// Coverage never decreases as the step budget grows, and a large
    /// enough budget always reaches `Complete` with coverage 1.
    #[test]
    fn partial_coverage_is_monotone_in_step_budget(caps in prop::collection::vec(1u64..200, 1..8)) {
        let (program, dcfg, node) = figure9_query_setup();
        let func = program.func(program.main());
        let fact = AvailableLoad { addr: Operand::Const(100) };
        let ts = dcfg.node(node).ts.clone();
        let full = solve_backward(&dcfg, func, &fact, node, &ts);

        let mut caps = caps;
        caps.sort_unstable();
        caps.push(1_000_000);
        let mut last_coverage = -1.0f64;
        for cap in caps {
            let outcome = solve_backward_governed(
                &dcfg,
                func,
                &fact,
                node,
                &ts,
                &Limits::new().max_steps(cap).start(),
            );
            let coverage = outcome.coverage();
            prop_assert!(
                coverage >= last_coverage,
                "coverage dropped from {} to {} at cap {}",
                last_coverage,
                coverage,
                cap
            );
            last_coverage = coverage;
            // Partial answers are always sound: whatever is resolved
            // agrees with the full solve.
            let result = outcome.result();
            for t in result.holds.iter() {
                prop_assert!(full.holds.contains(t));
            }
            for t in result.not_holds.iter() {
                prop_assert!(full.not_holds.contains(t));
            }
        }
        prop_assert!((last_coverage - 1.0).abs() < 1e-12, "final cap must complete");
    }
}

#[test]
fn deadline_stops_governed_query() {
    let (program, dcfg, node) = figure9_query_setup();
    let func = program.func(program.main());
    let fact = AvailableLoad {
        addr: Operand::Const(100),
    };
    let ts = dcfg.node(node).ts.clone();
    let budget = Limits::new().deadline_ms(0).start();
    std::thread::sleep(std::time::Duration::from_millis(2));
    match solve_backward_governed(&dcfg, func, &fact, node, &ts, &budget) {
        QueryOutcome::Partial {
            reason: StopReason::Deadline,
            visited,
            ..
        } => assert_eq!(visited, 0),
        other => panic!("expected a Deadline stop, got {other:?}"),
    }
}
