//! Decoder robustness: every binary decoder in the workspace must reject
//! arbitrary or corrupted input with an error — never panic. These are
//! fuzz-style property tests over random byte/word soup and over random
//! corruptions of valid encodings.

use proptest::prelude::*;

use twpp_repro::twpp::{compact, lzw, Dcg, TimestampedTrace, TsSet, TwppArchive};
use twpp_repro::twpp_sequitur;
use twpp_repro::twpp_tracer::RawWpp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn raw_wpp_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = RawWpp::read_from(&bytes[..]);
    }

    #[test]
    fn archive_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = TwppArchive::from_bytes(bytes);
    }

    #[test]
    fn lzw_decompressor_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = lzw::decompress(&bytes);
    }

    #[test]
    fn tsset_wire_decoder_never_panics(words in prop::collection::vec(any::<i32>(), 0..64)) {
        let _ = TsSet::from_wire(&words);
    }

    #[test]
    fn dcg_decoder_never_panics(words in prop::collection::vec(any::<u32>(), 0..64)) {
        let _ = Dcg::from_words(&words);
    }

    #[test]
    fn timestamped_trace_decoder_never_panics(
        words in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let mut pos = 0;
        let _ = TimestampedTrace::from_words(&words, &mut pos);
    }

    #[test]
    fn sequitur_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = twpp_sequitur::decode(&bytes);
    }

    #[test]
    fn corrupted_archives_error_not_panic(
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        // Build a small valid archive, then flip random bytes.
        let wpp = sample_wpp();
        let compacted = compact(&wpp).unwrap();
        let archive = TwppArchive::from_compacted(&compacted);
        let mut bytes = archive.as_bytes().to_vec();
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= val;
        }
        // Either parses (and then every function read must also not
        // panic) or errors out.
        if let Ok(parsed) = TwppArchive::from_bytes(bytes) {
            for func in parsed.function_ids() {
                let _ = parsed.read_function(func);
            }
            let _ = parsed.read_dcg();
        }
    }

    #[test]
    fn archive_recover_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Salvage over arbitrary byte soup: typed error or a report, never
        // a panic, never unbounded allocation.
        let _ = TwppArchive::recover(&bytes);
    }

    #[test]
    fn raw_salvage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = RawWpp::read_salvage(&bytes[..]);
    }

    #[test]
    fn recover_output_always_revalidates(
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        // Whatever corruption hits a valid archive, recovery (the library
        // half of `twpp fsck --repair`) either refuses or emits an archive
        // that is itself clean — repairs converge in one pass.
        let wpp = sample_wpp();
        let compacted = compact(&wpp).unwrap();
        let archive = TwppArchive::from_compacted(&compacted);
        let mut bytes = archive.as_bytes().to_vec();
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= val;
        }
        if let Ok((salvaged, _)) = TwppArchive::recover(&bytes) {
            let (_, report) = TwppArchive::recover(salvaged.as_bytes())
                .expect("rebuilt archive must parse");
            prop_assert!(report.is_clean(), "repair did not converge:\n{report}");
        }
    }

    #[test]
    fn corrupted_v2_archives_error_not_panic(
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 0..8),
    ) {
        // Legacy v2 archives (no checksums) keep working, and corrupted
        // ones still never panic the strict or salvage decoders.
        let wpp = sample_wpp();
        let compacted = compact(&wpp).unwrap();
        let names: std::collections::HashMap<_, _> = [
            (twpp_repro::twpp_ir::FuncId::from_index(0), "main".to_owned()),
            (twpp_repro::twpp_ir::FuncId::from_index(1), "f".to_owned()),
        ]
        .into_iter()
        .collect();
        let mut bytes = twpp_repro::twpp::archive::encode_v2_named(&compacted, &names).unwrap();
        let pristine = flips.is_empty();
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= val;
        }
        if let Ok(parsed) = TwppArchive::from_bytes(bytes.clone()) {
            for func in parsed.function_ids() {
                let _ = parsed.read_function(func);
            }
            let _ = parsed.read_dcg();
        } else {
            prop_assert!(!pristine, "clean v2 archive must parse");
        }
        let _ = TwppArchive::recover(&bytes);
    }

    #[test]
    fn corrupted_wpp_files_error_not_panic(
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        let wpp = sample_wpp();
        let mut bytes = Vec::new();
        wpp.write_to(&mut bytes).unwrap();
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= val;
        }
        if let Ok(parsed) = RawWpp::read_from(&bytes[..]) {
            // Scanning a possibly-garbage (but decodable) stream must not
            // panic either.
            let _ = parsed.scan_function(twpp_repro::twpp_ir::FuncId::from_index(0));
            let _ = twpp_repro::twpp::partition(&parsed);
        }
    }
}

fn sample_wpp() -> RawWpp {
    use twpp_repro::twpp_ir::{BlockId, FuncId};
    use twpp_repro::twpp_tracer::WppEvent;
    let f = |i| FuncId::from_index(i);
    let b = |i| BlockId::new(i);
    let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(b(1))];
    for t in [&[1u32, 2, 4][..], &[1, 3, 4], &[1, 2, 4]] {
        events.push(WppEvent::Enter(f(1)));
        for &x in t {
            events.push(WppEvent::Block(b(x)));
        }
        events.push(WppEvent::Exit);
    }
    events.push(WppEvent::Exit);
    RawWpp::from_events(&events)
}
