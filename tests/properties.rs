//! Property-based tests of the core invariants, with `proptest`.

use proptest::prelude::*;

use twpp_repro::twpp::{
    compact_trace, compact_with_stats, lzw, partition, PathTrace, TimestampedTrace, TsSet,
    TsSetError, TwppArchive,
};
use twpp_repro::twpp_ir::{BlockId, FuncId};
use twpp_repro::twpp_sequitur::Grammar;
use twpp_repro::twpp_tracer::{RawWpp, WppEvent};

/// Strategy: a structurally valid WPP event stream (balanced enters/exits
/// with a single root and at least one block per activation).
fn wpp_strategy(max_events: usize) -> impl Strategy<Value = RawWpp> {
    // A recursive activation tree: (func, blocks-with-nested-calls).
    #[derive(Clone, Debug)]
    enum Item {
        Block(u32),
        Call(Box<Activation>),
    }
    #[derive(Clone, Debug)]
    struct Activation {
        func: u32,
        items: Vec<Item>,
    }
    let leaf = (0u32..6, prop::collection::vec(1u32..12, 1..8))
        .prop_map(|(func, blocks)| Activation {
            func,
            items: blocks.into_iter().map(Item::Block).collect(),
        });
    let tree = leaf.prop_recursive(4, max_events as u32, 6, |inner| {
        (
            0u32..6,
            prop::collection::vec(
                prop_oneof![
                    (1u32..12).prop_map(Item::Block),
                    inner.prop_map(|a| Item::Call(Box::new(a))),
                ],
                1..8,
            ),
        )
            .prop_map(|(func, items)| Activation { func, items })
    });
    tree.prop_map(|root| {
        fn emit(a: &Activation, out: &mut Vec<WppEvent>) {
            out.push(WppEvent::Enter(FuncId::from_index(a.func as usize)));
            let mut emitted_block = false;
            for item in &a.items {
                match item {
                    Item::Block(b) => {
                        out.push(WppEvent::Block(BlockId::new(*b)));
                        emitted_block = true;
                    }
                    Item::Call(inner) => {
                        if !emitted_block {
                            // Activations always execute their entry block
                            // before calling.
                            out.push(WppEvent::Block(BlockId::new(1)));
                            emitted_block = true;
                        }
                        emit(inner, out);
                    }
                }
            }
            out.push(WppEvent::Exit);
        }
        let mut events = Vec::new();
        emit(&root, &mut events);
        RawWpp::from_events(&events)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_reconstruct_round_trip(wpp in wpp_strategy(64)) {
        let part = partition(&wpp).unwrap();
        prop_assert_eq!(part.reconstruct(), wpp);
    }

    #[test]
    fn full_pipeline_is_lossless(wpp in wpp_strategy(64)) {
        let (compacted, stats) = compact_with_stats(&wpp).unwrap();
        prop_assert_eq!(compacted.reconstruct(), wpp);
        // Sizes only shrink through the trace stages.
        prop_assert!(stats.after_dedup_bytes <= stats.owpp_trace_bytes);
        prop_assert!(stats.after_dict_bytes <= stats.after_dedup_bytes);
    }

    #[test]
    fn archive_round_trip(wpp in wpp_strategy(48)) {
        let (compacted, _) = compact_with_stats(&wpp).unwrap();
        let archive = TwppArchive::from_compacted(&compacted);
        let back = TwppArchive::from_bytes(archive.as_bytes().to_vec()).unwrap();
        prop_assert_eq!(back.to_compacted().unwrap(), compacted);
    }

    #[test]
    fn archive_function_reads_match_scans(wpp in wpp_strategy(48)) {
        let (compacted, _) = compact_with_stats(&wpp).unwrap();
        let archive = TwppArchive::from_compacted(&compacted);
        for func in archive.function_ids() {
            let record = archive.read_function(func).unwrap();
            let mut scanned = wpp.scan_function(func);
            prop_assert_eq!(record.call_count as usize, scanned.len());
            scanned.sort();
            scanned.dedup();
            let mut expanded: Vec<Vec<BlockId>> = record
                .expanded_traces()
                .into_iter()
                .map(Vec::from)
                .collect();
            expanded.sort();
            expanded.dedup();
            prop_assert_eq!(expanded, scanned);
        }
    }

    #[test]
    fn dbb_compaction_expands_back(blocks in prop::collection::vec(1u32..10, 0..200)) {
        let trace: PathTrace = blocks.iter().map(|&b| BlockId::new(b)).collect();
        let compacted = compact_trace(&trace);
        prop_assert_eq!(compacted.dictionary.expand(&compacted.trace), trace);
    }

    #[test]
    fn timestamped_inversion_round_trip(blocks in prop::collection::vec(1u32..10, 0..200)) {
        let trace: PathTrace = blocks.iter().map(|&b| BlockId::new(b)).collect();
        let tt = TimestampedTrace::from_path_trace(&trace);
        prop_assert_eq!(tt.to_path_trace(), trace);
        // Serialization round trip.
        let words = tt.to_words().unwrap();
        let mut pos = 0;
        prop_assert_eq!(TimestampedTrace::from_words(&words, &mut pos).unwrap(), tt);
        prop_assert_eq!(pos, words.len());
    }

    #[test]
    fn tsset_agrees_with_btreeset_model(
        values in prop::collection::btree_set(1u32..5000, 0..300),
        delta in -10i64..10,
        probe in 1u32..5200,
    ) {
        let sorted: Vec<u32> = values.iter().copied().collect();
        let set = TsSet::from_sorted(&sorted);
        prop_assert_eq!(set.len(), sorted.len() as u64);
        prop_assert_eq!(set.to_vec(), sorted.clone());
        // Membership.
        prop_assert_eq!(set.contains(probe), values.contains(&probe));
        // Order queries.
        prop_assert_eq!(set.max_lt(probe), values.range(..probe).next_back().copied());
        prop_assert_eq!(set.min_ge(probe), values.range(probe..).next().copied());
        // Shift.
        let shifted: Vec<u32> = sorted
            .iter()
            .filter_map(|&t| {
                let v = i64::from(t) + delta;
                if v >= 1 { Some(v as u32) } else { None }
            })
            .collect();
        prop_assert_eq!(set.shift(delta).to_vec(), shifted);
        // Wire round trip.
        prop_assert_eq!(TsSet::from_wire(&set.to_wire().unwrap()).unwrap(), set);
    }

    #[test]
    fn tsset_wire_boundary_near_i32_max(
        offsets in prop::collection::btree_set(0u32..64, 1..16),
        excess in 1u32..1000,
    ) {
        // Timestamps hugging `i32::MAX` from below round-trip through the
        // sign-delimited wire format; anything above the boundary yields a
        // typed error instead of a panic or a silent wrap.
        let max = i32::MAX as u32;
        let mut vals: Vec<u32> = offsets.iter().map(|&o| max - o).collect();
        vals.sort_unstable();
        let set = TsSet::from_sorted(&vals);
        let wire = set.to_wire().unwrap();
        prop_assert_eq!(TsSet::from_wire(&wire).unwrap(), set);
        // One member past the boundary: encoding must fail loudly.
        let mut over = vals.clone();
        over.push(max + excess);
        let bad = TsSet::from_sorted(&over);
        prop_assert!(matches!(
            bad.to_wire(),
            Err(TsSetError::TimestampOverflow { .. })
        ));
        // Checked shifts past the u32 domain are typed errors (the set
        // tops out near 2^31, so a delta of u32::MAX overflows), and the
        // clamped shift never fabricates out-of-domain members.
        let delta = i64::from(u32::MAX) - i64::from(excess % 7);
        prop_assert!(set.try_shift(delta).is_err());
        let clamped = set.shift(delta);
        for t in clamped.iter() {
            prop_assert!(t >= 1);
        }
    }

    #[test]
    fn tsset_algebra_matches_model(
        a in prop::collection::btree_set(1u32..600, 0..150),
        b in prop::collection::btree_set(1u32..600, 0..150),
    ) {
        let sa = TsSet::from_sorted(&a.iter().copied().collect::<Vec<_>>());
        let sb = TsSet::from_sorted(&b.iter().copied().collect::<Vec<_>>());
        let inter: Vec<u32> = a.intersection(&b).copied().collect();
        let diff: Vec<u32> = a.difference(&b).copied().collect();
        let union: Vec<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(sa.intersect(&sb).to_vec(), inter);
        prop_assert_eq!(sa.subtract(&sb).to_vec(), diff);
        prop_assert_eq!(sa.union(&sb).to_vec(), union);
    }

    #[test]
    fn lzw_round_trip(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let compressed = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn lzw_round_trip_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..8),
        reps in 1usize..500,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let compressed = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn sequitur_expands_to_input(input in prop::collection::vec(1u32..20, 0..600)) {
        let grammar = Grammar::build(&input);
        prop_assert_eq!(grammar.expand_input(), input);
    }

    #[test]
    fn sequitur_invariants_hold(input in prop::collection::vec(1u32..6, 0..600)) {
        let grammar = Grammar::build(&input);
        prop_assert!(grammar.digram_uniqueness_holds());
        prop_assert!(grammar.rule_utility_holds());
    }

    #[test]
    fn sequitur_wire_round_trip(input in prop::collection::vec(1u32..16, 0..400)) {
        let rules = Grammar::build(&input).to_rules();
        let bytes = twpp_repro::twpp_sequitur::encode(&rules);
        prop_assert_eq!(twpp_repro::twpp_sequitur::decode(&bytes).unwrap(), rules);
    }
}
