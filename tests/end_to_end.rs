//! End-to-end integration: source text → CFG → traced execution → WPP →
//! compaction → archive → per-function queries, verified against ground
//! truth at every step.

use twpp_repro::twpp::{compact, compact_with_stats, partition, TwppArchive};
use twpp_repro::twpp_lang::{self, programs, LowerOptions};
use twpp_repro::twpp_tracer::{run_traced, ExecLimits, RawWpp};

fn trace_program(src: &str, input: &[i64]) -> (twpp_repro::twpp_ir::Program, RawWpp) {
    let program = twpp_lang::compile(src).expect("program compiles");
    let (_, wpp) = run_traced(&program, input, ExecLimits::default()).expect("program runs");
    (program, wpp)
}

#[test]
fn figure1_program_full_pipeline() {
    let (program, wpp) = trace_program(programs::FIGURE1, &[]);
    let (compacted, stats) = compact_with_stats(&wpp).unwrap();

    // f is called 5 times but follows only 2 unique paths (even/odd arg).
    let (f_id, _) = program.func_by_name("f").unwrap();
    let fb = compacted.function(f_id).expect("f was called");
    assert_eq!(fb.call_count, 5);
    assert_eq!(fb.traces.len(), 2);
    assert_eq!(stats.redundancy.per_func[&f_id], (5, 2));

    // Lossless through every transformation.
    assert_eq!(compacted.reconstruct(), wpp);
}

#[test]
fn archive_queries_match_full_scans_for_all_paper_programs() {
    for (src, input) in [
        (programs::FIGURE1, &[][..]),
        (programs::FIGURE9, &[][..]),
        (programs::FIGURE10, programs::FIGURE10_INPUT),
        (programs::KITCHEN_SINK, &[][..]),
    ] {
        let (program, wpp) = trace_program(src, input);
        let compacted = compact(&wpp).unwrap();
        let archive = TwppArchive::from_compacted(&compacted);
        for func in archive.function_ids() {
            let record = archive.read_function(func).unwrap();
            // Unique traces recoverable from the archive equal the unique
            // traces of a full scan.
            let mut scanned = wpp.scan_function(func);
            let count = scanned.len();
            scanned.sort();
            scanned.dedup();
            scanned.sort();
            let mut expanded: Vec<Vec<twpp_repro::twpp_ir::BlockId>> = record
                .expanded_traces()
                .into_iter()
                .map(Vec::from)
                .collect();
            expanded.sort();
            assert_eq!(expanded, scanned, "{} in {:?}", func, program.func(func).name());
            assert_eq!(record.call_count as usize, count);
        }
    }
}

#[test]
fn archive_file_round_trip_with_seek_reads() {
    let (program, wpp) = trace_program(programs::KITCHEN_SINK, &[]);
    let compacted = compact(&wpp).unwrap();
    let archive = TwppArchive::from_compacted(&compacted);

    let dir = std::env::temp_dir().join(format!("twpp-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kitchen.twpa");
    archive.save(&path).unwrap();

    // Whole-file load equals the in-memory archive.
    let loaded = TwppArchive::load(&path).unwrap();
    assert_eq!(loaded.to_compacted().unwrap(), compacted);

    // Seek-reads equal in-memory reads for every function.
    for func in archive.function_ids() {
        let seeked = TwppArchive::read_function_from_file(&path, func).unwrap();
        assert_eq!(seeked, archive.read_function(func).unwrap());
    }
    let _ = program;
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stmt_per_block_lowering_preserves_behaviour() {
    for (src, input) in [
        (programs::FIGURE1, &[][..]),
        (programs::FIGURE9, &[][..]),
        (programs::FIGURE10, programs::FIGURE10_INPUT),
        (programs::KITCHEN_SINK, &[][..]),
    ] {
        let coarse = twpp_lang::compile(src).unwrap();
        let fine = twpp_lang::compile_with_options(
            src,
            LowerOptions {
                stmt_per_block: true,
            },
        )
        .unwrap();
        let out_coarse = twpp_repro::twpp_tracer::run(&coarse, input, ExecLimits::default())
            .unwrap()
            .output;
        let out_fine = twpp_repro::twpp_tracer::run(&fine, input, ExecLimits::default())
            .unwrap()
            .output;
        assert_eq!(out_coarse, out_fine);
    }
}

#[test]
fn sequitur_and_twpp_agree_on_extraction() {
    let (program, wpp) = trace_program(programs::FIGURE1, &[]);
    let grammar = twpp_repro::twpp_sequitur::compress_wpp(&wpp);
    assert_eq!(grammar.expand_input(), wpp.words());
    let rules = grammar.to_rules();
    for (func, _) in program.funcs() {
        assert_eq!(
            twpp_repro::twpp_sequitur::extract_function(&rules, func),
            wpp.scan_function(func)
        );
    }
}

#[test]
fn partitioning_is_lossless_on_deep_recursion() {
    let src = "
        fn down(n) {
            if (n > 0) { down(n - 1); }
        }
        fn main() { down(100); }";
    let (_, wpp) = trace_program(src, &[]);
    let part = partition(&wpp).unwrap();
    assert_eq!(part.dcg.node_count(), 102);
    assert_eq!(part.reconstruct(), wpp);
    let compacted = compact(&wpp).unwrap();
    assert_eq!(compacted.reconstruct(), wpp);
}
