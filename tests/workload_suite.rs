//! Integration tests over the synthetic benchmark workloads: the paper's
//! whole evaluation machinery at a reduced scale.

use twpp_repro::twpp::{compact_with_stats, TwppArchive};
use twpp_repro::twpp_sequitur;
use twpp_repro::twpp_workloads::{generate, Profile};

#[test]
fn every_profile_compacts_losslessly() {
    for profile in Profile::all() {
        let w = generate(&profile.spec().scaled(0.01));
        let (compacted, stats) = compact_with_stats(&w.wpp).unwrap();
        assert_eq!(
            compacted.reconstruct(),
            w.wpp,
            "{} pipeline not lossless",
            profile.paper_name()
        );
        assert!(stats.overall_factor() > 1.0, "{}", profile.paper_name());
    }
}

#[test]
fn archive_answers_match_scans_on_a_workload() {
    let w = generate(&Profile::Li.spec().scaled(0.01));
    let (compacted, _) = compact_with_stats(&w.wpp).unwrap();
    let archive = TwppArchive::from_compacted(&compacted);
    // The layout is hottest-first.
    let ids = archive.function_ids();
    let counts: Vec<u64> = ids.iter().map(|f| archive.call_count(*f).unwrap()).collect();
    for pair in counts.windows(2) {
        assert!(pair[0] >= pair[1], "layout not frequency ordered");
    }
    // Spot-check several functions against ground truth.
    for &func in ids.iter().step_by(ids.len().div_ceil(8).max(1)) {
        let record = archive.read_function(func).unwrap();
        let mut scanned = w.wpp.scan_function(func);
        assert_eq!(record.call_count as usize, scanned.len());
        scanned.sort();
        scanned.dedup();
        let mut expanded: Vec<Vec<twpp_repro::twpp_ir::BlockId>> = record
            .expanded_traces()
            .into_iter()
            .map(Vec::from)
            .collect();
        expanded.sort();
        expanded.dedup();
        assert_eq!(expanded, scanned);
    }
}

#[test]
fn sequitur_baseline_agrees_on_a_workload() {
    let w = generate(&Profile::Perl.spec().scaled(0.005));
    let grammar = twpp_sequitur::compress_wpp(&w.wpp);
    assert_eq!(grammar.expand_input(), w.wpp.words());
    // Grammars of redundant traces are much smaller than the input.
    assert!(grammar.symbol_count() * 4 < w.wpp.byte_len() / 4);
    let rules = grammar.to_rules();
    let (compacted, _) = compact_with_stats(&w.wpp).unwrap();
    let hottest = compacted.functions[0].func;
    assert_eq!(
        twpp_sequitur::extract_function(&rules, hottest),
        w.wpp.scan_function(hottest)
    );
}

#[test]
fn redundancy_statistics_are_consistent() {
    let w = generate(&Profile::Ijpeg.spec().scaled(0.01));
    let (compacted, stats) = compact_with_stats(&w.wpp).unwrap();
    // Stats call counts agree with the DCG.
    let total_from_stats = stats.redundancy.total_calls();
    let total_from_dcg = compacted.dcg.node_count() as u64;
    assert_eq!(total_from_stats, total_from_dcg);
    // Unique trace counts agree with the function blocks.
    for fb in &compacted.functions {
        let (calls, uniques) = stats.redundancy.per_func[&fb.func];
        assert_eq!(calls, fb.call_count);
        assert_eq!(uniques as usize, fb.traces.len());
    }
    // The CDF is monotone in N.
    let cdf = stats.redundancy.redundancy_cdf(50);
    for pair in cdf.windows(2) {
        assert!(pair[0].1 <= pair[1].1);
    }
}

#[test]
fn profiles_reproduce_the_papers_orderings() {
    // Scaled-down check of the evaluation's qualitative shape: perl is the
    // most compactable, go the least.
    let factor = |p: Profile| {
        let w = generate(&p.spec().scaled(0.02));
        compact_with_stats(&w.wpp).unwrap().1.overall_factor()
    };
    let go = factor(Profile::Go);
    let perl = factor(Profile::Perl);
    assert!(
        perl > go,
        "perl ({perl:.1}) should compact more than go ({go:.1})"
    );
}
